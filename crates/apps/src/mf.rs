//! Mini-batch SGD matrix factorisation — the "factor models" of paper
//! §I.A.1 ("This is easily seen for factor and regression models whose
//! loss function has the form l = f(Xᵢ, v)").
//!
//! Rating matrix `R ≈ U·Vᵀ` with rank-`k` user factors `U` and item
//! factors `V`, trained on distributed rating shards. Factors live at
//! feature homes in a flattened slot space (`user·k + j` for user
//! factors, offset by `n_users·k` for item factors). Every batch is the
//! §III minibatch pattern:
//!
//! 1. **fetch** — workers request the factor rows of this batch's users
//!    and items (a combined allreduce whose in-set changes per batch;
//!    homes contribute their stored shard);
//! 2. local SGD gradient of the squared error on the batch ratings;
//! 3. **push** — workers contribute `−η·∂loss`, homes request their
//!    shard back and update storage.
//!
//! Synchronous semantics make the distributed run bit-identical to a
//! sequential reference, and training demonstrably reduces the fit
//! error on a planted low-rank matrix.

use kylix::{Kylix, Result};
use kylix_net::Comm;
use kylix_sparse::{mix64, mix_many, SumReducer};
use std::collections::HashMap;

/// One observed rating.
#[derive(Debug, Clone, Copy)]
pub struct Rating {
    /// User id (`< n_users`).
    pub user: u32,
    /// Item id (`< n_items`).
    pub item: u32,
    /// Observed value.
    pub value: f64,
}

/// Shapes and hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct MfConfig {
    /// Number of users.
    pub n_users: u64,
    /// Number of items.
    pub n_items: u64,
    /// Factor rank.
    pub k: usize,
    /// Learning rate.
    pub learning_rate: f64,
    /// L2 regularisation.
    pub l2: f64,
}

impl MfConfig {
    fn user_slot(&self, u: u64, j: usize) -> u64 {
        u * self.k as u64 + j as u64
    }
    fn item_slot(&self, i: u64, j: usize) -> u64 {
        (self.n_users + i) * self.k as u64 + j as u64
    }
    fn n_slots(&self) -> u64 {
        (self.n_users + self.n_items) * self.k as u64
    }

    /// Deterministic factor initialisation (same on every machine):
    /// small pseudo-random entries derived from the slot id.
    fn init(&self, slot: u64, seed: u64) -> f64 {
        let h = mix_many(&[seed, 0xFAC7, slot]);
        ((h >> 11) as f64 / (1u64 << 53) as f64 - 0.5) * 0.2
    }
}

/// One machine's trainer state.
pub struct MfWorker {
    cfg: MfConfig,
    seed: u64,
    /// Owned slots (hash shard of the factor space), sorted, and values.
    owned: Vec<u64>,
    owned_vals: Vec<f64>,
}

impl MfWorker {
    /// Create a worker owning its hash shard of the factor space,
    /// initialised deterministically.
    pub fn new(cfg: MfConfig, rank: usize, m: usize, seed: u64) -> Self {
        let owned: Vec<u64> = (0..cfg.n_slots())
            .filter(|&s| (mix64(s) % m as u64) as usize == rank)
            .collect();
        let owned_vals = owned.iter().map(|&s| cfg.init(s, seed)).collect();
        Self {
            cfg,
            seed,
            owned,
            owned_vals,
        }
    }

    /// One synchronous mini-batch step over this machine's ratings;
    /// returns the batch's mean squared error (pre-update). `round`
    /// must be globally consistent, strictly increasing from 1.
    pub fn step<C: Comm>(
        &mut self,
        comm: &mut C,
        kylix: &Kylix,
        batch: &[Rating],
        round: u32,
    ) -> Result<f64> {
        let cfg = self.cfg;
        let channel = round.wrapping_mul(4);
        // Batch slot set: all factor rows of touched users and items.
        let mut in_idx: Vec<u64> = Vec::with_capacity(batch.len() * 2 * cfg.k);
        for r in batch {
            for j in 0..cfg.k {
                in_idx.push(cfg.user_slot(r.user as u64, j));
                in_idx.push(cfg.item_slot(r.item as u64, j));
            }
        }
        in_idx.sort_unstable();
        in_idx.dedup();

        // Fetch current factors.
        let (vals, _) = kylix.allreduce_combined(
            comm,
            &in_idx,
            &self.owned,
            &self.owned_vals,
            SumReducer,
            channel,
        )?;
        let f: HashMap<u64, f64> = in_idx.iter().copied().zip(vals).collect();

        // Gradient of Σ (r - u·v)² + λ(|u|² + |v|²) over the batch.
        let mut grad: HashMap<u64, f64> = HashMap::new();
        let mut sse = 0.0;
        for r in batch {
            let dot: f64 = (0..cfg.k)
                .map(|j| f[&cfg.user_slot(r.user as u64, j)] * f[&cfg.item_slot(r.item as u64, j)])
                .sum();
            let err = r.value - dot;
            sse += err * err;
            for j in 0..cfg.k {
                let us = cfg.user_slot(r.user as u64, j);
                let is = cfg.item_slot(r.item as u64, j);
                let (u, v) = (f[&us], f[&is]);
                *grad.entry(us).or_insert(0.0) += -2.0 * err * v + 2.0 * cfg.l2 * u;
                *grad.entry(is).or_insert(0.0) += -2.0 * err * u + 2.0 * cfg.l2 * v;
            }
        }
        let scale = -cfg.learning_rate / batch.len().max(1) as f64;

        // Push scaled gradients; homes fold updates into storage.
        let g_idx: Vec<u64> = grad.keys().copied().collect();
        let g_val: Vec<f64> = g_idx.iter().map(|s| grad[s] * scale).collect();
        let (updates, _) =
            kylix.allreduce_combined(comm, &self.owned, &g_idx, &g_val, SumReducer, channel + 2)?;
        for (w, u) in self.owned_vals.iter_mut().zip(updates) {
            *w += u;
        }
        Ok(sse / batch.len().max(1) as f64)
    }

    /// The owned `(slot, value)` shard.
    pub fn shard(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.owned
            .iter()
            .copied()
            .zip(self.owned_vals.iter().copied())
    }

    /// The deterministic seed used for factor initialisation.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

/// Sequential reference doing identical synchronous math.
pub fn mf_reference(
    cfg: MfConfig,
    shards: &[Vec<Rating>],
    seed: u64,
    rounds: usize,
) -> HashMap<u64, f64> {
    let mut w: HashMap<u64, f64> = (0..cfg.n_slots()).map(|s| (s, cfg.init(s, seed))).collect();
    for _ in 0..rounds {
        let mut update: HashMap<u64, f64> = HashMap::new();
        for batch in shards {
            let scale = -cfg.learning_rate / batch.len().max(1) as f64;
            for r in batch {
                let dot: f64 = (0..cfg.k)
                    .map(|j| {
                        w[&cfg.user_slot(r.user as u64, j)] * w[&cfg.item_slot(r.item as u64, j)]
                    })
                    .sum();
                let err = r.value - dot;
                for j in 0..cfg.k {
                    let us = cfg.user_slot(r.user as u64, j);
                    let is = cfg.item_slot(r.item as u64, j);
                    let (u, v) = (w[&us], w[&is]);
                    *update.entry(us).or_insert(0.0) += (-2.0 * err * v + 2.0 * cfg.l2 * u) * scale;
                    *update.entry(is).or_insert(0.0) += (-2.0 * err * u + 2.0 * cfg.l2 * v) * scale;
                }
            }
        }
        for (s, u) in update {
            *w.get_mut(&s).expect("slot exists") += u;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix::NetworkPlan;
    use kylix_net::LocalCluster;
    use kylix_sparse::Xoshiro256;

    fn cfg() -> MfConfig {
        MfConfig {
            n_users: 12,
            n_items: 10,
            k: 3,
            learning_rate: 1.5,
            l2: 0.001,
        }
    }

    /// Planted rank-`k` ratings: R = P·Qᵀ with known P, Q.
    fn planted_ratings(
        c: &MfConfig,
        per_shard: usize,
        shards: usize,
        seed: u64,
    ) -> Vec<Vec<Rating>> {
        let p = |u: u64, j: usize| {
            ((mix_many(&[7, u, j as u64]) >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        let q = |i: u64, j: usize| {
            ((mix_many(&[13, i, j as u64]) >> 11) as f64 / (1u64 << 53) as f64) - 0.5
        };
        (0..shards)
            .map(|mc| {
                let mut rng = Xoshiro256::new(mix_many(&[seed, mc as u64]));
                (0..per_shard)
                    .map(|_| {
                        let user = rng.next_below(c.n_users) as u32;
                        let item = rng.next_below(c.n_items) as u32;
                        let value: f64 = (0..c.k)
                            .map(|j| p(user as u64, j) * q(item as u64, j))
                            .sum();
                        Rating { user, item, value }
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn distributed_matches_reference() {
        let c = cfg();
        let m = 4;
        let shards = planted_ratings(&c, 16, m, 5);
        let rounds = 5;
        let seed = 21;
        let expected = mf_reference(c, &shards, seed, rounds);
        let got: Vec<Vec<(u64, f64)>> = LocalCluster::run(m, |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
            let mut worker = MfWorker::new(c, me, m, seed);
            for r in 0..rounds {
                worker
                    .step(&mut comm, &kylix, &shards[me], r as u32 + 1)
                    .unwrap();
            }
            worker.shard().collect()
        });
        let mut all: HashMap<u64, f64> = HashMap::new();
        for shard in got {
            for (s, v) in shard {
                assert!(!all.contains_key(&s), "slot {s} homed twice");
                all.insert(s, v);
            }
        }
        assert_eq!(all.len() as u64, c.n_slots());
        for (s, v) in &expected {
            let g = all[s];
            assert!((g - v).abs() < 1e-9, "slot {s}: {g} vs {v}");
        }
    }

    #[test]
    fn training_reduces_error_on_planted_matrix() {
        let c = cfg();
        let m = 2;
        let shards = planted_ratings(&c, 40, m, 9);
        let rounds = 400;
        let errors: Vec<Vec<f64>> = LocalCluster::run(m, |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(NetworkPlan::direct(2));
            let mut worker = MfWorker::new(c, me, m, 33);
            (0..rounds)
                .map(|r| {
                    worker
                        .step(&mut comm, &kylix, &shards[me], r as u32 + 1)
                        .unwrap()
                })
                .collect()
        });
        for per_machine in &errors {
            let early: f64 = per_machine[..5].iter().sum::<f64>() / 5.0;
            let late: f64 = per_machine[rounds - 5..].iter().sum::<f64>() / 5.0;
            assert!(
                late < early * 0.4,
                "MSE should fall sharply on a planted low-rank matrix: {early:.5} -> {late:.5}"
            );
        }
    }

    #[test]
    fn shards_tile_the_factor_space() {
        let c = cfg();
        let m = 3;
        let mut all: Vec<u64> = (0..m)
            .flat_map(|rank| {
                MfWorker::new(c, rank, m, 1)
                    .shard()
                    .map(|(s, _)| s)
                    .collect::<Vec<_>>()
            })
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..c.n_slots()).collect::<Vec<_>>());
    }
}
