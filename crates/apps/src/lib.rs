#![warn(missing_docs)]

//! # kylix-apps
//!
//! The distributed graph-mining and machine-learning applications the
//! paper motivates Kylix with (§I.A), each built on the sparse-allreduce
//! primitive and checked against a sequential reference:
//!
//! * [`matrix`] — an edge-partitioned distributed sparse matrix with
//!   local index compaction; its column set is an allreduce *in* set,
//!   its row set an *out* set (§I.A.2).
//! * [`pagerank`] — the paper's benchmark application (Fig. 8/9):
//!   repeated sparse matrix–vector multiply with per-iteration
//!   compute/communication timing breakdowns.
//! * [`spmv`] — generic distributed `y = A·x`, demonstrating the
//!   "different vertex set going in and out" requirement.
//! * [`components`] — connected components by min-label propagation
//!   (§I.A.2's "connected components … can be computed from such
//!   matrix-vector products").
//! * [`bfs`] — level-synchronous breadth-first search with a min
//!   reducer.
//! * [`diameter`] — HADI-style effective-diameter estimation with
//!   Flajolet–Martin bitstrings and an OR reducer (§I.A.2, ref.\ 13).
//! * [`eigen`] — dominant-eigenvector power iteration (§I.A.2's
//!   "spectral clustering … eigenvalues").
//! * [`sgd`] — mini-batch logistic regression: model features live at
//!   home machines, every batch fetches weights and pushes gradients
//!   through combined-mode allreduces whose index sets change each step
//!   (§I.A.1).
//! * [`lda`] — batched collapsed Gibbs sampling for LDA (§I.A.1's
//!   "Gibbs samplers … sample updates are batched").
//! * [`kmeans`] — distributed Lloyd's algorithm over sparse features,
//!   with centroid state at feature homes.

pub mod bfs;
pub mod components;
pub mod diameter;
pub mod eigen;
pub mod kmeans;
pub mod lda;
pub mod matrix;
pub mod mf;
pub mod pagerank;
pub mod sgd;
pub mod spmv;

pub use matrix::DistMatrix;
pub use pagerank::{distributed_pagerank, PageRankConfig, PageRankOutcome};
