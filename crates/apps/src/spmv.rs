//! Generic distributed sparse matrix–vector multiply.
//!
//! Demonstrates the defining requirement of §III: a machine can specify
//! one vertex subset *going in* (the columns of its share, whose `x`
//! values it needs) and a different subset *going out* (the rows of its
//! share, plus any result entries it wants back). Two allreduces:
//!
//! 1. **distribute x** — holders of `x` fragments contribute them;
//!    every machine requests the entries matching its columns;
//! 2. **assemble y** — machines contribute local partial products at
//!    their rows and request whatever result entries they care about.

use crate::matrix::DistMatrix;
use kylix::{Kylix, Result};
use kylix_net::Comm;
use kylix_sparse::SumReducer;

/// Distributed `y = A·x`.
///
/// * `share` — this machine's triplets.
/// * `x_contrib` — this machine's fragment of `x` as `(index, value)`
///   pairs (fragments may overlap; overlaps are summed).
/// * `y_request` — result indices this machine wants back.
///
/// Returns values aligned with `y_request`. Collective: all machines
/// must call together, and the union of `x_contrib` indices must cover
/// the union of all column sets.
pub fn distributed_spmv<C: Comm>(
    comm: &mut C,
    kylix: &Kylix,
    share: &DistMatrix,
    x_contrib: &[(u64, f64)],
    y_request: &[u64],
    channel: u32,
) -> Result<Vec<f64>> {
    // Round 1: scatter x to column holders. Columns with no x fragment
    // anywhere read as 0.
    let cols = share.col_indices();
    let x_idx: Vec<u64> = x_contrib.iter().map(|p| p.0).collect();
    let x_val: Vec<f64> = x_contrib.iter().map(|p| p.1).collect();
    let (x_local, _) =
        kylix.allreduce_combined(comm, &cols, &x_idx, &x_val, SumReducer, channel)?;

    // Local product.
    let y_local = share.multiply(&x_local);

    // Round 2: assemble y. Requested rows nobody's share produces read
    // as 0 (the sum identity) — empty rows of A.
    let rows = share.row_indices();
    let (y, _) =
        kylix.allreduce_combined(comm, y_request, &rows, &y_local, SumReducer, channel + 2)?;
    Ok(y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix::NetworkPlan;
    use kylix_net::LocalCluster;
    use kylix_sparse::Xoshiro256;

    /// Dense reference multiply of scattered triplets.
    fn dense_reference(n: usize, triplets: &[(u64, u64, f64)], x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; n];
        for &(r, c, v) in triplets {
            y[r as usize] += v * x[c as usize];
        }
        y
    }

    #[test]
    fn distributed_spmv_matches_dense() {
        let n = 64usize;
        let m = 4;
        let mut rng = Xoshiro256::new(9);
        let triplets: Vec<(u64, u64, f64)> = (0..400)
            .map(|_| {
                (
                    rng.next_below(n as u64),
                    rng.next_below(n as u64),
                    (rng.next_f64() * 4.0).round(),
                )
            })
            .collect();
        let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64).collect();
        let expected = dense_reference(n, &triplets, &x);

        // Partition triplets round-robin; x is contributed by machine
        // (index mod m); every machine requests a strided slice of y.
        let shares: Vec<Vec<(u64, u64, f64)>> = (0..m)
            .map(|k| {
                triplets
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % m == k)
                    .map(|(_, t)| *t)
                    .collect()
            })
            .collect();
        let results: Vec<(Vec<u64>, Vec<f64>)> = LocalCluster::run(m, |mut comm| {
            let me = comm.rank();
            let share = DistMatrix::from_triplets(n as u64, n as u64, shares[me].clone());
            let x_contrib: Vec<(u64, f64)> = (0..n)
                .filter(|i| i % m == me)
                .map(|i| (i as u64, x[i]))
                .collect();
            let y_request: Vec<u64> = (0..n as u64).filter(|v| v % 3 == me as u64 % 3).collect();
            let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
            let y = distributed_spmv(&mut comm, &kylix, &share, &x_contrib, &y_request, 0).unwrap();
            (y_request, y)
        });
        for (req, y) in results {
            for (&v, &got) in req.iter().zip(&y) {
                assert!(
                    (got - expected[v as usize]).abs() < 1e-9,
                    "y[{v}] = {got}, want {}",
                    expected[v as usize]
                );
            }
        }
    }

    #[test]
    fn empty_share_still_participates() {
        // A machine with no triplets must not break the collective.
        let n = 16u64;
        let results: Vec<Vec<f64>> = LocalCluster::run(2, |mut comm| {
            let me = comm.rank();
            let share = if me == 0 {
                DistMatrix::from_triplets(n, n, [(0u64, 1u64, 2.0)])
            } else {
                DistMatrix::from_triplets(n, n, [])
            };
            let x_contrib: Vec<(u64, f64)> = if me == 0 { vec![(1, 3.0)] } else { Vec::new() };
            let kylix = Kylix::new(NetworkPlan::direct(2));
            distributed_spmv(&mut comm, &kylix, &share, &x_contrib, &[0u64], 0).unwrap()
        });
        // y[0] = 2.0 * x[1] = 6.0 for both machines.
        assert_eq!(results[0], vec![6.0]);
        assert_eq!(results[1], vec![6.0]);
    }
}
