//! Batched collapsed Gibbs sampling for LDA (paper §I.A.1: "MCMC
//! algorithms such as Gibbs samplers involve updates to a model on
//! every sample. To improve performance, the sample updates are batched
//! in very similar fashion to subgradient updates").
//!
//! The global model — word-topic counts `N[w][k]` and topic totals
//! `N[k]` — is distributed over feature homes (flattened slot space
//! `w·K + k`, with the totals at `vocab·K + k`). Each round a machine:
//!
//! 1. **fetches** the count rows of its batch's words (a combined
//!    allreduce whose in-set changes with the batch),
//! 2. **samples** new topic assignments for its tokens against those
//!    (deliberately stale-within-the-round) counts — the batched
//!    approximation the paper describes,
//! 3. **pushes** its count deltas; homes fold the global sum into
//!    storage.
//!
//! Synchronous semantics — every round applies the *sum* of all
//! machines' deltas to the model — make the distributed sampler
//! bit-identical to a sequential implementation with the same seeds,
//! which the tests verify, alongside a topic-recovery quality check.

use kylix::{Kylix, Result};
use kylix_net::Comm;
use kylix_sparse::{mix64, mix_many, SumReducer, Xoshiro256};
use std::collections::HashMap;

/// LDA hyperparameters and shapes.
#[derive(Debug, Clone, Copy)]
pub struct LdaConfig {
    /// Number of topics.
    pub k: usize,
    /// Vocabulary size.
    pub vocab: u64,
    /// Document–topic smoothing α.
    pub alpha: f64,
    /// Topic–word smoothing β.
    pub beta: f64,
}

impl LdaConfig {
    fn slot(&self, w: u64, k: usize) -> u64 {
        w * self.k as u64 + k as u64
    }
    fn total_slot(&self, k: usize) -> u64 {
        self.vocab * self.k as u64 + k as u64
    }
    fn n_slots(&self) -> u64 {
        (self.vocab + 1) * self.k as u64
    }
}

/// One machine's sampler state.
pub struct LdaWorker {
    cfg: LdaConfig,
    /// Local documents (word ids).
    docs: Vec<Vec<u32>>,
    /// Current topic assignment per token.
    assign: Vec<Vec<usize>>,
    /// Per-document topic counts.
    doc_topic: Vec<Vec<f64>>,
    /// Owned slots of the global count table (sorted) and their values.
    owned: Vec<u64>,
    owned_counts: Vec<f64>,
    /// Machine id and count (for sampling-stream derivation).
    rank: usize,
    seed: u64,
}

impl LdaWorker {
    /// Initialise: tokens get deterministic pseudo-random topics; the
    /// initial global counts are assembled through one push round by
    /// the caller's first `step`.
    pub fn new(cfg: LdaConfig, rank: usize, m: usize, docs: Vec<Vec<u32>>, seed: u64) -> Self {
        let assign: Vec<Vec<usize>> = docs
            .iter()
            .enumerate()
            .map(|(d, doc)| {
                let mut rng = Xoshiro256::new(mix_many(&[seed, 0xA551, rank as u64, d as u64]));
                doc.iter().map(|_| rng.next_index(cfg.k)).collect()
            })
            .collect();
        let doc_topic: Vec<Vec<f64>> = docs
            .iter()
            .zip(&assign)
            .map(|(doc, zs)| {
                let mut dt = vec![0.0; cfg.k];
                for (_, &z) in doc.iter().zip(zs) {
                    dt[z] += 1.0;
                }
                dt
            })
            .collect();
        let owned: Vec<u64> = (0..cfg.n_slots())
            .filter(|&s| (mix64(s) % m as u64) as usize == rank)
            .collect();
        let owned_counts = vec![0.0; owned.len()];
        Self {
            cfg,
            docs,
            assign,
            doc_topic,
            owned,
            owned_counts,
            rank,
            seed,
        }
    }

    /// The deltas implied by this machine's *initial* assignments —
    /// pushed as round 0 to seed the global table.
    fn initial_deltas(&self) -> HashMap<u64, f64> {
        let mut d = HashMap::new();
        for (doc, zs) in self.docs.iter().zip(&self.assign) {
            for (&w, &z) in doc.iter().zip(zs) {
                *d.entry(self.cfg.slot(w as u64, z)).or_insert(0.0) += 1.0;
                *d.entry(self.cfg.total_slot(z)).or_insert(0.0) += 1.0;
            }
        }
        d
    }

    /// Push a delta map and fold the global sums into owned storage.
    fn push<C: Comm>(
        &mut self,
        comm: &mut C,
        kylix: &Kylix,
        deltas: &HashMap<u64, f64>,
        channel: u32,
    ) -> Result<()> {
        let out_idx: Vec<u64> = deltas.keys().copied().collect();
        let out_val: Vec<f64> = out_idx.iter().map(|s| deltas[s]).collect();
        let (updates, _) =
            kylix.allreduce_combined(comm, &self.owned, &out_idx, &out_val, SumReducer, channel)?;
        for (c, u) in self.owned_counts.iter_mut().zip(updates) {
            *c += u;
        }
        Ok(())
    }

    /// Fetch the count rows for a word set plus the topic totals.
    fn fetch<C: Comm>(
        &mut self,
        comm: &mut C,
        kylix: &Kylix,
        words: &[u64],
        channel: u32,
    ) -> Result<HashMap<u64, f64>> {
        let cfg = self.cfg;
        let mut in_idx: Vec<u64> = words
            .iter()
            .flat_map(|&w| (0..cfg.k).map(move |k| cfg.slot(w, k)))
            .collect();
        for k in 0..cfg.k {
            in_idx.push(cfg.total_slot(k));
        }
        in_idx.sort_unstable();
        in_idx.dedup();
        let (vals, _) = kylix.allreduce_combined(
            comm,
            &in_idx,
            &self.owned,
            &self.owned_counts,
            SumReducer,
            channel,
        )?;
        Ok(in_idx.into_iter().zip(vals).collect())
    }

    /// Seed the global table from the initial assignments (call once,
    /// collectively, before the first [`Self::step`]).
    pub fn bootstrap<C: Comm>(&mut self, comm: &mut C, kylix: &Kylix) -> Result<()> {
        let deltas = self.initial_deltas();
        self.push(comm, kylix, &deltas, 1)
    }

    /// One batched Gibbs round over all local documents. `round` must
    /// be globally consistent and strictly increasing from 1.
    pub fn step<C: Comm>(&mut self, comm: &mut C, kylix: &Kylix, round: u32) -> Result<()> {
        let cfg = self.cfg;
        let channel = round.wrapping_add(1).wrapping_mul(4);
        // Batch word set.
        let mut words: Vec<u64> = self
            .docs
            .iter()
            .flat_map(|d| d.iter().map(|&w| w as u64))
            .collect();
        words.sort_unstable();
        words.dedup();
        let counts = self.fetch(comm, kylix, &words, channel)?;

        // Sample every token against the fetched (stale) counts.
        let w_beta = cfg.vocab as f64 * cfg.beta;
        let mut deltas: HashMap<u64, f64> = HashMap::new();
        for (d, (doc, zs)) in self.docs.iter().zip(self.assign.iter_mut()).enumerate() {
            let mut rng = Xoshiro256::new(mix_many(&[
                self.seed,
                round as u64,
                self.rank as u64,
                d as u64,
            ]));
            for (t, (&w, z)) in doc.iter().zip(zs.iter_mut()).enumerate() {
                let _ = t;
                let old = *z;
                // Exclude this token from its own document counts.
                self.doc_topic[d][old] -= 1.0;
                let mut weights = Vec::with_capacity(cfg.k);
                let mut acc = 0.0;
                for k in 0..cfg.k {
                    let nwk = counts.get(&cfg.slot(w as u64, k)).copied().unwrap_or(0.0);
                    let nk = counts.get(&cfg.total_slot(k)).copied().unwrap_or(0.0);
                    let p = (self.doc_topic[d][k] + cfg.alpha) * (nwk + cfg.beta) / (nk + w_beta);
                    acc += p.max(0.0);
                    weights.push(acc);
                }
                let u = rng.next_f64() * acc;
                let new = weights.partition_point(|&x| x <= u).min(cfg.k - 1);
                self.doc_topic[d][new] += 1.0;
                *z = new;
                if new != old {
                    *deltas.entry(cfg.slot(w as u64, old)).or_insert(0.0) -= 1.0;
                    *deltas.entry(cfg.total_slot(old)).or_insert(0.0) -= 1.0;
                    *deltas.entry(cfg.slot(w as u64, new)).or_insert(0.0) += 1.0;
                    *deltas.entry(cfg.total_slot(new)).or_insert(0.0) += 1.0;
                }
            }
        }
        if deltas.is_empty() {
            // Still participate in the collective push with no content.
            deltas.insert(cfg.total_slot(0), 0.0);
        }
        self.push(comm, kylix, &deltas, channel + 2)
    }

    /// The owned `(slot, count)` shard (for assembling the global model
    /// in tests and reporting).
    pub fn shard(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.owned
            .iter()
            .copied()
            .zip(self.owned_counts.iter().copied())
    }

    /// This machine's current topic assignments.
    pub fn assignments(&self) -> &[Vec<usize>] {
        &self.assign
    }
}

/// Sequential reference: the identical synchronous batched sampler over
/// all machines' shards, same seeds, same arithmetic.
#[allow(clippy::needless_range_loop)] // `k` is a topic id, not an index
pub fn lda_reference(
    cfg: LdaConfig,
    shards: &[Vec<Vec<u32>>],
    seed: u64,
    rounds: usize,
) -> HashMap<u64, f64> {
    /// Per-machine mirror of the worker state: (assignments, doc-topic
    /// counts).
    type MirrorState = (Vec<Vec<usize>>, Vec<Vec<f64>>);
    // Mirror LdaWorker state per machine.
    let mut workers: Vec<MirrorState> = shards
        .iter()
        .enumerate()
        .map(|(rank, docs)| {
            let assign: Vec<Vec<usize>> = docs
                .iter()
                .enumerate()
                .map(|(d, doc)| {
                    let mut rng = Xoshiro256::new(mix_many(&[seed, 0xA551, rank as u64, d as u64]));
                    doc.iter().map(|_| rng.next_index(cfg.k)).collect()
                })
                .collect();
            let doc_topic: Vec<Vec<f64>> = docs
                .iter()
                .zip(&assign)
                .map(|(doc, zs)| {
                    let mut dt = vec![0.0; cfg.k];
                    for (_, &z) in doc.iter().zip(zs) {
                        dt[z] += 1.0;
                    }
                    dt
                })
                .collect();
            (assign, doc_topic)
        })
        .collect();
    let mut global: HashMap<u64, f64> = HashMap::new();
    for (rank, docs) in shards.iter().enumerate() {
        for (doc, zs) in docs.iter().zip(&workers[rank].0) {
            for (&w, &z) in doc.iter().zip(zs) {
                *global.entry(cfg.slot(w as u64, z)).or_insert(0.0) += 1.0;
                *global.entry(cfg.total_slot(z)).or_insert(0.0) += 1.0;
            }
        }
    }
    let w_beta = cfg.vocab as f64 * cfg.beta;
    for round in 1..=rounds {
        // All machines sample against the same round-start snapshot.
        let snapshot = global.clone();
        let mut deltas: HashMap<u64, f64> = HashMap::new();
        for (rank, docs) in shards.iter().enumerate() {
            let (assign, doc_topic) = &mut workers[rank];
            for (d, (doc, zs)) in docs.iter().zip(assign.iter_mut()).enumerate() {
                let mut rng =
                    Xoshiro256::new(mix_many(&[seed, round as u64, rank as u64, d as u64]));
                for (&w, z) in doc.iter().zip(zs.iter_mut()) {
                    let old = *z;
                    doc_topic[d][old] -= 1.0;
                    let mut weights = Vec::with_capacity(cfg.k);
                    let mut acc = 0.0;
                    for k in 0..cfg.k {
                        let nwk = snapshot.get(&cfg.slot(w as u64, k)).copied().unwrap_or(0.0);
                        let nk = snapshot.get(&cfg.total_slot(k)).copied().unwrap_or(0.0);
                        let p = (doc_topic[d][k] + cfg.alpha) * (nwk + cfg.beta) / (nk + w_beta);
                        acc += p.max(0.0);
                        weights.push(acc);
                    }
                    let u = rng.next_f64() * acc;
                    let new = weights.partition_point(|&x| x <= u).min(cfg.k - 1);
                    doc_topic[d][new] += 1.0;
                    *z = new;
                    if new != old {
                        *deltas.entry(cfg.slot(w as u64, old)).or_insert(0.0) -= 1.0;
                        *deltas.entry(cfg.total_slot(old)).or_insert(0.0) -= 1.0;
                        *deltas.entry(cfg.slot(w as u64, new)).or_insert(0.0) += 1.0;
                        *deltas.entry(cfg.total_slot(new)).or_insert(0.0) += 1.0;
                    }
                }
            }
        }
        for (s, d) in deltas {
            *global.entry(s).or_insert(0.0) += d;
        }
    }
    global.retain(|_, v| *v != 0.0);
    global
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix::NetworkPlan;
    use kylix_net::LocalCluster;

    fn cfg() -> LdaConfig {
        LdaConfig {
            k: 2,
            vocab: 20,
            alpha: 0.5,
            beta: 0.1,
        }
    }

    /// Synthetic corpus: machine shards of documents drawn purely from
    /// one of two disjoint vocabularies.
    fn corpus(m: usize, docs_per: usize, seed: u64) -> Vec<Vec<Vec<u32>>> {
        (0..m)
            .map(|mc| {
                let mut rng = Xoshiro256::new(mix_many(&[seed, mc as u64]));
                (0..docs_per)
                    .map(|d| {
                        let base = if d % 2 == 0 { 0u32 } else { 10 };
                        (0..12).map(|_| base + rng.next_below(10) as u32).collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn distributed_matches_reference_exactly() {
        let m = 4;
        let shards = corpus(m, 6, 3);
        let rounds = 4;
        let seed = 99;
        let expected = lda_reference(cfg(), &shards, seed, rounds);
        let got: Vec<Vec<(u64, f64)>> = LocalCluster::run(m, |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
            let mut worker = LdaWorker::new(cfg(), me, m, shards[me].clone(), seed);
            worker.bootstrap(&mut comm, &kylix).unwrap();
            for r in 1..=rounds {
                worker.step(&mut comm, &kylix, r as u32).unwrap();
            }
            worker.shard().collect()
        });
        let mut table: HashMap<u64, f64> = HashMap::new();
        for shard in got {
            for (s, c) in shard {
                if c != 0.0 {
                    assert!(!table.contains_key(&s), "slot {s} homed twice");
                    table.insert(s, c);
                }
            }
        }
        assert_eq!(table.len(), expected.len());
        for (s, c) in &expected {
            assert_eq!(table.get(s), Some(c), "slot {s}");
        }
    }

    #[test]
    fn topics_separate_disjoint_vocabularies() {
        let m = 2;
        let shards = corpus(m, 30, 11);
        let rounds = 25;
        let table = lda_reference(cfg(), &shards, 7, rounds);
        let c = cfg();
        // Dominant topic of each vocabulary half.
        let dominant = |w: u64| -> usize {
            (0..c.k)
                .max_by(|&a, &b| {
                    let ca = table.get(&c.slot(w, a)).copied().unwrap_or(0.0);
                    let cb = table.get(&c.slot(w, b)).copied().unwrap_or(0.0);
                    ca.partial_cmp(&cb).unwrap()
                })
                .unwrap()
        };
        let left: Vec<usize> = (0..10).map(dominant).collect();
        let right: Vec<usize> = (10..20).map(dominant).collect();
        let left_mode = if left.iter().filter(|&&t| t == 0).count() >= 5 {
            0
        } else {
            1
        };
        let right_mode = if right.iter().filter(|&&t| t == 0).count() >= 5 {
            0
        } else {
            1
        };
        assert_ne!(
            left_mode, right_mode,
            "disjoint vocabularies should land in different topics: {left:?} vs {right:?}"
        );
        // Counts are non-negative and totals match token count.
        let total_tokens: f64 = (0..c.k)
            .map(|k| table.get(&c.total_slot(k)).copied().unwrap_or(0.0))
            .sum();
        assert_eq!(total_tokens, (m * 30 * 12) as f64);
        assert!(table.values().all(|&v| v >= 0.0));
    }
}
