//! Level-synchronous breadth-first search.
//!
//! Distances propagate through a *min* sparse allreduce: each round
//! every machine contributes, per local edge `(u,v)`, the candidate
//! distance `dist(u)+1` for `v`, plus every vertex's current distance
//! (self-candidate, which also satisfies coverage). Unreached vertices
//! carry `u64::MAX` and are guarded against overflow. The frontier
//! terminates when a round changes nothing anywhere (sum allreduce of
//! change counts, as in components).

use kylix::{Kylix, Result};
use kylix_net::Comm;
use kylix_sparse::{IndexSet, Key, MinReducer};

/// Distance label for unreached vertices.
pub const UNREACHED: u64 = u64::MAX;

/// Distributed BFS from `root` over this machine's directed edge share.
///
/// Returns `(vertex, distance)` for local vertices (`UNREACHED` if no
/// path). Collective call.
pub fn distributed_bfs<C: Comm>(
    comm: &mut C,
    kylix: &Kylix,
    local_edges: &[(u32, u32)],
    root: u32,
    max_rounds: usize,
) -> Result<Vec<(u64, u64)>> {
    let verts = IndexSet::from_indices(
        local_edges
            .iter()
            .flat_map(|&(s, d)| [s as u64, d as u64])
            .chain([root as u64]),
    );
    let vert_ids: Vec<u64> = verts.indices().collect();
    let edge_pos: Vec<(u32, u32)> = local_edges
        .iter()
        .map(|&(s, d)| {
            (
                verts.position(Key::new(s as u64)).expect("own vertex") as u32,
                verts.position(Key::new(d as u64)).expect("own vertex") as u32,
            )
        })
        .collect();

    let out_idx: Vec<u64> = local_edges
        .iter()
        .map(|&(_, d)| d as u64)
        .chain(vert_ids.iter().copied())
        .collect();
    let mut dist_state = kylix.configure(comm, &vert_ids, &out_idx, 0)?;
    let mut done = kylix::ScalarCollective::new(comm, kylix.plan(), 1 << 16)?;

    let mut dist: Vec<u64> = vert_ids
        .iter()
        .map(|&v| if v == root as u64 { 0 } else { UNREACHED })
        .collect();
    for _ in 0..max_rounds {
        let out_vals: Vec<u64> = edge_pos
            .iter()
            .map(|&(sp, _)| dist[sp as usize].saturating_add(1))
            .chain(dist.iter().copied())
            .collect();
        let new_dist = dist_state.reduce(comm, &out_vals, MinReducer)?;
        let changed = dist != new_dist;
        dist = new_dist;
        if !done.any(comm, changed)? {
            break;
        }
    }
    Ok(vert_ids.into_iter().zip(dist).collect())
}

/// Sequential BFS reference over an edge list.
pub fn bfs_reference(n: u64, edges: &[(u32, u32)], root: u32) -> Vec<u64> {
    let csr = kylix_powerlaw::Csr::from_edges(n, edges);
    let mut dist = vec![UNREACHED; n as usize];
    dist[root as usize] = 0;
    let mut frontier = vec![root];
    let mut level = 0u64;
    while !frontier.is_empty() {
        level += 1;
        let mut next = Vec::new();
        for &u in &frontier {
            for &v in csr.neighbours(u) {
                if dist[v as usize] == UNREACHED {
                    dist[v as usize] = level;
                    next.push(v);
                }
            }
        }
        frontier = next;
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix::NetworkPlan;
    use kylix_net::LocalCluster;
    use kylix_powerlaw::EdgeList;

    #[test]
    fn reference_on_path() {
        let edges: Vec<(u32, u32)> = (0..9u32).map(|v| (v, v + 1)).collect();
        let d = bfs_reference(10, &edges, 0);
        assert_eq!(d, (0..10u64).collect::<Vec<_>>());
    }

    #[test]
    fn distributed_matches_reference() {
        let n = 150u64;
        let g = EdgeList::power_law(n, 900, 1.0, 1.0, 33);
        let expected = bfs_reference(n, &g.edges, 3);
        let parts = g.partition_random(4, 6);
        let results: Vec<Vec<(u64, u64)>> = LocalCluster::run(4, |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
            distributed_bfs(&mut comm, &kylix, &parts[me].edges, 3, 64).unwrap()
        });
        for res in &results {
            for &(v, d) in res {
                assert_eq!(d, expected[v as usize], "vertex {v}");
            }
        }
    }

    #[test]
    fn unreachable_vertices_stay_unreached() {
        // Two disjoint chains; BFS from chain 1 never reaches chain 2.
        let edges = [(0u32, 1u32), (1, 2), (10, 11)];
        let results: Vec<Vec<(u64, u64)>> = LocalCluster::run(2, |mut comm| {
            let me = comm.rank();
            let mine: Vec<(u32, u32)> = edges
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == me)
                .map(|(_, e)| *e)
                .collect();
            let kylix = Kylix::new(NetworkPlan::direct(2));
            distributed_bfs(&mut comm, &kylix, &mine, 0, 16).unwrap()
        });
        for res in &results {
            for &(v, d) in res {
                match v {
                    0 => assert_eq!(d, 0),
                    1 => assert_eq!(d, 1),
                    2 => assert_eq!(d, 2),
                    10 | 11 => assert_eq!(d, UNREACHED, "vertex {v}"),
                    _ => unreachable!(),
                }
            }
        }
    }
}
