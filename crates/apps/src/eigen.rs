//! Dominant-eigenvector power iteration — the §I.A.2 "spectral
//! clustering / eigenvalues … computed from such matrix-vector
//! products" application.
//!
//! Each step is a distributed SpMV (`y = A·v`) through the sparse
//! allreduce, followed by a global 2-norm that itself rides the
//! primitive twice:
//!
//! * **ownership dedup** — a vertex's value is replicated on every
//!   machine whose edge share touches it; a one-time *min* allreduce of
//!   machine ranks elects one owner per vertex, so the squared norm
//!   sums each vertex exactly once;
//! * **scalar sum** — the owners' partial sums combine through a
//!   [`kylix::ScalarCollective`].
//!
//! The iteration converges to the dominant eigenvector/eigenvalue of
//! the (directed) adjacency matrix, verified against a sequential
//! implementation with identical arithmetic.

use crate::matrix::DistMatrix;
use kylix::{Kylix, Result, ScalarCollective};
use kylix_net::Comm;
use kylix_sparse::{MinReducer, SumReducer};

/// One machine's outcome of the power iteration.
#[derive(Debug, Clone)]
pub struct EigenOutcome {
    /// `(vertex, component)` of the normalised eigenvector estimate for
    /// this machine's column vertices.
    pub vector: Vec<(u64, f64)>,
    /// Dominant-eigenvalue estimate (`‖A v‖` at the last step, with
    /// `‖v‖ = 1`).
    pub eigenvalue: f64,
}

/// Run `iters` power-iteration steps on this machine's edge share.
/// Collective call; all machines converge to the same eigenvalue.
pub fn power_iteration<C: Comm>(
    comm: &mut C,
    kylix: &Kylix,
    n_vertices: u64,
    local_edges: &[(u32, u32)],
    iters: usize,
) -> Result<EigenOutcome> {
    let share = DistMatrix::pagerank_share(n_vertices, local_edges);
    // For A·v with A the raw adjacency (edge (s,d) ⇒ A[d][s] = 1), the
    // pagerank_share orientation is exactly what we need. The iterate
    // is tracked on *all* local vertices — dst-only vertices carry
    // nonzero components that the global norm must see.
    let srcs = share.col_indices();
    let dsts = share.row_indices();
    let verts: Vec<u64> = {
        let mut v: Vec<u64> = srcs.iter().chain(dsts.iter()).copied().collect();
        v.sort_unstable();
        v.dedup();
        v
    };
    // Position of each column vertex inside `verts`.
    let src_pos: Vec<usize> = srcs
        .iter()
        .map(|s| verts.binary_search(s).expect("src is a vertex"))
        .collect();

    let mut state = kylix.configure(comm, &verts, &dsts, 0)?;
    // Owner election: min machine rank per local vertex.
    let mut owner_state = kylix.configure(comm, &verts, &verts, 1 << 16)?;
    let me = comm.rank() as u64;
    let owner = owner_state.reduce(comm, &vec![me; verts.len()], MinReducer)?;
    let owned: Vec<usize> = owner
        .iter()
        .enumerate()
        .filter(|(_, &o)| o == me)
        .map(|(i, _)| i)
        .collect();
    let mut norm_coll = ScalarCollective::new(comm, kylix.plan(), 1 << 17)?;

    let n = n_vertices as f64;
    let mut v = vec![1.0 / n.sqrt(); verts.len()];
    let mut eigenvalue = 0.0;
    for _ in 0..iters {
        let x: Vec<f64> = src_pos.iter().map(|&p| v[p]).collect();
        let partial = share.multiply(&x);
        let y = state.reduce(comm, &partial, SumReducer)?;
        let local_sq: f64 = owned.iter().map(|&i| y[i] * y[i]).sum();
        let norm = norm_coll.sum(comm, local_sq)?.sqrt();
        if norm == 0.0 {
            // Nilpotent or empty operator: the iteration is exhausted.
            eigenvalue = 0.0;
            v.iter_mut().for_each(|x| *x = 0.0);
            break;
        }
        eigenvalue = norm;
        for (vi, yi) in v.iter_mut().zip(&y) {
            *vi = yi / norm;
        }
    }
    Ok(EigenOutcome {
        vector: verts.into_iter().zip(v).collect(),
        eigenvalue,
    })
}

/// Sequential reference doing identical math over the full edge list.
pub fn power_iteration_reference(
    n_vertices: u64,
    edges: &[(u32, u32)],
    iters: usize,
) -> (Vec<f64>, f64) {
    let n = n_vertices as usize;
    let mut v = vec![1.0 / (n as f64).sqrt(); n];
    let mut eigenvalue = 0.0;
    for _ in 0..iters {
        let mut y = vec![0.0f64; n];
        for &(s, d) in edges {
            y[d as usize] += v[s as usize];
        }
        let norm: f64 = y.iter().map(|x| x * x).sum::<f64>().sqrt();
        if norm == 0.0 {
            return (vec![0.0; n], 0.0);
        }
        eigenvalue = norm;
        for (vi, yi) in v.iter_mut().zip(&y) {
            *vi = yi / norm;
        }
    }
    (v, eigenvalue)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix::NetworkPlan;
    use kylix_net::LocalCluster;
    use kylix_powerlaw::EdgeList;

    #[test]
    fn distributed_matches_reference() {
        let n = 200u64;
        let g = EdgeList::power_law(n, 2000, 1.1, 1.1, 17);
        let iters = 12;
        let (ref_v, ref_lambda) = power_iteration_reference(n, &g.edges, iters);
        let parts = g.partition_random(4, 3);
        let outcomes: Vec<EigenOutcome> = LocalCluster::run(4, |mut comm| {
            let me = kylix_net::Comm::rank(&comm);
            let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
            power_iteration(&mut comm, &kylix, n, &parts[me].edges, iters).unwrap()
        });
        for o in &outcomes {
            assert!(
                (o.eigenvalue - ref_lambda).abs() < 1e-9,
                "eigenvalue {} vs {ref_lambda}",
                o.eigenvalue
            );
            for &(vertex, x) in &o.vector {
                assert!(
                    (x - ref_v[vertex as usize]).abs() < 1e-9,
                    "vertex {vertex}: {x} vs {}",
                    ref_v[vertex as usize]
                );
            }
        }
    }

    #[test]
    fn cycle_has_eigenvalue_one() {
        // A directed n-cycle is a permutation matrix: |λ| = 1 and the
        // uniform vector is invariant.
        let n = 16u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let outcomes: Vec<EigenOutcome> = LocalCluster::run(2, |mut comm| {
            let me = kylix_net::Comm::rank(&comm);
            let mine: Vec<(u32, u32)> = edges
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == me)
                .map(|(_, e)| *e)
                .collect();
            let kylix = Kylix::new(NetworkPlan::direct(2));
            power_iteration(&mut comm, &kylix, n as u64, &mine, 8).unwrap()
        });
        for o in &outcomes {
            assert!((o.eigenvalue - 1.0).abs() < 1e-9, "{}", o.eigenvalue);
        }
    }

    #[test]
    fn nilpotent_chain_collapses_to_zero() {
        // A directed path is nilpotent: power iteration dies out once
        // the mass walks off the end.
        let edges: Vec<(u32, u32)> = (0..5u32).map(|v| (v, v + 1)).collect();
        let outcomes: Vec<EigenOutcome> = LocalCluster::run(2, |mut comm| {
            let me = kylix_net::Comm::rank(&comm);
            let mine: Vec<(u32, u32)> = edges
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == me)
                .map(|(_, e)| *e)
                .collect();
            let kylix = Kylix::new(NetworkPlan::direct(2));
            power_iteration(&mut comm, &kylix, 6, &mine, 20).unwrap()
        });
        for o in &outcomes {
            assert_eq!(o.eigenvalue, 0.0);
        }
    }
}
