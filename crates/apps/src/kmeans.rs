//! Distributed k-means over sparse feature vectors.
//!
//! Lloyd's algorithm with data parallelism: every machine holds a shard
//! of sparse points; each round it fetches the current centroids,
//! assigns its points, and contributes per-centroid feature sums and
//! member counts through a single sum-allreduce. The centroid state
//! lives at feature homes exactly like the SGD model (§III: "every
//! model feature should have a home machine"), and the flattened index
//! space `centroid · (n_features + 1) + feature` (one extra slot per
//! centroid for the member count) keeps everything in one collective.
//!
//! Centroids of sparse power-law data are themselves sparsish (only
//! features seen in members are nonzero), so the sparse allreduce moves
//! only live coordinates — the same argument as for gradients.

use kylix::{Kylix, Result};
use kylix_net::Comm;
use kylix_sparse::SumReducer;
use std::collections::HashMap;

/// A sparse data point.
#[derive(Debug, Clone)]
pub struct Point {
    /// `(feature, value)` pairs, feature < n_features.
    pub features: Vec<(u64, f64)>,
}

/// Distributed k-means state on one machine.
pub struct KMeans {
    k: usize,
    n_features: u64,
    /// Current centroids as dense-ish sparse maps (feature → value).
    centroids: Vec<HashMap<u64, f64>>,
}

impl KMeans {
    /// Initialise with explicit seed centroids (same on all machines).
    pub fn new(k: usize, n_features: u64, seeds: Vec<Vec<(u64, f64)>>) -> Self {
        assert_eq!(seeds.len(), k);
        Self {
            k,
            n_features,
            centroids: seeds.into_iter().map(|c| c.into_iter().collect()).collect(),
        }
    }

    /// Flattened allreduce index of `(centroid, feature)`.
    fn slot(&self, c: usize, f: u64) -> u64 {
        c as u64 * (self.n_features + 1) + f
    }

    /// Flattened index of centroid `c`'s member counter.
    fn count_slot(&self, c: usize) -> u64 {
        c as u64 * (self.n_features + 1) + self.n_features
    }

    /// Squared distance from a sparse point to a centroid
    /// (`‖x‖² − 2⟨x, c⟩ + ‖c‖²`, with the constant `‖x‖²` dropped since
    /// it does not affect the argmin).
    fn score(&self, point: &Point, c: usize) -> f64 {
        let cent = &self.centroids[c];
        let dot: f64 = point
            .features
            .iter()
            .map(|(f, x)| x * cent.get(f).copied().unwrap_or(0.0))
            .sum();
        let norm2: f64 = cent.values().map(|v| v * v).sum();
        norm2 - 2.0 * dot
    }

    /// Assign a point to its nearest centroid.
    pub fn assign(&self, point: &Point) -> usize {
        (0..self.k)
            .map(|c| (self.score(point, c), c))
            .min_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"))
            .expect("k >= 1")
            .1
    }

    /// One Lloyd round over this machine's points. Collective call;
    /// returns the number of points that changed assignment locally.
    pub fn step<C: Comm>(
        &mut self,
        comm: &mut C,
        kylix: &Kylix,
        points: &[Point],
        prev_assign: &mut Vec<usize>,
        round: u32,
    ) -> Result<usize> {
        if prev_assign.is_empty() {
            prev_assign.resize(points.len(), usize::MAX);
        }
        // Local assignment + accumulation of sums and counts.
        let mut sums: HashMap<u64, f64> = HashMap::new();
        let mut moved = 0usize;
        for (p, prev) in points.iter().zip(prev_assign.iter_mut()) {
            let c = self.assign(p);
            if c != *prev {
                moved += 1;
                *prev = c;
            }
            for (f, x) in &p.features {
                *sums.entry(self.slot(c, *f)).or_insert(0.0) += x;
            }
            *sums.entry(self.count_slot(c)).or_insert(0.0) += 1.0;
        }

        // One combined allreduce: contribute local sums; request every
        // centroid row *densely* (all k·(n+1) slots). A sparse request
        // restricted to locally-seen features would corrupt ‖c‖² — a
        // feature contributed only by another machine still enters
        // the centroid's norm, which the assignment step needs. (For
        // high-dimensional models a support-union pre-exchange would
        // restore sparsity; k·n is small for clustering workloads.)
        let mut in_idx: Vec<u64> = (0..self.k as u64 * (self.n_features + 1)).collect();
        in_idx.extend(sums.keys().copied());
        in_idx.sort_unstable();
        in_idx.dedup();
        let out_idx: Vec<u64> = sums.keys().copied().collect();
        let out_val: Vec<f64> = out_idx.iter().map(|s| sums[s]).collect();
        let (totals, _) = kylix.allreduce_combined(
            comm,
            &in_idx,
            &out_idx,
            &out_val,
            SumReducer,
            round.wrapping_mul(2),
        )?;
        let total: HashMap<u64, f64> = in_idx.into_iter().zip(totals).collect();

        // Recompute centroids from global sums; empty clusters keep
        // their previous position (standard Lloyd fallback).
        for c in 0..self.k {
            let count = total.get(&self.count_slot(c)).copied().unwrap_or(0.0);
            if count == 0.0 {
                continue;
            }
            let feats: Vec<u64> = self.centroids[c]
                .keys()
                .copied()
                .chain(
                    total
                        .keys()
                        .filter(|&&s| {
                            s / (self.n_features + 1) == c as u64
                                && s % (self.n_features + 1) != self.n_features
                        })
                        .map(|&s| s % (self.n_features + 1)),
                )
                .collect();
            let mut next = HashMap::new();
            for f in feats {
                let v = total.get(&self.slot(c, f)).copied().unwrap_or(0.0) / count;
                if v != 0.0 {
                    next.insert(f, v);
                }
            }
            self.centroids[c] = next;
        }
        Ok(moved)
    }

    /// The current centroids as sorted `(feature, value)` lists.
    pub fn centroids(&self) -> Vec<Vec<(u64, f64)>> {
        self.centroids
            .iter()
            .map(|c| {
                let mut v: Vec<(u64, f64)> = c.iter().map(|(f, x)| (*f, *x)).collect();
                v.sort_unstable_by_key(|p| p.0);
                v
            })
            .collect()
    }
}

/// Sequential reference: identical math on the union of all shards.
pub fn kmeans_reference(
    k: usize,
    n_features: u64,
    seeds: Vec<Vec<(u64, f64)>>,
    shards: &[Vec<Point>],
    rounds: usize,
) -> Vec<Vec<(u64, f64)>> {
    let mut model = KMeans::new(k, n_features, seeds);
    for _ in 0..rounds {
        let mut sums: HashMap<u64, f64> = HashMap::new();
        for shard in shards {
            for p in shard {
                let c = model.assign(p);
                for (f, x) in &p.features {
                    *sums.entry(model.slot(c, *f)).or_insert(0.0) += x;
                }
                *sums.entry(model.count_slot(c)).or_insert(0.0) += 1.0;
            }
        }
        for c in 0..k {
            let count = sums.get(&model.count_slot(c)).copied().unwrap_or(0.0);
            if count == 0.0 {
                continue;
            }
            let feats: Vec<u64> = model.centroids[c]
                .keys()
                .copied()
                .chain(
                    sums.keys()
                        .filter(|&&s| {
                            s / (n_features + 1) == c as u64 && s % (n_features + 1) != n_features
                        })
                        .map(|&s| s % (n_features + 1)),
                )
                .collect();
            let mut next = HashMap::new();
            for f in feats {
                let v = sums.get(&model.slot(c, f)).copied().unwrap_or(0.0) / count;
                if v != 0.0 {
                    next.insert(f, v);
                }
            }
            model.centroids[c] = next;
        }
    }
    model.centroids()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix::NetworkPlan;
    use kylix_net::LocalCluster;
    use kylix_sparse::Xoshiro256;

    /// Two well-separated sparse blobs: features 0..4 vs features 10..14.
    fn blobs(per_shard: usize, shards: usize, seed: u64) -> Vec<Vec<Point>> {
        let mut rng = Xoshiro256::new(seed);
        (0..shards)
            .map(|_| {
                (0..per_shard)
                    .map(|i| {
                        let base = if i % 2 == 0 { 0u64 } else { 10 };
                        let features = (0..3)
                            .map(|_| (base + rng.next_below(5), 1.0 + rng.next_f64()))
                            .collect();
                        Point { features }
                    })
                    .collect()
            })
            .collect()
    }

    fn seeds() -> Vec<Vec<(u64, f64)>> {
        vec![vec![(0u64, 1.0)], vec![(10u64, 1.0)]]
    }

    #[test]
    fn distributed_matches_reference() {
        let m = 4;
        let shards = blobs(20, m, 3);
        let rounds = 5;
        let expected = kmeans_reference(2, 20, seeds(), &shards, rounds);
        let got: Vec<Vec<Vec<(u64, f64)>>> = LocalCluster::run(m, |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
            let mut model = KMeans::new(2, 20, seeds());
            let mut assign = Vec::new();
            for r in 0..rounds {
                model
                    .step(&mut comm, &kylix, &shards[me], &mut assign, r as u32 + 1)
                    .unwrap();
            }
            model.centroids()
        });
        for machine in &got {
            for (c, (g, e)) in machine.iter().zip(&expected).enumerate() {
                assert_eq!(g.len(), e.len(), "centroid {c} support");
                for ((gf, gv), (ef, ev)) in g.iter().zip(e) {
                    assert_eq!(gf, ef);
                    assert!((gv - ev).abs() < 1e-9, "centroid {c} feature {gf}");
                }
            }
        }
    }

    #[test]
    fn clusters_separate_blobs() {
        let m = 2;
        let shards = blobs(40, m, 7);
        let got: Vec<usize> = LocalCluster::run(m, |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(NetworkPlan::direct(2));
            let mut model = KMeans::new(2, 20, seeds());
            let mut assign = Vec::new();
            for r in 0..6 {
                model
                    .step(&mut comm, &kylix, &shards[me], &mut assign, r as u32 + 1)
                    .unwrap();
            }
            // Every even point (blob 0) should share a cluster, and
            // differ from every odd point's cluster.
            let c_even = model.assign(&shards[me][0]);
            let c_odd = model.assign(&shards[me][1]);
            assert_ne!(c_even, c_odd, "blobs must separate");
            for (i, p) in shards[me].iter().enumerate() {
                let want = if i % 2 == 0 { c_even } else { c_odd };
                assert_eq!(model.assign(p), want, "point {i}");
            }
            c_even
        });
        // All machines agree on the same model.
        assert!(got.iter().all(|&c| c == got[0]));
    }

    #[test]
    fn empty_cluster_keeps_position() {
        // One blob only: the second centroid never gains members and
        // must keep its seed position.
        let shards: Vec<Vec<Point>> = vec![vec![
            Point {
                features: vec![(0, 1.0)],
            },
            Point {
                features: vec![(1, 1.0)],
            },
        ]];
        let got = LocalCluster::run(1, |mut comm| {
            let kylix = Kylix::new(NetworkPlan::new(&[1]));
            let mut model = KMeans::new(2, 20, seeds());
            let mut assign = Vec::new();
            for r in 0..3 {
                model
                    .step(&mut comm, &kylix, &shards[0], &mut assign, r as u32 + 1)
                    .unwrap();
            }
            model.centroids()
        });
        assert_eq!(got[0][1], vec![(10u64, 1.0)], "empty cluster moved");
    }
}
