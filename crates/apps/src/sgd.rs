//! Mini-batch logistic regression over combined-mode allreduces
//! (paper §I.A.1).
//!
//! The model is *distributed*: feature `f`'s authoritative weight lives
//! on its home machine `hash(f) mod m`, and — following §III to the
//! letter — "every model feature should have a home machine which
//! **always** sends and receives that feature": homes contribute their
//! whole owned shard every round, which is what guarantees the
//! `∪ in ⊆ ∪ out` coverage contract for arbitrary, changing batches.
//! A training round is two combined config+reduce operations whose
//! worker-side index sets change with every batch — the workload the
//! combined mode exists for:
//!
//! 1. **fetch** — workers request the weights of this batch's features;
//!    homes contribute their stored shard (summing with nothing, since
//!    each feature has exactly one home).
//! 2. **push** — workers contribute `−η/b · ∂loss/∂w` at the batch
//!    features; homes request their owned shard back (padding it with
//!    zero contributions) and add the summed update to storage.
//!
//! The result is exact synchronous mini-batch SGD: every round the
//! global weight vector receives the *sum* of all machines' batch
//! gradients, verified against a sequential implementation doing the
//! same math.

use kylix::{Kylix, Result};
use kylix_net::Comm;
use kylix_sparse::{mix64, SumReducer};
use std::collections::HashMap;

/// A labelled sparse example: `(feature, value)` pairs and a ±1 label.
#[derive(Debug, Clone)]
pub struct Example {
    /// Sparse features.
    pub features: Vec<(u64, f64)>,
    /// Label in {−1, +1}.
    pub label: f64,
}

/// Logistic loss gradient factor: `∂/∂z log(1+e^{−yz}) = −y·σ(−yz)`.
fn logistic_grad_factor(z: f64, y: f64) -> f64 {
    -y / (1.0 + (y * z).exp())
}

/// Distributed mini-batch SGD state for one machine.
pub struct SgdWorker {
    /// Owned feature ids (static hash shard of `0..n_features`), sorted.
    owned: Vec<u64>,
    /// Weights aligned with `owned`.
    weights: Vec<f64>,
    /// Learning rate.
    pub learning_rate: f64,
}

impl SgdWorker {
    /// Create a worker owning its hash shard of `0..n_features`.
    pub fn new(rank: usize, m: usize, n_features: u64, learning_rate: f64) -> Self {
        let owned: Vec<u64> = (0..n_features)
            .filter(|&f| (mix64(f) % m as u64) as usize == rank)
            .collect();
        let weights = vec![0.0; owned.len()];
        Self {
            owned,
            weights,
            learning_rate,
        }
    }

    /// Current weight of a feature homed here (tests / inspection).
    pub fn home_weight(&self, f: u64) -> Option<f64> {
        self.owned.binary_search(&f).ok().map(|p| self.weights[p])
    }

    /// The owned `(feature, weight)` shard.
    pub fn shard(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.owned.iter().copied().zip(self.weights.iter().copied())
    }

    /// Process one mini-batch collectively; returns this batch's mean
    /// logistic loss (computed with the pre-update weights). `round`
    /// must be globally consistent and strictly increasing from 1.
    pub fn step<C: Comm>(
        &mut self,
        comm: &mut C,
        kylix: &Kylix,
        batch: &[Example],
        round: u32,
    ) -> Result<f64> {
        // Batch feature set (distinct).
        let mut feats: Vec<u64> = batch
            .iter()
            .flat_map(|e| e.features.iter().map(|p| p.0))
            .collect();
        feats.sort_unstable();
        feats.dedup();

        let channel = round.wrapping_mul(4);

        // --- Fetch: in = batch features, out = owned shard. ---
        let (weights, _) = kylix.allreduce_combined(
            comm,
            &feats,
            &self.owned,
            &self.weights,
            SumReducer,
            channel,
        )?;
        let w: HashMap<u64, f64> = feats.iter().copied().zip(weights).collect();

        // --- Local gradient over the batch. ---
        let mut grad: HashMap<u64, f64> = HashMap::new();
        let mut loss = 0.0;
        for ex in batch {
            let z: f64 = ex.features.iter().map(|(f, x)| w[f] * x).sum();
            loss += (1.0 + (-ex.label * z).exp()).ln();
            let g = logistic_grad_factor(z, ex.label);
            for (f, x) in &ex.features {
                *grad.entry(*f).or_insert(0.0) += g * x;
            }
        }
        let scale = -self.learning_rate / batch.len().max(1) as f64;

        // --- Push: out = scaled batch gradient; in = owned shard
        // (features no batch touched this round read as a 0 update). ---
        let grad_idx: Vec<u64> = grad.keys().copied().collect();
        let grad_val: Vec<f64> = grad_idx.iter().map(|f| grad[f] * scale).collect();
        let (updates, _) = kylix.allreduce_combined(
            comm,
            &self.owned,
            &grad_idx,
            &grad_val,
            SumReducer,
            channel + 2,
        )?;
        for (wgt, u) in self.weights.iter_mut().zip(updates) {
            *wgt += u;
        }
        Ok(loss / batch.len().max(1) as f64)
    }
}

/// Sequential reference doing the identical synchronous math: each
/// round, the global weights receive the summed (scaled) gradients of
/// all machines' batches.
pub fn sgd_reference(
    rounds: &[Vec<Vec<Example>>], // rounds -> machines -> batch
    learning_rate: f64,
) -> HashMap<u64, f64> {
    let mut w: HashMap<u64, f64> = HashMap::new();
    for machines in rounds {
        let mut update: HashMap<u64, f64> = HashMap::new();
        for batch in machines {
            let scale = -learning_rate / batch.len().max(1) as f64;
            for ex in batch {
                let z: f64 = ex
                    .features
                    .iter()
                    .map(|(f, x)| w.get(f).copied().unwrap_or(0.0) * x)
                    .sum();
                let g = logistic_grad_factor(z, ex.label);
                for (f, x) in &ex.features {
                    *update.entry(*f).or_insert(0.0) += g * x * scale;
                }
            }
        }
        for (f, u) in update {
            *w.entry(f).or_insert(0.0) += u;
        }
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix::NetworkPlan;
    use kylix_net::LocalCluster;
    use kylix_powerlaw::Zipf;
    use kylix_sparse::Xoshiro256;

    /// Synthetic sparse classification data: power-law features, true
    /// weights ±1 alternating by feature parity.
    fn synth_batches(
        machines: usize,
        rounds: usize,
        per_batch: usize,
        n_features: u64,
        seed: u64,
    ) -> Vec<Vec<Vec<Example>>> {
        let zipf = Zipf::new(n_features, 1.1);
        let truth = |f: u64| if f.is_multiple_of(2) { 1.0 } else { -1.0 };
        (0..rounds)
            .map(|r| {
                (0..machines)
                    .map(|mc| {
                        let mut rng =
                            Xoshiro256::new(kylix_sparse::mix_many(&[seed, r as u64, mc as u64]));
                        (0..per_batch)
                            .map(|_| {
                                let k = 2 + rng.next_index(5);
                                let mut fs: Vec<u64> =
                                    (0..k).map(|_| zipf.sample_index(&mut rng)).collect();
                                fs.sort_unstable();
                                fs.dedup();
                                let features: Vec<(u64, f64)> =
                                    fs.iter().map(|&f| (f, 1.0)).collect();
                                let score: f64 = fs.iter().map(|&f| truth(f)).sum();
                                let label = if score >= 0.0 { 1.0 } else { -1.0 };
                                Example { features, label }
                            })
                            .collect()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn distributed_sgd_matches_reference() {
        let m = 4;
        let rounds = 6;
        let n_features = 64;
        let data = synth_batches(m, rounds, 8, n_features, 5);
        let lr = 0.5;
        let expected = sgd_reference(&data, lr);
        let shards: Vec<Vec<(u64, f64)>> = LocalCluster::run(m, |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
            let mut worker = SgdWorker::new(me, m, n_features, lr);
            for (r, machines) in data.iter().enumerate() {
                worker
                    .step(&mut comm, &kylix, &machines[me], r as u32 + 1)
                    .unwrap();
            }
            worker.shard().collect()
        });
        let mut got: HashMap<u64, f64> = HashMap::new();
        for shard in shards {
            for (f, w) in shard {
                assert!(!got.contains_key(&f), "feature {f} homed twice");
                got.insert(f, w);
            }
        }
        assert_eq!(got.len(), n_features as usize, "shards must tile the space");
        for (f, w) in &expected {
            let g = got.get(f).copied().unwrap_or(0.0);
            assert!((g - w).abs() < 1e-9, "feature {f}: {g} vs {w}");
        }
    }

    #[test]
    fn loss_decreases_over_training() {
        let m = 2;
        let rounds = 30;
        let data = synth_batches(m, rounds, 16, 32, 11);
        let losses: Vec<Vec<f64>> = LocalCluster::run(m, |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(NetworkPlan::direct(2));
            let mut worker = SgdWorker::new(me, m, 32, 0.5);
            data.iter()
                .enumerate()
                .map(|(r, machines)| {
                    worker
                        .step(&mut comm, &kylix, &machines[me], r as u32 + 1)
                        .unwrap()
                })
                .collect()
        });
        for per_machine in &losses {
            let early: f64 = per_machine[..5].iter().sum::<f64>() / 5.0;
            let late: f64 = per_machine[rounds - 5..].iter().sum::<f64>() / 5.0;
            assert!(
                late < early * 0.8,
                "loss should drop: early {early:.4} late {late:.4}"
            );
        }
    }

    #[test]
    fn shards_partition_feature_space() {
        let m = 3;
        let n = 100u64;
        let workers: Vec<Vec<u64>> = (0..m)
            .map(|rank| {
                SgdWorker::new(rank, m, n, 0.1)
                    .shard()
                    .map(|(f, _)| f)
                    .collect()
            })
            .collect();
        let mut all: Vec<u64> = workers.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..n).collect::<Vec<_>>());
    }

    #[test]
    fn gradient_factor_signs() {
        // Confident correct prediction -> tiny gradient; wrong -> large.
        assert!(logistic_grad_factor(5.0, 1.0).abs() < 0.01);
        assert!(logistic_grad_factor(-5.0, 1.0).abs() > 0.9);
        assert!(logistic_grad_factor(5.0, -1.0) > 0.9);
    }
}
