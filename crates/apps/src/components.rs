//! Connected components by min-label propagation.
//!
//! Treats the edge share as undirected: every vertex starts with its own
//! id as label, and each round every vertex takes the minimum label in
//! its closed neighbourhood — distributed as a *min* sparse allreduce
//! where each machine contributes, per local edge `(u,v)`, the candidate
//! labels `label(u)` for `v` and `label(v)` for `u` (plus each vertex's
//! own label, which also keeps the in/out coverage contract satisfied).
//! Convergence is detected with a one-index sum allreduce of per-machine
//! change counters — the primitive again bootstrapping its own control
//! plane.

use kylix::{Kylix, Result};
use kylix_net::Comm;
use kylix_sparse::{IndexSet, Key, MinReducer};

/// Run distributed connected components on this machine's edge share.
///
/// Returns `(vertex, component_label)` for every local vertex; labels
/// are the minimum vertex id in the component. Collective call.
pub fn distributed_components<C: Comm>(
    comm: &mut C,
    kylix: &Kylix,
    local_edges: &[(u32, u32)],
    max_rounds: usize,
) -> Result<Vec<(u64, u64)>> {
    // Local vertex set = endpoints of local edges.
    let verts = IndexSet::from_indices(local_edges.iter().flat_map(|&(s, d)| [s as u64, d as u64]));
    let vert_ids: Vec<u64> = verts.indices().collect();
    let edge_pos: Vec<(u32, u32)> = local_edges
        .iter()
        .map(|&(s, d)| {
            (
                verts.position(Key::new(s as u64)).expect("own vertex") as u32,
                verts.position(Key::new(d as u64)).expect("own vertex") as u32,
            )
        })
        .collect();

    // Labels allreduce: in = local vertices; out = one candidate per
    // edge endpoint + own label per vertex. Index lists are fixed across
    // rounds, so configure once.
    let out_idx: Vec<u64> = local_edges
        .iter()
        .flat_map(|&(s, d)| [d as u64, s as u64])
        .chain(vert_ids.iter().copied())
        .collect();
    let mut label_state = kylix.configure(comm, &vert_ids, &out_idx, 0)?;
    // Convergence rides a scalar collective on a disjoint channel.
    let mut done = kylix::ScalarCollective::new(comm, kylix.plan(), 1 << 16)?;

    let mut label: Vec<u64> = vert_ids.clone();
    for _ in 0..max_rounds {
        let out_vals: Vec<u64> = edge_pos
            .iter()
            .flat_map(|&(sp, dp)| [label[sp as usize], label[dp as usize]])
            .chain(label.iter().copied())
            .collect();
        let new_labels = label_state.reduce(comm, &out_vals, MinReducer)?;
        let changed = label != new_labels;
        label = new_labels;
        if !done.any(comm, changed)? {
            break;
        }
    }
    Ok(vert_ids.into_iter().zip(label).collect())
}

/// Sequential union-find reference.
pub fn components_reference(n: u64, edges: &[(u32, u32)]) -> Vec<u64> {
    struct Dsu(Vec<u32>);
    impl Dsu {
        fn find(&mut self, x: u32) -> u32 {
            if self.0[x as usize] != x {
                let root = self.find(self.0[x as usize]);
                self.0[x as usize] = root;
            }
            self.0[x as usize]
        }
        fn union(&mut self, a: u32, b: u32) {
            let (ra, rb) = (self.find(a), self.find(b));
            if ra != rb {
                // Attach the larger id under the smaller so roots are
                // component minima.
                let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
                self.0[hi as usize] = lo;
            }
        }
    }
    let mut dsu = Dsu((0..n as u32).collect());
    for &(s, d) in edges {
        dsu.union(s, d);
    }
    (0..n as u32).map(|v| dsu.find(v) as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix::NetworkPlan;
    use kylix_net::LocalCluster;
    use kylix_powerlaw::EdgeList;
    use kylix_sparse::Xoshiro256;

    #[test]
    fn reference_finds_minima() {
        // Components {0,1,2}, {3,4}, {5}.
        let labels = components_reference(6, &[(0, 1), (1, 2), (3, 4)]);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn distributed_matches_reference() {
        let n = 200u64;
        let mut rng = Xoshiro256::new(14);
        // Sparse random graph with several components: ~0.6 edges/vertex.
        let edges: Vec<(u32, u32)> = (0..120)
            .map(|_| (rng.next_below(n) as u32, rng.next_below(n) as u32))
            .collect();
        let expected = components_reference(n, &edges);
        let m = 4;
        let parts: Vec<Vec<(u32, u32)>> = (0..m)
            .map(|k| {
                edges
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % m == k)
                    .map(|(_, e)| *e)
                    .collect()
            })
            .collect();
        let results: Vec<Vec<(u64, u64)>> = LocalCluster::run(m, |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
            distributed_components(&mut comm, &kylix, &parts[me], 64).unwrap()
        });
        let mut checked = 0;
        for res in &results {
            for &(v, l) in res {
                assert_eq!(l, expected[v as usize], "vertex {v}");
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn power_law_graph_single_giant_component() {
        let g = EdgeList::power_law(150, 1500, 1.0, 1.0, 15);
        let expected = components_reference(150, &g.edges);
        let parts = g.partition_random(4, 5);
        let results: Vec<Vec<(u64, u64)>> = LocalCluster::run(4, |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(NetworkPlan::direct(4));
            distributed_components(&mut comm, &kylix, &parts[me].edges, 64).unwrap()
        });
        for res in &results {
            for &(v, l) in res {
                assert_eq!(l, expected[v as usize]);
            }
        }
    }
}
