//! Edge-partitioned distributed sparse matrix.
//!
//! One machine's share of a global sparse matrix, stored with *local
//! index compaction*: the distinct row and column ids become sorted
//! [`IndexSet`]s and every entry holds positions into them, so the local
//! multiply kernel runs on dense-indexed arrays and the sets plug
//! straight into the allreduce as `out` (rows) and `in` (columns) —
//! exactly the wiring of paper §I.A.2.

use kylix_sparse::{IndexSet, Key};

/// One machine's triplet share of a sparse matrix, locally compacted.
#[derive(Debug, Clone)]
pub struct DistMatrix {
    n_rows: u64,
    n_cols: u64,
    rows: IndexSet,
    cols: IndexSet,
    /// Entries as (row position, col position, value).
    entries: Vec<(u32, u32, f64)>,
}

impl DistMatrix {
    /// Build from global `(row, col, value)` triplets.
    pub fn from_triplets(
        n_rows: u64,
        n_cols: u64,
        triplets: impl IntoIterator<Item = (u64, u64, f64)>,
    ) -> Self {
        let triplets: Vec<(u64, u64, f64)> = triplets.into_iter().collect();
        let rows = IndexSet::from_indices(triplets.iter().map(|t| t.0));
        let cols = IndexSet::from_indices(triplets.iter().map(|t| t.1));
        let entries = triplets
            .into_iter()
            .map(|(r, c, v)| {
                (
                    rows.position(Key::new(r)).expect("own row") as u32,
                    cols.position(Key::new(c)).expect("own col") as u32,
                    v,
                )
            })
            .collect();
        Self {
            n_rows,
            n_cols,
            rows,
            cols,
            entries,
        }
    }

    /// Adjacency share for PageRank: edge `(s, d)` contributes entry
    /// `(row=d, col=s, 1.0)` — the matrix that sums `rank/deg` over
    /// in-edges once values are divided by degree.
    pub fn pagerank_share(n_vertices: u64, edges: &[(u32, u32)]) -> Self {
        Self::from_triplets(
            n_vertices,
            n_vertices,
            edges.iter().map(|&(s, d)| (d as u64, s as u64, 1.0)),
        )
    }

    /// Global row dimension.
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// Global column dimension.
    pub fn n_cols(&self) -> u64 {
        self.n_cols
    }

    /// Number of local entries.
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Distinct local row ids, sorted by hash (the allreduce `out` set).
    pub fn row_indices(&self) -> Vec<u64> {
        self.rows.indices().collect()
    }

    /// Distinct local column ids (the allreduce `in` set).
    pub fn col_indices(&self) -> Vec<u64> {
        self.cols.indices().collect()
    }

    /// The compacted row set.
    pub fn rows(&self) -> &IndexSet {
        &self.rows
    }

    /// The compacted column set.
    pub fn cols(&self) -> &IndexSet {
        &self.cols
    }

    /// Local product `y = A·x`: `x` aligned with [`Self::col_indices`],
    /// result aligned with [`Self::row_indices`].
    pub fn multiply(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols.len(), "x misaligned with columns");
        let mut y = vec![0.0; self.rows.len()];
        for &(r, c, v) in &self.entries {
            y[r as usize] += v * x[c as usize];
        }
        y
    }

    /// Local transposed product `y = Aᵀ·x`: `x` aligned with rows,
    /// result aligned with columns.
    pub fn multiply_transposed(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.rows.len(), "x misaligned with rows");
        let mut y = vec![0.0; self.cols.len()];
        for &(r, c, v) in &self.entries {
            y[c as usize] += v * x[r as usize];
        }
        y
    }

    /// Per-column entry counts (local out-degree contributions when the
    /// matrix is a PageRank share).
    pub fn col_counts(&self) -> Vec<f64> {
        let mut counts = vec![0.0; self.cols.len()];
        for &(_, c, _) in &self.entries {
            counts[c as usize] += 1.0;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compaction_round_trips() {
        let m = DistMatrix::from_triplets(10, 10, [(3u64, 7u64, 2.0), (3, 2, 1.0), (9, 7, 4.0)]);
        assert_eq!(m.nnz(), 3);
        let mut rows = m.row_indices();
        rows.sort_unstable();
        assert_eq!(rows, vec![3, 9]);
        let mut cols = m.col_indices();
        cols.sort_unstable();
        assert_eq!(cols, vec![2, 7]);
    }

    #[test]
    fn multiply_matches_dense() {
        // A = [[1, 2], [0, 3]] over rows {0,1}, cols {0,1}.
        let m = DistMatrix::from_triplets(2, 2, [(0u64, 0u64, 1.0), (0, 1, 2.0), (1, 1, 3.0)]);
        // x aligned with col set (hash order!) — map explicitly.
        let cols = m.col_indices();
        let x: Vec<f64> = cols
            .iter()
            .map(|&c| if c == 0 { 5.0 } else { 7.0 })
            .collect();
        let y = m.multiply(&x);
        let rows = m.row_indices();
        for (i, &r) in rows.iter().enumerate() {
            let want = if r == 0 { 5.0 + 14.0 } else { 21.0 };
            assert_eq!(y[i], want);
        }
    }

    #[test]
    fn transpose_multiply_is_adjoint() {
        // <Ax, y> == <x, A^T y> for random A, x, y.
        let mut rng = kylix_sparse::Xoshiro256::new(3);
        let triplets: Vec<(u64, u64, f64)> = (0..50)
            .map(|_| (rng.next_below(20), rng.next_below(20), rng.next_f64()))
            .collect();
        let m = DistMatrix::from_triplets(20, 20, triplets);
        let x: Vec<f64> = (0..m.cols().len()).map(|_| rng.next_f64()).collect();
        let y: Vec<f64> = (0..m.rows().len()).map(|_| rng.next_f64()).collect();
        let ax = m.multiply(&x);
        let aty = m.multiply_transposed(&y);
        let lhs: f64 = ax.iter().zip(&y).map(|(a, b)| a * b).sum();
        let rhs: f64 = x.iter().zip(&aty).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn pagerank_share_orients_edges() {
        // Edge (s=1, d=2): row 2, col 1.
        let m = DistMatrix::pagerank_share(5, &[(1, 2)]);
        assert_eq!(m.row_indices(), vec![2]);
        assert_eq!(m.col_indices(), vec![1]);
    }

    #[test]
    fn col_counts_count_entries() {
        let m = DistMatrix::pagerank_share(5, &[(1, 2), (1, 3), (4, 2)]);
        let cols = m.col_indices();
        let counts = m.col_counts();
        for (i, &c) in cols.iter().enumerate() {
            let want = if c == 1 { 2.0 } else { 1.0 };
            assert_eq!(counts[i], want, "col {c}");
        }
    }
}
