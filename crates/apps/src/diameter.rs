//! HADI-style effective-diameter estimation (paper §I.A.2, ref.\ 13).
//!
//! The HADI algorithm estimates neighbourhood sizes `N(h)` — how many
//! vertex pairs are within `h` hops — with Flajolet–Martin bitstring
//! sketches: vertex `v`'s sketch at radius `h+1` is the bitwise OR of
//! its neighbours' radius-`h` sketches plus its own, which is exactly a
//! sparse allreduce with the `|` reducer. We run `R` independent
//! sketches per vertex (feature id `v·R + r`) and estimate
//! `|N_h(v)| ≈ 2^{b̄} / 0.77351`, where `b̄` is the mean position of the
//! lowest zero bit across the `R` copies. The effective diameter is the
//! smallest `h` with `N(h) ≥ 0.9 · N(h_max)`.

use kylix::{Kylix, Result};
use kylix_net::Comm;
use kylix_sparse::{BitOrReducer, IndexSet, Key, SumReducer, Xoshiro256};

/// Flajolet–Martin correction constant.
const FM_PHI: f64 = 0.77351;

/// One machine's view of the neighbourhood function.
#[derive(Debug, Clone)]
pub struct DiameterEstimate {
    /// `N(h)` for `h = 0, 1, …` — the global neighbourhood function.
    pub neighbourhood: Vec<f64>,
    /// Smallest `h` with `N(h) ≥ 0.9 · N(max)`.
    pub effective_diameter: usize,
}

/// Draw the initial FM sketch of one vertex copy: bit `b` set with
/// probability `2^{-(b+1)}`.
fn initial_sketch(rng: &mut Xoshiro256) -> u64 {
    let u = rng.next_u64();
    // Geometric: position of lowest set bit of a uniform word.
    1u64 << (u.trailing_zeros().min(63))
}

/// Lowest-zero-bit position of a sketch.
fn lowest_zero(sketch: u64) -> u32 {
    (!sketch).trailing_zeros()
}

/// Distributed HADI: estimate the neighbourhood function and effective
/// diameter of the *undirected* view of the graph. Collective call;
/// every machine returns the same estimate.
pub fn distributed_diameter<C: Comm>(
    comm: &mut C,
    kylix: &Kylix,
    local_edges: &[(u32, u32)],
    n_vertices: u64,
    sketches: usize,
    max_h: usize,
    seed: u64,
) -> Result<DiameterEstimate> {
    let r = sketches as u64;
    let verts = IndexSet::from_indices(local_edges.iter().flat_map(|&(s, d)| [s as u64, d as u64]));
    let vert_ids: Vec<u64> = verts.indices().collect();
    let edge_pos: Vec<(u32, u32)> = local_edges
        .iter()
        .map(|&(s, d)| {
            (
                verts.position(Key::new(s as u64)).expect("own") as u32,
                verts.position(Key::new(d as u64)).expect("own") as u32,
            )
        })
        .collect();

    // Feature space: vertex v copy r -> v*R + r. In = our vertices'
    // copies; out = per (undirected) edge the neighbour's copies, plus
    // self copies for coverage.
    let in_idx: Vec<u64> = vert_ids
        .iter()
        .flat_map(|&v| (0..r).map(move |k| v * r + k))
        .collect();
    let out_idx: Vec<u64> = local_edges
        .iter()
        .flat_map(|&(s, d)| {
            let (s, d) = (s as u64, d as u64);
            (0..r).flat_map(move |k| [d * r + k, s * r + k])
        })
        .chain(in_idx.iter().copied())
        .collect();
    let mut sketch_state = kylix.configure(comm, &in_idx, &out_idx, 0)?;
    let mut sum_state = kylix.configure(comm, &[0u64], &[0u64], 1 << 16)?;

    // Initial sketches: deterministic per (vertex, copy) so every
    // machine holding a replica of a vertex draws identical bits.
    let sketch_of = |v: u64, k: u64| -> u64 {
        let mut rng = Xoshiro256::new(kylix_sparse::mix_many(&[seed, v, k]));
        initial_sketch(&mut rng)
    };
    let mut sketch: Vec<u64> = vert_ids
        .iter()
        .flat_map(|&v| (0..r).map(move |k| sketch_of(v, k)))
        .collect();

    // A vertex may be replicated on several machines; to avoid double
    // counting, each vertex is scored by exactly one machine
    // (hash(v) mod m == rank).
    let m = comm.size();
    let me = comm.rank();
    let scores_mine: Vec<usize> = vert_ids
        .iter()
        .enumerate()
        .filter(|(_, &v)| (kylix_sparse::mix64(v) % m as u64) as usize == me)
        .map(|(i, _)| i)
        .collect();

    let mut neighbourhood = Vec::with_capacity(max_h + 1);
    for h in 0..=max_h {
        if h > 0 {
            // OR-allreduce one hop: value order mirrors `out_idx` —
            // per edge, the destination's copy receives the source's
            // sketch and vice versa, then the self copies.
            let mut out_vals: Vec<u64> =
                Vec::with_capacity(edge_pos.len() * 2 * sketches + sketch.len());
            for &(sp, dp) in &edge_pos {
                for k in 0..sketches {
                    out_vals.push(sketch[sp as usize * sketches + k]);
                    out_vals.push(sketch[dp as usize * sketches + k]);
                }
            }
            out_vals.extend_from_slice(&sketch);
            sketch = sketch_state.reduce(comm, &out_vals, BitOrReducer)?;
        }
        // Local contribution to N(h).
        let local: f64 = scores_mine
            .iter()
            .map(|&i| {
                let mean_b: f64 = (0..sketches)
                    .map(|k| lowest_zero(sketch[i * sketches + k]) as f64)
                    .sum::<f64>()
                    / sketches as f64;
                2f64.powf(mean_b) / FM_PHI
            })
            .sum();
        // Sum across machines (bit-cast through u64 to reuse the u64
        // reducer would lose precision; use a second f64 allreduce).
        let total = sum_state.reduce(comm, &[(local * 1e6) as u64], SumReducer)?[0] as f64 / 1e6;
        neighbourhood.push(total);
    }
    let target = 0.9 * neighbourhood.last().copied().unwrap_or(0.0);
    let effective_diameter = neighbourhood
        .iter()
        .position(|&nh| nh >= target)
        .unwrap_or(max_h);
    let _ = n_vertices; // documented scale parameter, not needed by the estimator
    Ok(DiameterEstimate {
        neighbourhood,
        effective_diameter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix::NetworkPlan;
    use kylix_net::LocalCluster;

    #[test]
    fn sketch_initialisation_is_geometric() {
        let mut rng = Xoshiro256::new(1);
        let mut bit0 = 0usize;
        let n = 100_000;
        for _ in 0..n {
            if initial_sketch(&mut rng) & 1 != 0 {
                bit0 += 1;
            }
        }
        let frac = bit0 as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "bit0 rate {frac}");
    }

    #[test]
    fn lowest_zero_examples() {
        assert_eq!(lowest_zero(0b0), 0);
        assert_eq!(lowest_zero(0b1), 1);
        assert_eq!(lowest_zero(0b111), 3);
        assert_eq!(lowest_zero(0b1011), 2);
    }

    #[test]
    fn cycle_has_known_effective_diameter() {
        // A 32-cycle (undirected view): N(h) saturates at h = 16; the
        // 90 % point lands near 0.9*16 ≈ 14.
        let n = 32u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let parts: Vec<Vec<(u32, u32)>> = (0..2)
            .map(|k| {
                edges
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i % 2 == k)
                    .map(|(_, e)| *e)
                    .collect()
            })
            .collect();
        let estimates: Vec<DiameterEstimate> = LocalCluster::run(2, |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(NetworkPlan::direct(2));
            distributed_diameter(&mut comm, &kylix, &parts[me], n as u64, 16, 20, 7).unwrap()
        });
        for e in &estimates {
            assert!(
                (10..=18).contains(&e.effective_diameter),
                "effective diameter {} (N = {:?})",
                e.effective_diameter,
                e.neighbourhood
            );
            // Monotone non-decreasing neighbourhood function.
            for w in e.neighbourhood.windows(2) {
                assert!(w[1] >= w[0] - 1e-6);
            }
        }
        // All machines agree.
        assert_eq!(
            estimates[0].effective_diameter,
            estimates[1].effective_diameter
        );
    }

    #[test]
    fn star_graph_has_tiny_diameter() {
        let edges: Vec<(u32, u32)> = (1..40u32).map(|v| (0, v)).collect();
        let estimates: Vec<DiameterEstimate> = LocalCluster::run(2, |mut comm| {
            let me = comm.rank();
            let mine: Vec<(u32, u32)> = edges
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == me)
                .map(|(_, e)| *e)
                .collect();
            let kylix = Kylix::new(NetworkPlan::direct(2));
            distributed_diameter(&mut comm, &kylix, &mine, 40, 16, 6, 9).unwrap()
        });
        for e in &estimates {
            assert!(
                e.effective_diameter <= 2,
                "star diameter {}",
                e.effective_diameter
            );
        }
    }
}
