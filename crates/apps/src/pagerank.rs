//! Distributed PageRank over a sparse allreduce — the paper's benchmark
//! application (§I.A.2, Figs. 8 and 9).
//!
//! Wiring, per machine holding an edge share `Xᵢ`:
//!
//! * **in set** — the distinct *source* vertices of local edges (the
//!   columns of `Xᵢ`): the machine needs their current ranks.
//! * **out set** — the distinct *destination* vertices (rows): the
//!   machine contributes `Σ rank(src)/deg(src)` partial sums to them.
//!   Sources with no in-edges anywhere are requested but never
//!   contributed to; the allreduce serves them the sum identity (0),
//!   which is exactly their in-sum.
//!
//! Setup runs one extra sum-allreduce to aggregate global out-degrees
//! (each machine contributes its local edge counts per source vertex) —
//! the same primitive bootstrapping its own metadata.
//!
//! Every iteration is then a single [`kylix::Configured::reduce`] plus a
//! local damping update; the per-phase virtual/wall clocks are recorded
//! so the harness can reproduce the paper's compute/communication
//! breakdowns (Fig. 9).

use crate::matrix::DistMatrix;
use kylix::{Kylix, Result};
use kylix_net::Comm;
use kylix_sparse::SumReducer;

/// Tunables for a distributed PageRank run.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor (the paper's `(n−1)/n` corresponds to ≈0.85-style
    /// damping; 0.85 is the conventional value we default to).
    pub damping: f64,
    /// Number of power iterations.
    pub iterations: usize,
    /// Simulated compute cost per local edge per iteration, seconds
    /// (charged through `Comm::charge_compute`; calibrated in
    /// EXPERIMENTS.md to the paper's 64-node compute share).
    pub compute_per_edge: f64,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            iterations: 10,
            compute_per_edge: 4.0e-9,
        }
    }
}

/// One machine's outcome: final ranks for its in-vertices plus timing.
#[derive(Debug, Clone)]
pub struct PageRankOutcome {
    /// `(vertex, rank)` for every local in-vertex (distinct sources).
    pub ranks: Vec<(u64, f64)>,
    /// Time spent in the one-time configuration pass (seconds, in the
    /// communicator's clock domain).
    pub config_time: f64,
    /// Total time spent inside reduce calls.
    pub comm_time: f64,
    /// Total time spent in local compute (multiply + apply).
    pub compute_time: f64,
    /// Number of iterations executed.
    pub iterations: usize,
}

/// Run distributed PageRank on this machine's edge share.
///
/// All machines must call this collectively with the same `kylix`
/// topology, `n_vertices`, and config.
pub fn distributed_pagerank<C: Comm>(
    comm: &mut C,
    kylix: &Kylix,
    n_vertices: u64,
    local_edges: &[(u32, u32)],
    cfg: &PageRankConfig,
) -> Result<PageRankOutcome> {
    let share = DistMatrix::pagerank_share(n_vertices, local_edges);
    let srcs = share.col_indices();
    let dsts = share.row_indices();

    let t0 = comm.now();
    // Degree aggregation bootstraps on the same primitive: channel 0.
    // Sources with in-edges nowhere simply read identity (0 in-sum),
    // so no coverage padding is needed.
    let mut deg_state = kylix.configure(comm, &srcs, &srcs, 0)?;
    // Rank exchange uses a disjoint channel namespace, spaced past the
    // iteration count: contribute at rows (destinations), request
    // columns (sources).
    let mut state = kylix.configure(comm, &srcs, &dsts, 1 << 16)?;
    let config_time = comm.now() - t0;

    // Global out-degrees of local sources.
    let deg = deg_state.reduce(comm, &share.col_counts(), SumReducer)?;

    let mut comm_time = 0.0;
    let mut compute_time = 0.0;
    let n = n_vertices as f64;
    // Ranks of local in-vertices (sources), initialised uniformly.
    let mut rank: Vec<f64> = vec![1.0 / n; srcs.len()];

    for _ in 0..cfg.iterations {
        let c0 = comm.now();
        // Local multiply: partial sums at destinations.
        let x: Vec<f64> = rank
            .iter()
            .zip(&deg)
            .map(|(r, d)| if *d > 0.0 { r / d } else { 0.0 })
            .collect();
        let partial = share.multiply(&x);
        comm.charge_compute(cfg.compute_per_edge * share.nnz() as f64);
        let c1 = comm.now();
        compute_time += c1 - c0;

        let sums = state.reduce(comm, &partial, SumReducer)?;
        let c2 = comm.now();
        comm_time += c2 - c1;

        for (r, s) in rank.iter_mut().zip(&sums) {
            *r = (1.0 - cfg.damping) / n + cfg.damping * s;
        }
        comm.charge_compute(1.0e-9 * rank.len() as f64);
        compute_time += comm.now() - c2;
    }

    Ok(PageRankOutcome {
        ranks: srcs.into_iter().zip(rank).collect(),
        config_time,
        comm_time,
        compute_time,
        iterations: cfg.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix::NetworkPlan;
    use kylix_net::LocalCluster;
    use kylix_powerlaw::{Csr, EdgeList};

    fn check_against_reference(plan: NetworkPlan, m: usize, seed: u64) {
        let n = 300u64;
        let g = EdgeList::power_law(n, 3000, 1.1, 1.1, seed);
        let csr = Csr::from_edges(n, &g.edges);
        let cfg = PageRankConfig {
            damping: 0.85,
            iterations: 6,
            compute_per_edge: 0.0,
        };
        let expected = csr.pagerank_reference(cfg.iterations, cfg.damping);
        let parts = g.partition_random(m, seed + 1);
        let outcomes: Vec<PageRankOutcome> = LocalCluster::run(m, |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(plan.clone());
            distributed_pagerank(&mut comm, &kylix, n, &parts[me].edges, &cfg).unwrap()
        });
        let mut checked = 0;
        for o in &outcomes {
            for &(v, r) in &o.ranks {
                assert!(
                    (r - expected[v as usize]).abs() < 1e-9,
                    "vertex {v}: {r} vs {} (plan {plan})",
                    expected[v as usize]
                );
                checked += 1;
            }
        }
        assert!(checked > 0);
    }

    #[test]
    fn pagerank_matches_reference_on_butterfly() {
        check_against_reference(NetworkPlan::new(&[2, 2]), 4, 11);
    }

    #[test]
    fn pagerank_matches_reference_on_direct() {
        check_against_reference(NetworkPlan::direct(6), 6, 12);
    }

    #[test]
    fn pagerank_matches_reference_on_three_layers() {
        check_against_reference(NetworkPlan::new(&[2, 2, 2]), 8, 13);
    }

    #[test]
    fn replicas_agree_on_ranks() {
        use kylix::ReplicatedComm;
        let n = 120u64;
        let g = EdgeList::power_law(n, 1000, 1.0, 1.0, 21);
        let parts = g.partition_random(4, 3);
        let cfg = PageRankConfig {
            iterations: 4,
            ..Default::default()
        };
        let outcomes: Vec<Vec<(u64, f64)>> = LocalCluster::run(8, |comm| {
            let mut rc = ReplicatedComm::new(comm, 2);
            let me = rc.rank();
            let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
            distributed_pagerank(&mut rc, &kylix, n, &parts[me].edges, &cfg)
                .unwrap()
                .ranks
        });
        for logical in 0..4 {
            assert_eq!(
                outcomes[logical],
                outcomes[logical + 4],
                "replica divergence"
            );
        }
    }
}
