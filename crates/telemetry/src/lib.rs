#![warn(missing_docs)]

//! # kylix-telemetry
//!
//! Cross-substrate observability for the Kylix reproduction: per-rank,
//! per-phase, per-layer counters, a bounded log₂ timing histogram, and
//! an optional ring-buffer event trace — all exportable as JSON.
//!
//! The same facility serves both execution substrates. On
//! `LocalCluster` (real threads) the histogram records wall time; on
//! `SimCluster` it records virtual time. Which one is in effect is
//! carried by the [`Clock`] tag so an export is self-describing.
//!
//! ## Design constraints
//!
//! The PR 2 allocation budget (≤0.4 heap allocations per steady-state
//! reduce op, whole cluster) must hold with telemetry enabled, so the
//! steady-state API is **lock-free and allocation-free**:
//!
//! * counters are a flat, preallocated `Box<[AtomicU64]>` indexed by
//!   `(phase, layer, kind)` — recording is one `fetch_add`;
//! * the histogram is a fixed array of 64 atomic buckets (bucket *i*
//!   holds durations in `[2^(i-1), 2^i)` nanoseconds);
//! * the event trace, when enabled, is a preallocated ring of `Copy`
//!   events behind a `Mutex` (bounded, overwrites the oldest entry);
//!   it is off by default and costs nothing when off.
//!
//! Layers above `MAX_LAYERS-1` clamp into the last slot rather than
//! allocate; phases come from the wire tag and are always in range.
//!
//! ## Counter semantics
//!
//! `BytesSent`/`MsgsSent` are recorded by the substrate at the send
//! call, *before* any receiver-liveness check (matching the simulator's
//! long-standing accounting), so both substrates agree byte-for-byte on
//! deterministic workloads. `BytesRecv`/`MsgsRecv` are recorded at
//! every point a payload is handed to (or discarded on behalf of) the
//! caller, so in a fault-free run Σ sent == Σ received per
//! `(phase, layer)` once all ranks return. Self-addressed traffic that
//! never touches the wire (a rank's own part of a scatter) is recorded
//! under the pseudo-phase [`SELF_PHASE`] by `Comm::note_traffic`, and
//! additionally under its true protocol phase as `SelfBytes`/`SelfMsgs`
//! by the reduce hot path — the pseudo-phase keeps whole-layer traffic
//! reports exact, the true-phase copy lets per-phase consumers (Fig. 5)
//! separate the down pass from the up pass.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of phase slots per rank. Slots 0–5 are the wire phases of
/// `kylix_net::Phase`; slot [`SELF_PHASE`] holds self-addressed traffic.
pub const PHASES: usize = 8;

/// Pseudo-phase for self-addressed traffic recorded via `note_traffic`
/// (payloads a rank "delivers" to itself without touching the wire).
pub const SELF_PHASE: u8 = 7;

/// Number of layer slots per phase; layers ≥ `MAX_LAYERS` clamp into
/// the last slot (no Kylix machine in the paper's range has >6 layers).
pub const MAX_LAYERS: usize = 64;

/// Number of log₂ histogram buckets (covers 1 ns … ~292 years).
pub const HIST_BUCKETS: usize = 64;

/// What a counter cell measures. The discriminant is the cell index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Counter {
    /// Payload bytes handed to the substrate's send path.
    BytesSent = 0,
    /// Messages handed to the substrate's send path.
    MsgsSent = 1,
    /// Payload bytes delivered to (or discarded on behalf of) a receiver.
    BytesRecv = 2,
    /// Messages delivered to (or discarded on behalf of) a receiver.
    MsgsRecv = 3,
    /// Arrivals parked in the selective-receive stash before delivery.
    StashParks = 4,
    /// Data frames retransmitted by the reliable layer.
    Retransmits = 5,
    /// Duplicate data frames dropped by the reliable layer.
    DupesDropped = 6,
    /// Frames rejected by the reliable layer's checksum.
    CorruptRejects = 7,
    /// Acknowledgement frames sent by the reliable layer.
    AcksSent = 8,
    /// Frames abandoned after the retry budget was exhausted.
    GaveUp = 9,
    /// Messages dropped by injected link faults.
    FaultsDropped = 10,
    /// Messages duplicated by injected link faults.
    FaultsDuplicated = 11,
    /// Messages corrupted by injected link faults.
    FaultsCorrupted = 12,
    /// Messages delayed (reordered) by injected link faults.
    FaultsDelayed = 13,
    /// Self-addressed payload bytes, filed under their true phase.
    SelfBytes = 14,
    /// Self-addressed messages, filed under their true phase.
    SelfMsgs = 15,
}

/// Number of counter kinds (cells per `(phase, layer)` slot).
pub const KINDS: usize = 16;

/// All counter kinds, in cell-index order (for reports and export).
pub const ALL_COUNTERS: [Counter; KINDS] = [
    Counter::BytesSent,
    Counter::MsgsSent,
    Counter::BytesRecv,
    Counter::MsgsRecv,
    Counter::StashParks,
    Counter::Retransmits,
    Counter::DupesDropped,
    Counter::CorruptRejects,
    Counter::AcksSent,
    Counter::GaveUp,
    Counter::FaultsDropped,
    Counter::FaultsDuplicated,
    Counter::FaultsCorrupted,
    Counter::FaultsDelayed,
    Counter::SelfBytes,
    Counter::SelfMsgs,
];

impl Counter {
    /// Stable lowercase name used in the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            Counter::BytesSent => "bytes_sent",
            Counter::MsgsSent => "msgs_sent",
            Counter::BytesRecv => "bytes_recv",
            Counter::MsgsRecv => "msgs_recv",
            Counter::StashParks => "stash_parks",
            Counter::Retransmits => "retransmits",
            Counter::DupesDropped => "dupes_dropped",
            Counter::CorruptRejects => "corrupt_rejects",
            Counter::AcksSent => "acks_sent",
            Counter::GaveUp => "gave_up",
            Counter::FaultsDropped => "faults_dropped",
            Counter::FaultsDuplicated => "faults_duplicated",
            Counter::FaultsCorrupted => "faults_corrupted",
            Counter::FaultsDelayed => "faults_delayed",
            Counter::SelfBytes => "self_bytes",
            Counter::SelfMsgs => "self_msgs",
        }
    }
}

/// Which notion of time a telemetry instance records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Clock {
    /// Wall-clock time — the real-execution substrates: `LocalCluster`
    /// (threads over channels) and `TcpCluster` (threads over loopback
    /// sockets).
    Wall,
    /// Virtual time (`SimCluster`'s deterministic cost model).
    Virtual,
}

impl Clock {
    /// Stable name used in the JSON export.
    pub fn name(self) -> &'static str {
        match self {
            Clock::Wall => "wall",
            Clock::Virtual => "virtual",
        }
    }
}

/// One entry of the optional ring-buffer event trace. `Copy` so the
/// ring can be preallocated once and overwritten in place.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Timestamp in seconds on the owning instance's [`Clock`].
    pub t: f64,
    /// Protocol phase (wire value, or [`SELF_PHASE`]).
    pub phase: u8,
    /// Butterfly layer.
    pub layer: u16,
    /// Static label, e.g. `"reduce_op"`.
    pub label: &'static str,
    /// Free payload (duration in ns, byte count, …).
    pub value: u64,
}

/// Fixed-capacity overwrite-oldest ring of trace events.
struct TraceRing {
    buf: Vec<TraceEvent>,
    next: usize,
    total: u64,
}

impl TraceRing {
    fn push(&mut self, ev: TraceEvent) {
        let cap = self.buf.capacity();
        if self.buf.len() < cap {
            self.buf.push(ev);
        } else {
            self.buf[self.next] = ev;
        }
        self.next = (self.next + 1) % cap.max(1);
        self.total += 1;
    }

    /// Events in arrival order (oldest surviving first).
    fn ordered(&self) -> Vec<TraceEvent> {
        if self.buf.len() < self.buf.capacity() {
            self.buf.clone()
        } else {
            let mut out = Vec::with_capacity(self.buf.len());
            out.extend_from_slice(&self.buf[self.next..]);
            out.extend_from_slice(&self.buf[..self.next]);
            out
        }
    }
}

/// Per-rank telemetry shard: every steady-state operation on it is a
/// single atomic RMW on preallocated storage — no locks, no allocation.
pub struct RankTelemetry {
    /// `PHASES × MAX_LAYERS × KINDS` counter cells.
    cells: Box<[AtomicU64]>,
    /// log₂ op-duration histogram (bucket i: `[2^(i-1), 2^i)` ns).
    hist: [AtomicU64; HIST_BUCKETS],
    /// Total recorded ops and their summed duration in nanoseconds.
    ops: AtomicU64,
    op_nanos: AtomicU64,
    /// Optional bounded event trace (None ⇒ tracing disabled).
    trace: Option<Mutex<TraceRing>>,
}

#[inline]
fn cell_index(phase: u8, layer: u16, kind: Counter) -> usize {
    let p = (phase as usize).min(PHASES - 1);
    let l = (layer as usize).min(MAX_LAYERS - 1);
    (p * MAX_LAYERS + l) * KINDS + kind as usize
}

/// Histogram bucket for a duration: 0 ns → bucket 0, else
/// `floor(log₂ n) + 1` clamped to the last bucket.
#[inline]
pub fn hist_bucket(nanos: u64) -> usize {
    ((u64::BITS - nanos.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
}

impl RankTelemetry {
    /// A standalone shard belonging to no [`Telemetry`] instance, for
    /// adapters that want the lock-free cells without per-rank
    /// structure (tracing disabled).
    pub fn new_detached() -> Self {
        Self::new(0)
    }

    fn new(trace_capacity: usize) -> Self {
        let cells: Vec<AtomicU64> = (0..PHASES * MAX_LAYERS * KINDS)
            .map(|_| AtomicU64::new(0))
            .collect();
        RankTelemetry {
            cells: cells.into_boxed_slice(),
            hist: [(); HIST_BUCKETS].map(|_| AtomicU64::new(0)),
            ops: AtomicU64::new(0),
            op_nanos: AtomicU64::new(0),
            trace: (trace_capacity > 0).then(|| {
                Mutex::new(TraceRing {
                    buf: Vec::with_capacity(trace_capacity),
                    next: 0,
                    total: 0,
                })
            }),
        }
    }

    /// Add `n` to a counter cell. Lock-free, allocation-free.
    #[inline]
    pub fn add(&self, phase: u8, layer: u16, kind: Counter, n: u64) {
        self.cells[cell_index(phase, layer, kind)].fetch_add(n, Ordering::Relaxed);
    }

    /// Read one counter cell.
    #[inline]
    pub fn get(&self, phase: u8, layer: u16, kind: Counter) -> u64 {
        self.cells[cell_index(phase, layer, kind)].load(Ordering::Relaxed)
    }

    /// Sum a counter kind over every phase of one layer.
    pub fn on_layer(&self, layer: u16, kind: Counter) -> u64 {
        (0..PHASES as u8).map(|p| self.get(p, layer, kind)).sum()
    }

    /// Sum a counter kind over every phase and layer.
    pub fn total(&self, kind: Counter) -> u64 {
        (0..PHASES as u8)
            .map(|p| {
                (0..MAX_LAYERS as u16)
                    .map(|l| self.get(p, l, kind))
                    .sum::<u64>()
            })
            .sum()
    }

    /// Record one timed operation of `nanos` duration.
    #[inline]
    pub fn record_op(&self, nanos: u64) {
        self.hist[hist_bucket(nanos)].fetch_add(1, Ordering::Relaxed);
        self.ops.fetch_add(1, Ordering::Relaxed);
        self.op_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Number of timed operations recorded so far.
    pub fn op_count(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }

    /// Summed duration of all timed operations, in nanoseconds.
    pub fn op_nanos(&self) -> u64 {
        self.op_nanos.load(Ordering::Relaxed)
    }

    /// Whether the event trace is enabled on this shard.
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// Append an event to the ring trace, if tracing is enabled. The
    /// ring is preallocated; when full the oldest event is overwritten.
    #[inline]
    pub fn trace_event(&self, t: f64, phase: u8, layer: u16, label: &'static str, value: u64) {
        if let Some(ring) = &self.trace {
            ring.lock().unwrap().push(TraceEvent {
                t,
                phase,
                layer,
                label,
                value,
            });
        }
    }

    /// Zero every counter, histogram bucket, and the trace ring.
    pub fn reset(&self) {
        for c in self.cells.iter() {
            c.store(0, Ordering::Relaxed);
        }
        for b in &self.hist {
            b.store(0, Ordering::Relaxed);
        }
        self.ops.store(0, Ordering::Relaxed);
        self.op_nanos.store(0, Ordering::Relaxed);
        if let Some(ring) = &self.trace {
            let mut r = ring.lock().unwrap();
            r.buf.clear();
            r.next = 0;
            r.total = 0;
        }
    }

    fn snapshot(&self) -> RankReport {
        let mut counters = BTreeMap::new();
        for p in 0..PHASES as u8 {
            for l in 0..MAX_LAYERS as u16 {
                let mut kinds = [0u64; KINDS];
                let mut any = false;
                for (k, slot) in kinds.iter_mut().enumerate() {
                    *slot = self.get(p, l, ALL_COUNTERS[k]);
                    any |= *slot != 0;
                }
                if any {
                    counters.insert((p, l), kinds);
                }
            }
        }
        let mut hist = [0u64; HIST_BUCKETS];
        for (i, b) in self.hist.iter().enumerate() {
            hist[i] = b.load(Ordering::Relaxed);
        }
        let (events, events_total) = match &self.trace {
            Some(ring) => {
                let r = ring.lock().unwrap();
                (r.ordered(), r.total)
            }
            None => (Vec::new(), 0),
        };
        RankReport {
            counters,
            ops: self.ops.load(Ordering::Relaxed),
            op_nanos: self.op_nanos.load(Ordering::Relaxed),
            hist,
            events,
            events_total,
        }
    }
}

/// Cluster-wide telemetry: one lock-free shard per rank plus the clock
/// tag describing what the timing numbers mean.
pub struct Telemetry {
    clock: Clock,
    ranks: Vec<Arc<RankTelemetry>>,
}

impl Telemetry {
    /// A telemetry instance for `m` ranks with tracing disabled.
    pub fn new(m: usize, clock: Clock) -> Arc<Self> {
        Arc::new(Telemetry {
            clock,
            ranks: (0..m).map(|_| Arc::new(RankTelemetry::new(0))).collect(),
        })
    }

    /// A telemetry instance for `m` ranks with a per-rank event-trace
    /// ring of `trace_capacity` entries.
    pub fn with_trace(m: usize, clock: Clock, trace_capacity: usize) -> Arc<Self> {
        Arc::new(Telemetry {
            clock,
            ranks: (0..m)
                .map(|_| Arc::new(RankTelemetry::new(trace_capacity)))
                .collect(),
        })
    }

    /// Which clock this instance's timings are measured on.
    pub fn clock(&self) -> Clock {
        self.clock
    }

    /// Number of rank shards.
    pub fn len(&self) -> usize {
        self.ranks.len()
    }

    /// True when there are no rank shards.
    pub fn is_empty(&self) -> bool {
        self.ranks.is_empty()
    }

    /// The shard for one rank (shared; clone the `Arc` into a comm).
    pub fn rank(&self, rank: usize) -> &Arc<RankTelemetry> {
        &self.ranks[rank]
    }

    /// Zero every shard.
    pub fn reset(&self) {
        for r in &self.ranks {
            r.reset();
        }
    }

    /// Consistent point-in-time snapshot of every shard.
    pub fn report(&self) -> TelemetryReport {
        TelemetryReport {
            clock: self.clock,
            ranks: self.ranks.iter().map(|r| r.snapshot()).collect(),
        }
    }

    /// Snapshot and serialise in one step.
    pub fn to_json(&self) -> String {
        self.report().to_json()
    }
}

/// Snapshot of one rank's shard.
#[derive(Debug, Clone)]
pub struct RankReport {
    /// Non-zero `(phase, layer)` slots → counts in [`ALL_COUNTERS`] order.
    pub counters: BTreeMap<(u8, u16), [u64; KINDS]>,
    /// Timed operations recorded.
    pub ops: u64,
    /// Summed duration of timed operations, nanoseconds.
    pub op_nanos: u64,
    /// log₂ duration histogram.
    pub hist: [u64; HIST_BUCKETS],
    /// Surviving trace events, oldest first (empty if tracing off).
    pub events: Vec<TraceEvent>,
    /// Total events ever pushed (≥ `events.len()` once the ring wraps).
    pub events_total: u64,
}

impl RankReport {
    /// One counter at one `(phase, layer)` slot.
    pub fn get(&self, phase: u8, layer: u16, kind: Counter) -> u64 {
        self.counters
            .get(&(phase, layer.min(MAX_LAYERS as u16 - 1)))
            .map_or(0, |k| k[kind as usize])
    }

    /// Sum a counter kind over every phase of one layer.
    pub fn on_layer(&self, layer: u16, kind: Counter) -> u64 {
        self.counters
            .iter()
            .filter(|((_, l), _)| *l == layer)
            .map(|(_, k)| k[kind as usize])
            .sum()
    }

    /// Sum a counter kind over all phases and layers.
    pub fn total(&self, kind: Counter) -> u64 {
        self.counters.values().map(|k| k[kind as usize]).sum()
    }
}

/// Snapshot of a whole cluster's telemetry.
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    /// Clock the timing numbers were measured on.
    pub clock: Clock,
    /// One report per rank.
    pub ranks: Vec<RankReport>,
}

impl TelemetryReport {
    /// Sum a counter kind over every rank, phase, and layer.
    pub fn total(&self, kind: Counter) -> u64 {
        self.ranks.iter().map(|r| r.total(kind)).sum()
    }

    /// Sum a counter kind over every rank and phase of one layer.
    pub fn on_layer(&self, layer: u16, kind: Counter) -> u64 {
        self.ranks.iter().map(|r| r.on_layer(layer, kind)).sum()
    }

    /// Sum a counter kind at one `(phase, layer)` over every rank.
    pub fn on(&self, phase: u8, layer: u16, kind: Counter) -> u64 {
        self.ranks.iter().map(|r| r.get(phase, layer, kind)).sum()
    }

    /// Layers with any non-zero counter, ascending.
    pub fn layers(&self) -> Vec<u16> {
        let mut ls: Vec<u16> = self
            .ranks
            .iter()
            .flat_map(|r| r.counters.keys().map(|&(_, l)| l))
            .collect();
        ls.sort_unstable();
        ls.dedup();
        ls
    }

    /// Serialise the report as JSON. Hand-rolled (the crate is
    /// dependency-free) and stable: objects are emitted in sorted key
    /// order, zero slots and empty sections are omitted.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"clock\": \"{}\",", self.clock.name());
        let _ = writeln!(s, "  \"ranks\": [");
        for (i, r) in self.ranks.iter().enumerate() {
            s.push_str("    {\n");
            let _ = writeln!(s, "      \"rank\": {i},");
            let _ = writeln!(s, "      \"ops\": {},", r.ops);
            let _ = writeln!(s, "      \"op_nanos\": {},", r.op_nanos);
            s.push_str("      \"counters\": [");
            let mut first = true;
            for ((phase, layer), kinds) in &r.counters {
                if !first {
                    s.push(',');
                }
                first = false;
                s.push_str("\n        {");
                let _ = write!(s, "\"phase\": {phase}, \"layer\": {layer}");
                for (k, &v) in kinds.iter().enumerate() {
                    if v != 0 {
                        let _ = write!(s, ", \"{}\": {v}", ALL_COUNTERS[k].name());
                    }
                }
                s.push('}');
            }
            s.push_str(if first { "],\n" } else { "\n      ],\n" });
            s.push_str("      \"hist\": [");
            let top = r.hist.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
            for (i, &c) in r.hist[..top].iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                let _ = write!(s, "{c}");
            }
            s.push(']');
            if r.events.is_empty() {
                s.push('\n');
            } else {
                s.push_str(",\n      \"events\": [");
                for (j, e) in r.events.iter().enumerate() {
                    if j > 0 {
                        s.push(',');
                    }
                    let _ = write!(
                        s,
                        "\n        {{\"t\": {}, \"phase\": {}, \"layer\": {}, \
                         \"label\": \"{}\", \"value\": {}}}",
                        e.t, e.phase, e.layer, e.label, e.value
                    );
                }
                s.push_str("\n      ]\n");
            }
            s.push_str(if i + 1 < self.ranks.len() {
                "    },\n"
            } else {
                "    }\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_clamp() {
        let t = RankTelemetry::new(0);
        t.add(1, 3, Counter::BytesSent, 100);
        t.add(1, 3, Counter::BytesSent, 25);
        t.add(1, 3, Counter::MsgsSent, 1);
        assert_eq!(t.get(1, 3, Counter::BytesSent), 125);
        assert_eq!(t.get(1, 3, Counter::MsgsSent), 1);
        assert_eq!(t.get(1, 3, Counter::BytesRecv), 0);
        // Out-of-range layers clamp into the last slot, never panic.
        t.add(2, 9999, Counter::MsgsSent, 7);
        assert_eq!(t.get(2, MAX_LAYERS as u16 - 1, Counter::MsgsSent), 7);
        assert_eq!(t.get(2, 40000, Counter::MsgsSent), 7);
        // Layer sums cross phases, totals cross everything.
        t.add(SELF_PHASE, 3, Counter::BytesSent, 10);
        assert_eq!(t.on_layer(3, Counter::BytesSent), 135);
        assert_eq!(t.total(Counter::MsgsSent), 8);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(hist_bucket(0), 0);
        assert_eq!(hist_bucket(1), 1);
        assert_eq!(hist_bucket(2), 2);
        assert_eq!(hist_bucket(3), 2);
        assert_eq!(hist_bucket(4), 3);
        assert_eq!(hist_bucket(1023), 10);
        assert_eq!(hist_bucket(1024), 11);
        assert_eq!(hist_bucket(u64::MAX), HIST_BUCKETS - 1);
        let t = RankTelemetry::new(0);
        t.record_op(3);
        t.record_op(3);
        t.record_op(1024);
        assert_eq!(t.op_count(), 3);
        assert_eq!(t.op_nanos(), 1030);
        let snap = t.snapshot();
        assert_eq!(snap.hist[2], 2);
        assert_eq!(snap.hist[11], 1);
        assert_eq!(snap.hist.iter().sum::<u64>(), 3);
    }

    #[test]
    fn trace_ring_overwrites_oldest() {
        let t = RankTelemetry::new(3);
        assert!(t.tracing());
        for i in 0..5u64 {
            t.trace_event(i as f64, 1, 0, "ev", i);
        }
        let snap = t.snapshot();
        assert_eq!(snap.events_total, 5);
        let vals: Vec<u64> = snap.events.iter().map(|e| e.value).collect();
        assert_eq!(vals, [2, 3, 4]);
        // Untraced shard records nothing and stays cheap.
        let off = RankTelemetry::new(0);
        off.trace_event(0.0, 1, 0, "ev", 1);
        assert!(off.snapshot().events.is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let tel = Telemetry::with_trace(2, Clock::Virtual, 4);
        tel.rank(0).add(1, 2, Counter::BytesSent, 9);
        tel.rank(1).record_op(50);
        tel.rank(1).trace_event(1.0, 0, 0, "x", 0);
        tel.reset();
        let rep = tel.report();
        assert_eq!(rep.total(Counter::BytesSent), 0);
        assert_eq!(rep.ranks[1].ops, 0);
        assert!(rep.ranks[1].events.is_empty());
        assert_eq!(rep.ranks[1].events_total, 0);
    }

    #[test]
    fn report_aggregates_across_ranks() {
        let tel = Telemetry::new(3, Clock::Wall);
        tel.rank(0).add(1, 0, Counter::BytesSent, 10);
        tel.rank(1).add(1, 0, Counter::BytesSent, 20);
        tel.rank(2).add(2, 1, Counter::BytesSent, 5);
        tel.rank(2).add(SELF_PHASE, 0, Counter::BytesSent, 7);
        let rep = tel.report();
        assert_eq!(rep.on(1, 0, Counter::BytesSent), 30);
        assert_eq!(rep.on_layer(0, Counter::BytesSent), 37);
        assert_eq!(rep.total(Counter::BytesSent), 42);
        assert_eq!(rep.layers(), vec![0, 1]);
        assert_eq!(rep.clock, Clock::Wall);
    }

    #[test]
    fn json_export_is_wellformed_and_nonempty() {
        let tel = Telemetry::with_trace(2, Clock::Virtual, 8);
        tel.rank(0).add(1, 2, Counter::BytesSent, 160);
        tel.rank(0).add(1, 2, Counter::MsgsSent, 2);
        tel.rank(0).record_op(1500);
        tel.rank(1).trace_event(0.5, 1, 2, "reduce_op", 1500);
        let js = tel.to_json();
        assert!(js.contains("\"clock\": \"virtual\""));
        assert!(js.contains("\"bytes_sent\": 160"));
        assert!(js.contains("\"msgs_sent\": 2"));
        assert!(js.contains("\"reduce_op\""));
        // Crude structural sanity: balanced braces/brackets.
        let opens = js.matches('{').count() + js.matches('[').count();
        let closes = js.matches('}').count() + js.matches(']').count();
        assert_eq!(opens, closes);
        // Zero cells are omitted.
        assert!(!js.contains("corrupt_rejects"));
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let tel = Telemetry::new(1, Clock::Wall);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let shard = tel.rank(0).clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        shard.add(1, 3, Counter::MsgsSent, 1);
                        shard.record_op(2);
                    }
                });
            }
        });
        let rep = tel.report();
        assert_eq!(rep.on(1, 3, Counter::MsgsSent), 8000);
        assert_eq!(rep.ranks[0].ops, 8000);
        assert_eq!(rep.ranks[0].hist[2], 8000);
    }
}
