//! Binary butterfly sparse allreduce — degrees `[2, 2, …, 2]`.
//!
//! The lowest-latency topology for *fixed-cost* messages (paper
//! §II.A.3), and the second comparator of Fig. 6. On sparse power-law
//! data it loses to the heterogeneous plan: `log₂ m` layers mean more
//! rounds of latency and more replicated routing volume than the few
//! wide layers the §IV workflow picks.

use kylix::config::Configured;
use kylix::{Kylix, NetworkPlan, Result};
use kylix_net::Comm;
use kylix_sparse::{Reducer, Scalar};

/// Binary butterfly sparse allreduce over `m = 2^k` nodes.
#[derive(Debug, Clone)]
pub struct BinaryButterfly {
    inner: Kylix,
}

impl BinaryButterfly {
    /// Build for a power-of-two communicator size.
    pub fn new(m: usize) -> Self {
        Self {
            inner: Kylix::new(NetworkPlan::binary(m)),
        }
    }

    /// The underlying all-twos plan.
    pub fn plan(&self) -> &NetworkPlan {
        self.inner.plan()
    }

    /// Configure routing for fixed in/out sets.
    pub fn configure<C: Comm>(
        &self,
        comm: &mut C,
        in_indices: &[u64],
        out_indices: &[u64],
        channel: u32,
    ) -> Result<Configured> {
        self.inner.configure(comm, in_indices, out_indices, channel)
    }

    /// One-shot combined configuration + reduction.
    pub fn allreduce<C, V, R>(
        &self,
        comm: &mut C,
        in_indices: &[u64],
        out_indices: &[u64],
        out_values: &[V],
        reducer: R,
        channel: u32,
    ) -> Result<Vec<V>>
    where
        C: Comm,
        V: Scalar,
        R: Reducer<V>,
    {
        self.inner
            .allreduce_combined(comm, in_indices, out_indices, out_values, reducer, channel)
            .map(|(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix_net::LocalCluster;
    use kylix_sparse::SumReducer;

    #[test]
    fn structure_is_all_twos() {
        let b = BinaryButterfly::new(32);
        assert_eq!(b.plan().degrees(), &[2, 2, 2, 2, 2]);
        assert_eq!(b.plan().messages_per_node(), 5);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        BinaryButterfly::new(12);
    }

    #[test]
    fn binary_reduces_correctly() {
        let got: Vec<Vec<f64>> = LocalCluster::run(8, |mut comm| {
            let me = comm.rank() as u64;
            BinaryButterfly::new(8)
                .allreduce(&mut comm, &[0u64], &[me % 2], &[1.0], SumReducer, 0)
                .unwrap()
        });
        // Index 0 contributed by the 4 even ranks.
        assert!(got.iter().all(|v| v[0] == 4.0));
    }
}
