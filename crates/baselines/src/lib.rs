#![warn(missing_docs)]

//! # kylix-baselines
//!
//! Every comparator the paper measures Kylix against, implemented (or,
//! where the original is a full external system, modelled) from scratch:
//!
//! * [`direct`] — **direct all-to-all** sparse allreduce (§II.A.2), the
//!   topology used by PowerGraph/Hadoop/Spark-style systems. In Kylix's
//!   framework this is the degenerate one-layer plan `[m]`; the module
//!   wraps it behind an explicit type and documents the packet-size
//!   pathology that motivates the paper.
//! * [`binary`] — the **binary butterfly** (`[2, 2, …, 2]`), the other
//!   classical comparator of Fig. 6.
//! * [`tree`] — **tree allreduce** (§II.A.1), implemented to demonstrate
//!   why it is hopeless for sparse data: intermediate unions grow toward
//!   fully dense at the root.
//! * [`ring`] — dense ring allreduce (reduce-scatter + allgather), the
//!   scientific-computing classic the paper distinguishes itself from in
//!   §VIII; its cost is independent of sparsity.
//! * [`powergraph`] — a simplified PowerGraph-style **GAS engine**
//!   (vertex cut over random edge partitions, mirror→master gather,
//!   master→mirror scatter, all direct all-to-all), used for the Fig. 8
//!   system comparison.
//! * [`hadoop`] — a calibrated **Hadoop/Pegasus cost model** (the paper
//!   itself estimates Pegasus runtimes by linear scaling, §VII.D; we do
//!   the same, with the calibration documented).

pub mod binary;
pub mod direct;
pub mod hadoop;
pub mod powergraph;
pub mod ring;
pub mod tree;

pub use binary::BinaryButterfly;
pub use direct::DirectAllreduce;
pub use hadoop::HadoopModel;
pub use powergraph::GasEngine;
pub use ring::ring_allreduce;
pub use tree::tree_allreduce;
