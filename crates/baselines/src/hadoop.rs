//! A calibrated Hadoop / Pegasus per-iteration cost model.
//!
//! The paper's Fig. 8 includes Hadoop-based Pegasus, whose runtimes the
//! authors themselves *estimate* "by using their runtime result on a
//! power-law graph with 0.3 billion edges and assuming linear scaling in
//! number of edges", arguing that order-of-magnitude fidelity suffices
//! for a disk-bound MapReduce system (§VII.D). We model it the same
//! way, with the two constants documented:
//!
//! * `job_overhead` — fixed per-iteration JobTracker/scheduling/HDFS
//!   cost. Hadoop-era measurements put one empty MapReduce round at
//!   tens of seconds; we use 30 s.
//! * `per_edge` — disk-bound map+shuffle+reduce time per edge. Pegasus
//!   on M45 ran a PageRank iteration on a 0.3 B-edge power-law graph in
//!   ≈80 s, i.e. ≈1.6·10⁻⁷ s/edge after subtracting overhead.
//!
//! With these constants the model lands Twitter-scale (1.5 B edges) at
//! ≈270 s/iteration and Yahoo-scale (6 B) at ≈990 s — matching the
//! paper's "about 500× slower than Kylix" log-scale bars.

/// Per-iteration cost model of a Hadoop/Pegasus PageRank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HadoopModel {
    /// Fixed per-iteration job overhead, seconds.
    pub job_overhead: f64,
    /// Map+shuffle+reduce cost per edge, seconds.
    pub per_edge: f64,
}

impl Default for HadoopModel {
    fn default() -> Self {
        Self {
            job_overhead: 30.0,
            per_edge: 1.6e-7,
        }
    }
}

impl HadoopModel {
    /// Estimated PageRank iteration time on a graph with `edges` edges.
    pub fn pagerank_iteration_time(&self, edges: u64) -> f64 {
        self.job_overhead + self.per_edge * edges as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twitter_scale_matches_paper_band() {
        let t = HadoopModel::default().pagerank_iteration_time(1_500_000_000);
        // Paper: Kylix takes 0.55 s; Hadoop "about 500x" slower.
        assert!((200.0..400.0).contains(&t), "{t}");
        let ratio = t / 0.55;
        assert!((300.0..700.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn yahoo_scale_matches_paper_band() {
        let t = HadoopModel::default().pagerank_iteration_time(6_000_000_000);
        // Kylix: 2.5 s; Hadoop two to three orders slower.
        let ratio = t / 2.5;
        assert!((100.0..1000.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn model_is_linear_in_edges() {
        let m = HadoopModel::default();
        let a = m.pagerank_iteration_time(1_000_000);
        let b = m.pagerank_iteration_time(2_000_000);
        assert!((b - a - m.per_edge * 1_000_000.0).abs() < 1e-9);
    }
}
