//! Direct all-to-all sparse allreduce (paper §II.A.2).
//!
//! Every feature has a *home node* (here: the owner of its hash range,
//! the same balanced assignment Kylix's bottom layer produces); each
//! node ships its contributions to the homes, homes aggregate, and ship
//! requested values back. This is precisely the one-layer butterfly
//! `[m]`, so the implementation *is* the Kylix engine with
//! `NetworkPlan::direct(m)` — one code path, audited once, for both the
//! paper's system and its main comparator.
//!
//! The pathology the paper hammers on: with `m` nodes and per-node data
//! volume `P`, every message carries only `P/m` bytes — on 64 nodes the
//! Twitter-scale workload drops to ~0.4 MB packets, a third of the
//! network's efficient throughput (Fig. 2), and the per-node message
//! count grows linearly with `m`, so scaling *up* the cluster slows the
//! collective *down*.

use kylix::config::Configured;
use kylix::{Kylix, NetworkPlan, Result};
use kylix_net::Comm;
use kylix_sparse::{Reducer, Scalar};

/// Direct all-to-all sparse allreduce over `m` nodes.
#[derive(Debug, Clone)]
pub struct DirectAllreduce {
    inner: Kylix,
}

impl DirectAllreduce {
    /// Build for an `m`-node communicator.
    pub fn new(m: usize) -> Self {
        Self {
            inner: Kylix::new(NetworkPlan::direct(m)),
        }
    }

    /// The underlying single-layer plan.
    pub fn plan(&self) -> &NetworkPlan {
        self.inner.plan()
    }

    /// Configure home-node routing for fixed in/out sets.
    pub fn configure<C: Comm>(
        &self,
        comm: &mut C,
        in_indices: &[u64],
        out_indices: &[u64],
        channel: u32,
    ) -> Result<Configured> {
        self.inner.configure(comm, in_indices, out_indices, channel)
    }

    /// One-shot combined configuration + reduction.
    pub fn allreduce<C, V, R>(
        &self,
        comm: &mut C,
        in_indices: &[u64],
        out_indices: &[u64],
        out_values: &[V],
        reducer: R,
        channel: u32,
    ) -> Result<Vec<V>>
    where
        C: Comm,
        V: Scalar,
        R: Reducer<V>,
    {
        self.inner
            .allreduce_combined(comm, in_indices, out_indices, out_values, reducer, channel)
            .map(|(v, _)| v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix::{reference_allreduce, NodeContribution};
    use kylix_net::LocalCluster;
    use kylix_sparse::SumReducer;

    #[test]
    fn direct_is_single_layer() {
        let d = DirectAllreduce::new(16);
        assert_eq!(d.plan().layers(), 1);
        assert_eq!(d.plan().degrees(), &[16]);
    }

    #[test]
    fn direct_matches_reference() {
        let nodes: Vec<NodeContribution<f64>> = (0..6)
            .map(|i| NodeContribution {
                in_indices: vec![i as u64, (i as u64 + 1) % 6],
                out_indices: vec![i as u64, (i as u64 + 2) % 6],
                out_values: vec![1.0, 0.5],
            })
            .collect();
        let expected = reference_allreduce(&nodes, SumReducer);
        let got: Vec<Vec<f64>> = LocalCluster::run(6, |mut comm| {
            let me = comm.rank();
            DirectAllreduce::new(6)
                .allreduce(
                    &mut comm,
                    &nodes[me].in_indices,
                    &nodes[me].out_indices,
                    &nodes[me].out_values,
                    SumReducer,
                    0,
                )
                .unwrap()
        });
        for (g, e) in got.iter().zip(&expected) {
            for (a, b) in g.iter().zip(e) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn message_count_grows_linearly() {
        // The §II scaling pathology, structurally.
        assert_eq!(DirectAllreduce::new(8).plan().messages_per_node(), 7);
        assert_eq!(DirectAllreduce::new(64).plan().messages_per_node(), 63);
    }
}
