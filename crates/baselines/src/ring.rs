//! Dense ring allreduce (reduce-scatter + allgather).
//!
//! The bandwidth-optimal collective of the scientific-computing world
//! the paper sets itself apart from (§VIII, "other dense Allreduce
//! systems"): each node sends `2·(m−1)/m · n` elements regardless of
//! sparsity. On the power-law workloads Kylix targets, the dense vector
//! is orders of magnitude larger than the sparse traffic, which is the
//! contrast the ablation benches quantify.

use kylix::codec::{decode_values, encode_values};
use kylix::error::{comm_err, Result};
use kylix_net::{Comm, Phase, Tag};
use kylix_sparse::{Reducer, Scalar};

/// Block boundaries: block `b` of `m` over a length-`n` vector.
fn block(n: usize, m: usize, b: usize) -> std::ops::Range<usize> {
    let b = b % m;
    let base = n / m;
    let extra = n % m;
    let start = b * base + b.min(extra);
    let len = base + usize::from(b < extra);
    start..start + len
}

/// In-place dense ring allreduce of `values` (same length on all ranks).
///
/// Classic two-phase schedule: `m−1` reduce-scatter steps, then `m−1`
/// allgather steps, each exchanging one contiguous block with the ring
/// neighbours.
pub fn ring_allreduce<C, V, R>(
    comm: &mut C,
    values: &mut [V],
    reducer: R,
    channel: u32,
) -> Result<()>
where
    C: Comm,
    V: Scalar,
    R: Reducer<V>,
{
    let m = comm.size();
    let me = comm.rank();
    if m == 1 {
        return Ok(());
    }
    let next = (me + 1) % m;
    let prev = (me + m - 1) % m;
    let n = values.len();

    // Reduce-scatter: after step s, each node holds the partial sum of
    // block (me - s) accumulated from s+1 nodes.
    for s in 0..m - 1 {
        let send_b = (me + m - s) % m;
        let recv_b = (me + m - s - 1) % m;
        let tag = Tag::new(Phase::App, 0, channel.wrapping_add(s as u32));
        comm.send(next, tag, encode_values(&values[block(n, m, send_b)]));
        let payload = comm
            .recv(prev, tag)
            .map_err(comm_err("ring reduce-scatter"))?;
        let incoming: Vec<V> = decode_values(&payload)?;
        let r = block(n, m, recv_b);
        debug_assert_eq!(incoming.len(), r.len());
        for (dst, src) in values[r].iter_mut().zip(incoming) {
            reducer.combine(dst, src);
        }
    }
    // Allgather: circulate the finished blocks.
    for s in 0..m - 1 {
        let send_b = (me + 1 + m - s) % m;
        let recv_b = (me + m - s) % m;
        let tag = Tag::new(Phase::App, 1, channel.wrapping_add(s as u32));
        comm.send(next, tag, encode_values(&values[block(n, m, send_b)]));
        let payload = comm.recv(prev, tag).map_err(comm_err("ring allgather"))?;
        let incoming: Vec<V> = decode_values(&payload)?;
        let r = block(n, m, recv_b);
        values[r].copy_from_slice(&incoming);
    }
    Ok(())
}

/// Wire volume per node of a dense ring allreduce, in elements — the
/// quantity the sparse-vs-dense ablation plots.
pub fn ring_volume_elems(n: usize, m: usize) -> usize {
    if m <= 1 {
        0
    } else {
        2 * (m - 1) * (n / m + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix_net::LocalCluster;
    use kylix_sparse::SumReducer;

    #[test]
    fn blocks_tile_vector() {
        for (n, m) in [(10usize, 3usize), (16, 4), (7, 8), (100, 7)] {
            let mut covered = 0;
            for b in 0..m {
                let r = block(n, m, b);
                assert_eq!(r.start, covered);
                covered = r.end;
            }
            assert_eq!(covered, n);
        }
    }

    #[test]
    fn ring_sums_across_ranks() {
        for m in [2usize, 3, 4, 8] {
            let n = 20;
            let results: Vec<Vec<f64>> = LocalCluster::run(m, |mut comm| {
                let me = comm.rank();
                let mut vals: Vec<f64> = (0..n).map(|i| (me * n + i) as f64).collect();
                ring_allreduce(&mut comm, &mut vals, SumReducer, 0).unwrap();
                vals
            });
            for i in 0..n {
                let want: f64 = (0..m).map(|r| (r * n + i) as f64).sum();
                for res in &results {
                    assert!((res[i] - want).abs() < 1e-9, "m={m} i={i}");
                }
            }
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let results = LocalCluster::run(1, |mut comm| {
            let mut vals = vec![1.0f64, 2.0];
            ring_allreduce(&mut comm, &mut vals, SumReducer, 0).unwrap();
            vals
        });
        assert_eq!(results[0], vec![1.0, 2.0]);
    }

    #[test]
    fn volume_is_sparsity_independent() {
        assert!(ring_volume_elems(1_000_000, 64) > 1_900_000);
        assert_eq!(ring_volume_elems(100, 1), 0);
    }
}
