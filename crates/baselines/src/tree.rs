//! Tree allreduce (paper §II.A.1) — implemented to exhibit its failure
//! mode on sparse data.
//!
//! Values reduce up a binary tree to rank 0 and the full result is
//! broadcast back down. Correct, and bandwidth-minimal for *dense*
//! fixed-size messages — but for sparse data "intermediate reductions
//! grow in size … the middle (full reduction) node will have complete
//! (fully dense) data which will often be intractably large". The tests
//! measure exactly that: the root's union is far larger than any leaf's
//! set, and the broadcast volume is the whole vector per node.

use kylix::codec::{put_keys, put_values, seal, Decoder};
use kylix::error::{comm_err, surface_corrupt, Result};
use kylix_net::{Comm, Phase, Tag};
use kylix_sparse::vec::scatter_combine;
use kylix_sparse::{tree_merge, IndexSet, Key, Reducer, Scalar};

/// Statistics the tree allreduce reports alongside its results.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Union size this node held when it forwarded up the tree.
    pub forwarded_elems: usize,
    /// Size of the fully reduced vector broadcast back down.
    pub broadcast_elems: usize,
}

/// Sparse allreduce over a binary reduction tree rooted at rank 0.
///
/// Returns values aligned with `in_indices`, plus volume statistics.
pub fn tree_allreduce<C, V, R>(
    comm: &mut C,
    in_indices: &[u64],
    out_indices: &[u64],
    out_values: &[V],
    reducer: R,
    channel: u32,
) -> Result<(Vec<V>, TreeStats)>
where
    C: Comm,
    V: Scalar,
    R: Reducer<V>,
{
    let m = comm.size();
    let me = comm.rank();
    let up_tag = Tag::new(Phase::App, 0, channel);
    let down_tag = Tag::new(Phase::App, 1, channel);

    // Local combine of the caller's contribution.
    let out0 = IndexSet::from_indices(out_indices.iter().copied());
    let mut vals = vec![reducer.identity(); out0.len()];
    for (&i, &v) in out_indices.iter().zip(out_values) {
        let p = out0.position(Key::new(i)).expect("own index");
        reducer.combine(&mut vals[p], v);
    }
    let mut keys = out0.into_keys();

    // Reduce up: children are 2·me+1 and 2·me+2.
    for child in [2 * me + 1, 2 * me + 2] {
        if child >= m {
            continue;
        }
        let payload = comm.recv(child, up_tag).map_err(comm_err("tree up"))?;
        let mut dec = Decoder::new(&payload).map_err(surface_corrupt("tree up", child, up_tag))?;
        let ckeys = dec.keys()?;
        let cvals: Vec<V> = dec.values()?;
        let merged = tree_merge(&[&keys, &ckeys]);
        let mut acc = vec![reducer.identity(); merged.union.len()];
        scatter_combine(&mut acc, &vals, &merged.maps[0], reducer);
        scatter_combine(&mut acc, &cvals, &merged.maps[1], reducer);
        keys = merged.union;
        vals = acc;
    }
    let forwarded_elems = keys.len();
    if me != 0 {
        let parent = (me - 1) / 2;
        let mut buf = Vec::new();
        put_keys(&mut buf, &keys);
        put_values(&mut buf, &vals);
        comm.send(parent, up_tag, seal(buf));
    }

    // Broadcast the full reduction down the same tree.
    let (keys, vals) = if me == 0 {
        (keys, vals)
    } else {
        let parent = (me - 1) / 2;
        let payload = comm.recv(parent, down_tag).map_err(comm_err("tree down"))?;
        let mut dec =
            Decoder::new(&payload).map_err(surface_corrupt("tree down", parent, down_tag))?;
        let k = dec.keys()?;
        let v: Vec<V> = dec.values()?;
        (k, v)
    };
    for child in [2 * me + 1, 2 * me + 2] {
        if child >= m {
            continue;
        }
        let mut buf = Vec::new();
        put_keys(&mut buf, &keys);
        put_values(&mut buf, &vals);
        comm.send(child, down_tag, seal(buf));
    }

    // Serve the caller's requests from the full vector.
    let full = IndexSet::from_sorted_keys(keys);
    let result = in_indices
        .iter()
        .map(|&i| {
            let p = full
                .position(Key::new(i))
                .expect("in index not covered by any out set (contract violation)");
            vals[p]
        })
        .collect();
    Ok((
        result,
        TreeStats {
            forwarded_elems,
            broadcast_elems: full.len(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix::{reference_allreduce, NodeContribution};
    use kylix_net::LocalCluster;
    use kylix_sparse::{SumReducer, Xoshiro256};

    #[test]
    fn tree_matches_reference() {
        let nodes: Vec<NodeContribution<f64>> = (0..7)
            .map(|i| NodeContribution {
                in_indices: vec![(i as u64) % 3],
                out_indices: vec![(i as u64) % 3, 10 + i as u64],
                out_values: vec![1.0, 2.0],
            })
            .collect();
        let expected = reference_allreduce(&nodes, SumReducer);
        let got: Vec<Vec<f64>> = LocalCluster::run(7, |mut comm| {
            let me = comm.rank();
            tree_allreduce(
                &mut comm,
                &nodes[me].in_indices,
                &nodes[me].out_indices,
                &nodes[me].out_values,
                SumReducer,
                0,
            )
            .unwrap()
            .0
        });
        for (g, e) in got.iter().zip(&expected) {
            for (a, b) in g.iter().zip(e) {
                assert!((a - b).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn root_union_blows_up_on_disjoint_sparse_sets() {
        // The §II.A.1 pathology: each node holds 32 distinct indices;
        // the root ends up holding all of them.
        let m = 8;
        let stats: Vec<TreeStats> = LocalCluster::run(m, |mut comm| {
            let me = comm.rank() as u64;
            let mut rng = Xoshiro256::new(me);
            let out: Vec<u64> = (0..32).map(|_| me * 1000 + rng.next_below(900)).collect();
            let vals = vec![1.0f64; out.len()];
            tree_allreduce(&mut comm, &[out[0]], &out, &vals, SumReducer, 0)
                .unwrap()
                .1
        });
        let leaf = stats[m - 1].forwarded_elems; // a leaf of the tree
        let root = stats[0].forwarded_elems;
        assert!(
            root > 6 * leaf,
            "root {root} should dwarf leaf {leaf} for disjoint sets"
        );
        // And everyone pays the full broadcast.
        assert!(stats.iter().all(|s| s.broadcast_elems == root));
    }
}
