//! A simplified PowerGraph-style GAS (gather–apply–scatter) engine.
//!
//! PowerGraph [Gonzalez et al., OSDI'12] is the strongest published
//! comparator in the paper's Fig. 8. Its execution model on a vertex-cut
//! partition:
//!
//! * every vertex has a **master** machine (here: its hash, mod `m` —
//!   the balanced random assignment the paper also uses);
//! * machines holding edges of a vertex keep **mirror** copies;
//! * each iteration, mirrors *gather* partial sums to the master
//!   (direct all-to-all traffic), the master *applies* the vertex
//!   program, and *scatters* the new value back to mirrors (direct
//!   all-to-all again).
//!
//! The engine here implements exactly that protocol for the PageRank
//! vertex program over a random edge partition: a one-time setup
//! handshake builds subscriber/contributor tables and aggregates global
//! out-degrees at the masters, then each iteration exchanges values
//! positionally along those tables. All traffic is direct all-to-all —
//! the communication pattern whose packet-size pathology Kylix's nested
//! butterfly removes; run on the simulator it reproduces the Fig. 8
//! gap.

use kylix::codec::{decode_values, encode_keys, encode_values};
use kylix::error::{comm_err, KylixError, Result};
use kylix_net::{Comm, Phase, Tag};
use kylix_sparse::{mix64, IndexSet, Key};

/// Per-peer routing tables plus master state for PageRank.
pub struct GasEngine {
    m: usize,
    n_vertices: u64,
    /// Edges as (src position in `srcs`, dst position in `dsts`).
    edge_pos: Vec<(u32, u32)>,
    /// Distinct local source vertices (mirror set needing ranks).
    srcs: IndexSet,
    /// Distinct local destination vertices (gather contributions).
    dsts: IndexSet,
    /// Vertices mastered on this machine (union of everyone's needs).
    mastered: IndexSet,
    /// For each peer: positions in `mastered` of the dst list that peer
    /// contributes partial sums for.
    contributor_maps: Vec<Vec<u32>>,
    /// For each peer: positions in `mastered` of the src list that peer
    /// subscribed to (ranks to scatter).
    subscriber_maps: Vec<Vec<u32>>,
    /// For each peer: positions in `srcs` of the ranks that peer's
    /// master shard will send us.
    src_recv_maps: Vec<Vec<u32>>,
    /// For each peer: positions in `dsts` of the partial sums we send
    /// that peer's master shard.
    dst_send_maps: Vec<Vec<u32>>,
    /// Global out-degree of each local src (mirror cache).
    src_deg: Vec<f64>,
    /// Current rank of each local src (mirror cache).
    src_rank: Vec<f64>,
    /// Master state: current rank of each mastered vertex.
    master_rank: Vec<f64>,
}

fn master_of(v: u64, m: usize) -> usize {
    (mix64(v) % m as u64) as usize
}

impl GasEngine {
    /// One-time graph finalisation: exchange subscriber/contributor
    /// tables and aggregate global out-degrees at the masters.
    #[allow(clippy::needless_range_loop)] // `p` is a peer rank, not an index
    pub fn setup<C: Comm>(
        comm: &mut C,
        n_vertices: u64,
        local_edges: &[(u32, u32)],
        channel: u32,
    ) -> Result<Self> {
        let m = comm.size();
        let srcs = IndexSet::from_indices(local_edges.iter().map(|e| e.0 as u64));
        let dsts = IndexSet::from_indices(local_edges.iter().map(|e| e.1 as u64));
        let edge_pos: Vec<(u32, u32)> = local_edges
            .iter()
            .map(|&(s, d)| {
                (
                    srcs.position(Key::new(s as u64)).expect("own src") as u32,
                    dsts.position(Key::new(d as u64)).expect("own dst") as u32,
                )
            })
            .collect();

        // Partition local src / dst vertex lists by master.
        let split_by_master = |set: &IndexSet| -> Vec<Vec<Key>> {
            let mut parts = vec![Vec::new(); m];
            for k in set.keys() {
                parts[master_of(k.index, m)].push(*k);
            }
            parts
        };
        let src_parts = split_by_master(&srcs);
        let dst_parts = split_by_master(&dsts);

        let t_sub = Tag::new(Phase::Config, 0, channel);
        let t_con = Tag::new(Phase::Config, 1, channel);
        for p in 0..m {
            if p == comm.rank() {
                continue;
            }
            comm.send(p, t_sub, encode_keys(&src_parts[p]));
            comm.send(p, t_con, encode_keys(&dst_parts[p]));
        }
        let mut sub_lists: Vec<Vec<Key>> = vec![Vec::new(); m];
        let mut con_lists: Vec<Vec<Key>> = vec![Vec::new(); m];
        for p in 0..m {
            if p == comm.rank() {
                sub_lists[p] = src_parts[p].clone();
                con_lists[p] = dst_parts[p].clone();
                continue;
            }
            let payload = comm.recv(p, t_sub).map_err(comm_err("gas setup subs"))?;
            sub_lists[p] = kylix::codec::decode_keys(&payload)?;
            let payload = comm
                .recv(p, t_con)
                .map_err(comm_err("gas setup contribs"))?;
            con_lists[p] = kylix::codec::decode_keys(&payload)?;
        }

        // Mastered set = union of everything peers ask about.
        let mut all: Vec<Key> = sub_lists
            .iter()
            .chain(con_lists.iter())
            .flatten()
            .copied()
            .collect();
        all.sort_unstable();
        all.dedup();
        let mastered = IndexSet::from_sorted_keys(all);

        let pos_in = |set: &IndexSet, list: &[Key]| -> Vec<u32> {
            list.iter()
                .map(|k| set.position(*k).expect("present by construction") as u32)
                .collect()
        };
        let subscriber_maps: Vec<Vec<u32>> =
            sub_lists.iter().map(|l| pos_in(&mastered, l)).collect();
        let contributor_maps: Vec<Vec<u32>> =
            con_lists.iter().map(|l| pos_in(&mastered, l)).collect();
        let src_recv_maps: Vec<Vec<u32>> = src_parts.iter().map(|l| pos_in(&srcs, l)).collect();
        let dst_send_maps: Vec<Vec<u32>> = dst_parts.iter().map(|l| pos_in(&dsts, l)).collect();

        // Degree aggregation: local edge counts per src → masters → back.
        let mut local_deg = vec![0.0f64; srcs.len()];
        for &(sp, _) in &edge_pos {
            local_deg[sp as usize] += 1.0;
        }
        let t_deg = Tag::new(Phase::Config, 2, channel);
        for p in 0..m {
            if p == comm.rank() {
                continue;
            }
            let vals: Vec<f64> = src_recv_maps[p]
                .iter()
                .map(|&sp| local_deg[sp as usize])
                .collect();
            comm.send(p, t_deg, encode_values(&vals));
        }
        let mut master_deg = vec![0.0f64; mastered.len()];
        for p in 0..m {
            let vals: Vec<f64> = if p == comm.rank() {
                src_recv_maps[p]
                    .iter()
                    .map(|&sp| local_deg[sp as usize])
                    .collect()
            } else {
                let payload = comm.recv(p, t_deg).map_err(comm_err("gas setup degrees"))?;
                decode_values(&payload)?
            };
            if vals.len() != subscriber_maps[p].len() {
                return Err(KylixError::Codec {
                    what: "degree vector misaligned with subscriber list",
                });
            }
            for (&mp, v) in subscriber_maps[p].iter().zip(vals) {
                master_deg[mp as usize] += v;
            }
        }
        // Masters return summed degrees to subscribers.
        let t_deg2 = Tag::new(Phase::Config, 3, channel);
        for p in 0..m {
            if p == comm.rank() {
                continue;
            }
            let vals: Vec<f64> = subscriber_maps[p]
                .iter()
                .map(|&mp| master_deg[mp as usize])
                .collect();
            comm.send(p, t_deg2, encode_values(&vals));
        }
        let mut src_deg = vec![0.0f64; srcs.len()];
        for p in 0..m {
            let vals: Vec<f64> = if p == comm.rank() {
                subscriber_maps[p]
                    .iter()
                    .map(|&mp| master_deg[mp as usize])
                    .collect()
            } else {
                let payload = comm
                    .recv(p, t_deg2)
                    .map_err(comm_err("gas setup degree return"))?;
                decode_values(&payload)?
            };
            for (&sp, v) in src_recv_maps[p].iter().zip(vals) {
                src_deg[sp as usize] = v;
            }
        }

        let n_srcs = srcs.len();
        let n_mastered = mastered.len();
        Ok(Self {
            m,
            n_vertices,
            edge_pos,
            srcs,
            dsts,
            mastered,
            contributor_maps,
            subscriber_maps,
            src_recv_maps,
            dst_send_maps,
            src_deg,
            src_rank: vec![1.0 / n_vertices as f64; n_srcs],
            master_rank: vec![1.0 / n_vertices as f64; n_mastered],
        })
    }

    /// One PageRank GAS super-step. `iter` namespaces the message tags.
    #[allow(clippy::needless_range_loop)] // `p` is a peer rank, not an index
    pub fn pagerank_step<C: Comm>(&mut self, comm: &mut C, damping: f64, iter: u32) -> Result<()> {
        let me = comm.rank();
        // Gather (local): partial sums over local edges.
        let mut partial = vec![0.0f64; self.dsts.len()];
        for &(sp, dp) in &self.edge_pos {
            let deg = self.src_deg[sp as usize];
            if deg > 0.0 {
                partial[dp as usize] += self.src_rank[sp as usize] / deg;
            }
        }
        // Gather (network): mirrors → masters. Like the real
        // PowerGraph, every message is *keyed* — (vertex id, value)
        // pairs — and the master resolves ids on receipt; ids are not
        // amortised away by a configuration pass.
        let t_g = Tag::new(Phase::App, 0, iter);
        for p in 0..self.m {
            if p == me {
                continue;
            }
            let keys: Vec<kylix_sparse::Key> = self.dst_send_maps[p]
                .iter()
                .map(|&dp| *self.dsts.keys().get(dp as usize).expect("dst pos"))
                .collect();
            let vals: Vec<f64> = self.dst_send_maps[p]
                .iter()
                .map(|&dp| partial[dp as usize])
                .collect();
            let mut buf = Vec::with_capacity(16 + keys.len() * 16);
            kylix::codec::put_keys(&mut buf, &keys);
            kylix::codec::put_values(&mut buf, &vals);
            comm.send(p, t_g, kylix::codec::seal(buf));
        }
        let mut acc = vec![0.0f64; self.mastered.len()];
        // Self contributions use the local tables directly.
        for (&mp, &dp) in self.contributor_maps[me]
            .iter()
            .zip(&self.dst_send_maps[me])
        {
            acc[mp as usize] += partial[dp as usize];
        }
        for p in 0..self.m {
            if p == me {
                continue;
            }
            let payload = comm.recv(p, t_g).map_err(comm_err("gas gather"))?;
            let mut dec = kylix::codec::Decoder::new(&payload)
                .map_err(kylix::error::surface_corrupt("gas gather", p, t_g))?;
            let keys = dec.keys()?;
            let vals: Vec<f64> = dec.values()?;
            if keys.len() != vals.len() {
                return Err(KylixError::Codec {
                    what: "gather keys misaligned with values",
                });
            }
            for (k, v) in keys.iter().zip(vals) {
                let mp = self.mastered.position(*k).ok_or(KylixError::Codec {
                    what: "gathered vertex not mastered here",
                })?;
                acc[mp] += v;
            }
        }
        // Apply.
        let base = (1.0 - damping) / self.n_vertices as f64;
        for (r, a) in self.master_rank.iter_mut().zip(&acc) {
            *r = base + damping * a;
        }
        // Scatter: masters → mirrors, keyed like the gather.
        let t_s = Tag::new(Phase::App, 1, iter);
        for p in 0..self.m {
            if p == me {
                continue;
            }
            let keys: Vec<kylix_sparse::Key> = self.subscriber_maps[p]
                .iter()
                .map(|&mp| self.mastered.keys()[mp as usize])
                .collect();
            let vals: Vec<f64> = self.subscriber_maps[p]
                .iter()
                .map(|&mp| self.master_rank[mp as usize])
                .collect();
            let mut buf = Vec::with_capacity(16 + keys.len() * 16);
            kylix::codec::put_keys(&mut buf, &keys);
            kylix::codec::put_values(&mut buf, &vals);
            comm.send(p, t_s, kylix::codec::seal(buf));
        }
        for (&sp, &mp) in self.src_recv_maps[me].iter().zip(&self.subscriber_maps[me]) {
            self.src_rank[sp as usize] = self.master_rank[mp as usize];
        }
        for p in 0..self.m {
            if p == me {
                continue;
            }
            let payload = comm.recv(p, t_s).map_err(comm_err("gas scatter"))?;
            let mut dec = kylix::codec::Decoder::new(&payload)
                .map_err(kylix::error::surface_corrupt("gas scatter", p, t_s))?;
            let keys = dec.keys()?;
            let vals: Vec<f64> = dec.values()?;
            for (k, v) in keys.iter().zip(vals) {
                let sp = self.srcs.position(*k).ok_or(KylixError::Codec {
                    what: "scattered vertex not a local source",
                })?;
                self.src_rank[sp] = v;
            }
        }
        Ok(())
    }

    /// The `(vertex, rank)` pairs mastered on this machine.
    pub fn mastered_ranks(&self) -> Vec<(u64, f64)> {
        self.mastered
            .indices()
            .zip(self.master_rank.iter().copied())
            .collect()
    }

    /// Number of vertices mastered here.
    pub fn mastered_count(&self) -> usize {
        self.mastered.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix_net::LocalCluster;
    use kylix_powerlaw::{Csr, EdgeList};

    /// Distributed GAS PageRank must match the single-node reference on
    /// every tracked vertex.
    #[test]
    fn gas_pagerank_matches_reference() {
        let g = EdgeList::power_law(200, 2000, 1.1, 1.1, 5);
        let csr = Csr::from_edges(200, &g.edges);
        let iters = 8;
        let expected = csr.pagerank_reference(iters, 0.85);
        let m = 4;
        let parts = g.partition_random(m, 9);
        let ranks: Vec<Vec<(u64, f64)>> = LocalCluster::run(m, |mut comm| {
            let me = comm.rank();
            let mut engine = GasEngine::setup(&mut comm, 200, &parts[me].edges, 0).unwrap();
            for it in 0..iters {
                engine
                    .pagerank_step(&mut comm, 0.85, it as u32 + 1)
                    .unwrap();
            }
            engine.mastered_ranks()
        });
        let mut seen = 0;
        for node_ranks in &ranks {
            for &(v, r) in node_ranks {
                assert!(
                    (r - expected[v as usize]).abs() < 1e-9,
                    "vertex {v}: {r} vs {}",
                    expected[v as usize]
                );
                seen += 1;
            }
        }
        assert!(seen > 0, "no vertices tracked");
    }

    /// Each vertex is mastered on exactly one machine.
    #[test]
    fn masters_partition_tracked_vertices() {
        let g = EdgeList::power_law(100, 500, 1.0, 1.0, 6);
        let parts = g.partition_random(3, 2);
        let mastered: Vec<Vec<u64>> = LocalCluster::run(3, |mut comm| {
            let me = comm.rank();
            let engine = GasEngine::setup(&mut comm, 100, &parts[me].edges, 0).unwrap();
            engine
                .mastered_ranks()
                .into_iter()
                .map(|(v, _)| v)
                .collect()
        });
        let mut all: Vec<u64> = mastered.iter().flatten().copied().collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), total, "a vertex was mastered twice");
        // And the union covers every vertex with an edge.
        let tracked: std::collections::HashSet<u64> = g
            .edges
            .iter()
            .flat_map(|&(s, d)| [s as u64, d as u64])
            .collect();
        assert_eq!(all.len(), tracked.len());
    }
}
