//! Scaled stand-ins for the paper's evaluation datasets.
//!
//! The paper evaluates on two graphs we cannot ship:
//!
//! * **Twitter follower graph** — 60 M vertices, 1.5 B edges; measured
//!   density of the 64-way partitioned data: **0.21**.
//! * **Yahoo! Altavista web graph** — 1.4 B vertices, 6 B edges; measured
//!   64-way partition density: **0.035**.
//!
//! Kylix's behaviour depends on those *densities* and the power-law shape,
//! not the absolute scale (Prop. 4.1 is parametrised by `λ` alone, and the
//! normalised density curve barely depends on α — paper Fig. 4). A
//! [`DatasetSpec`] therefore keeps each graph's vertex/edge *ratio*,
//! scales the counts down by a configurable divisor, and **calibrates α**
//! so that the model-predicted 64-way partition density matches the
//! paper's measured value. Tests verify generated graphs land on the
//! target density.

use crate::density::DensityModel;
use crate::generator::lambda_for_draws;
use crate::graph::EdgeList;

/// A calibrated synthetic dataset mirroring one of the paper's graphs.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Human-readable name ("twitter-like", "yahoo-like").
    pub name: &'static str,
    /// Scaled vertex count.
    pub n_vertices: u64,
    /// Scaled edge count.
    pub n_edges: u64,
    /// Calibrated endpoint power-law exponent.
    pub alpha: f64,
    /// The paper's measured density of the 64-way partitioned data.
    pub target_density_64: f64,
    /// The butterfly degrees the paper found optimal for this dataset.
    pub paper_degrees: &'static [usize],
}

impl DatasetSpec {
    /// Twitter-follower-like graph, scaled down by `scale_div`
    /// (`scale_div = 1` is full size: 60 M vertices, 1.5 B edges).
    pub fn twitter_like(scale_div: u64) -> Self {
        Self::calibrated(
            "twitter-like",
            60_000_000 / scale_div,
            1_500_000_000 / scale_div,
            0.21,
            &[8, 4, 2],
        )
    }

    /// Yahoo-Altavista-like web graph, scaled down by `scale_div`
    /// (`scale_div = 1` is full size: 1.4 B vertices, 6 B edges).
    pub fn yahoo_like(scale_div: u64) -> Self {
        Self::calibrated(
            "yahoo-like",
            1_400_000_000 / scale_div,
            6_000_000_000 / scale_div,
            0.035,
            &[16, 4],
        )
    }

    /// Calibrate the α that makes the predicted 64-way partition density
    /// hit `target`: with `E/64` Zipf(α) endpoint draws per partition the
    /// density is `f(λ(α))`, strictly decreasing in α (mass concentrates
    /// on the head), so bisection applies.
    fn calibrated(
        name: &'static str,
        n_vertices: u64,
        n_edges: u64,
        target: f64,
        paper_degrees: &'static [usize],
    ) -> Self {
        assert!(n_vertices >= 64, "dataset too small after scaling");
        let draws = n_edges / 64;
        let predict = |alpha: f64| -> f64 {
            let m = DensityModel::new(n_vertices, alpha);
            m.density(lambda_for_draws(n_vertices, alpha, draws))
        };
        let (mut lo, mut hi) = (0.05f64, 3.0f64);
        assert!(
            predict(lo) >= target,
            "{name}: target density {target} unreachable even at alpha={lo} \
             (max {:.4}); increase edge/vertex ratio",
            predict(lo)
        );
        for _ in 0..100 {
            let mid = 0.5 * (lo + hi);
            if predict(mid) > target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        Self {
            name,
            n_vertices,
            n_edges,
            alpha: 0.5 * (lo + hi),
            target_density_64: target,
            paper_degrees,
        }
    }

    /// The density model for this dataset's vertex space.
    pub fn density_model(&self) -> DensityModel {
        DensityModel::new(self.n_vertices, self.alpha)
    }

    /// The Prop. 4.1 scaling factor of one of `m` random edge partitions.
    pub fn lambda0(&self, m: usize) -> f64 {
        lambda_for_draws(self.n_vertices, self.alpha, self.n_edges / m as u64)
    }

    /// Predicted per-partition density at `m` nodes.
    pub fn partition_density(&self, m: usize) -> f64 {
        self.density_model().density(self.lambda0(m))
    }

    /// Generate the synthetic edge list.
    pub fn generate(&self, seed: u64) -> EdgeList {
        EdgeList::power_law(
            self.n_vertices,
            self.n_edges as usize,
            self.alpha,
            self.alpha,
            seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twitter_like_calibration_hits_target() {
        let spec = DatasetSpec::twitter_like(2000); // 30k vertices, 750k edges
        let got = spec.partition_density(64);
        assert!(
            (got - 0.21).abs() < 0.005,
            "predicted density {got} (alpha {})",
            spec.alpha
        );
    }

    #[test]
    fn yahoo_like_calibration_hits_target() {
        let spec = DatasetSpec::yahoo_like(2000); // 700k vertices, 3M edges
        let got = spec.partition_density(64);
        assert!(
            (got - 0.035).abs() < 0.002,
            "predicted density {got} (alpha {})",
            spec.alpha
        );
    }

    #[test]
    fn generated_graph_matches_predicted_density() {
        let spec = DatasetSpec::twitter_like(4000); // 15k vertices, 375k edges
        let g = spec.generate(11);
        let parts = g.partition_random(64, 12);
        let mean_density: f64 = parts
            .iter()
            .take(8)
            .map(|p| p.distinct_dsts().len() as f64 / spec.n_vertices as f64)
            .sum::<f64>()
            / 8.0;
        let predicted = spec.partition_density(64);
        assert!(
            (mean_density - predicted).abs() / predicted < 0.15,
            "measured {mean_density} vs predicted {predicted}"
        );
    }

    #[test]
    fn yahoo_is_sparser_than_twitter() {
        let t = DatasetSpec::twitter_like(1000);
        let y = DatasetSpec::yahoo_like(1000);
        assert!(y.partition_density(64) < t.partition_density(64));
    }

    #[test]
    fn paper_degrees_multiply_to_64() {
        for spec in [
            DatasetSpec::twitter_like(1000),
            DatasetSpec::yahoo_like(1000),
        ] {
            let prod: usize = spec.paper_degrees.iter().product();
            assert_eq!(prod, 64, "{}", spec.name);
        }
    }

    #[test]
    fn density_decreases_with_more_partitions() {
        let spec = DatasetSpec::twitter_like(2000);
        let d16 = spec.partition_density(16);
        let d64 = spec.partition_density(64);
        assert!(d64 < d16, "finer partitions must be sparser");
    }
}
