//! Synthetic sparse power-law partition generators.
//!
//! Generates the per-node sparse vectors / index sets that feed the
//! allreduce experiments, following the paper's data model exactly: the
//! rank-`r` feature occurs in one node's partition with probability
//! `1 − exp(−λ0 r^{-α})` (Poisson occupancy). Two styles are offered:
//!
//! * [`PartitionGenerator::indices`] — exact occupancy sweep over all
//!   features (matches Prop. 4.1 by construction; O(n) per node).
//! * [`PartitionGenerator::draws`] — `N` i.i.d. Zipf draws (a minibatch
//!   of tokens/edges); the resulting occupancy follows the same law with
//!   `λ0 = N / H_n(α)`, which [`lambda_for_draws`] computes.

use crate::density::DensityModel;
use crate::zipf::Zipf;
use kylix_sparse::{mix_many, Xoshiro256};

/// Generalised harmonic number `H_n(α) = Σ_{r=1..n} r^{-α}` (exact head +
/// integral tail, mirroring the density evaluation).
pub fn harmonic(n: u64, alpha: f64) -> f64 {
    let head_n = n.min(1 << 16);
    let mut acc = 0.0;
    for r in 1..=head_n {
        acc += (r as f64).powf(-alpha);
    }
    if n > head_n {
        // ∫_{head+1/2}^{n+1/2} x^{-α} dx
        let a = head_n as f64 + 0.5;
        let b = n as f64 + 0.5;
        acc += if (alpha - 1.0).abs() < 1e-12 {
            (b / a).ln()
        } else {
            (b.powf(1.0 - alpha) - a.powf(1.0 - alpha)) / (1.0 - alpha)
        };
    }
    acc
}

/// The per-feature Poisson scaling factor λ0 induced by drawing `n_draws`
/// i.i.d. Zipf(α) samples over `n` features.
pub fn lambda_for_draws(n: u64, alpha: f64, n_draws: u64) -> f64 {
    n_draws as f64 / harmonic(n, alpha)
}

/// Generates node partitions under a fixed `(n, α, λ0)` data model.
#[derive(Debug, Clone)]
pub struct PartitionGenerator {
    model: DensityModel,
    lambda0: f64,
    seed: u64,
}

impl PartitionGenerator {
    /// Model with an explicit per-node scaling factor λ0.
    pub fn new(model: DensityModel, lambda0: f64, seed: u64) -> Self {
        assert!(lambda0 > 0.0 && lambda0.is_finite());
        Self {
            model,
            lambda0,
            seed,
        }
    }

    /// Model calibrated so each node's partition has the given expected
    /// density (the measurable quantity the paper's workflow starts from).
    pub fn with_density(model: DensityModel, density: f64, seed: u64) -> Self {
        let lambda0 = model.lambda_for_density(density);
        Self::new(model, lambda0, seed)
    }

    /// The underlying density model.
    pub fn model(&self) -> &DensityModel {
        &self.model
    }

    /// The per-node scaling factor.
    pub fn lambda0(&self) -> f64 {
        self.lambda0
    }

    /// Exact occupancy sweep: the sorted feature indices present in
    /// `node`'s partition. Distinct nodes use decorrelated streams.
    pub fn indices(&self, node: usize) -> Vec<u64> {
        let mut rng = Xoshiro256::new(mix_many(&[self.seed, node as u64, 0xF00D]));
        let alpha = self.model.alpha;
        let mut out = Vec::new();
        for r in 1..=self.model.n {
            let rate = self.lambda0 * (r as f64).powf(-alpha);
            // Inline Bernoulli(1 − e^{-rate}) with an early cutoff: rates
            // below ~1e-12 can't fire within f64 resolution of the draw.
            if rate > 1e-12 && rng.next_f64() < -(-rate).exp_m1() {
                out.push(r - 1); // zero-based feature index
            }
        }
        out
    }

    /// `n_draws` i.i.d. Zipf draws (with multiplicity) — a minibatch.
    pub fn draws(&self, node: usize, n_draws: usize) -> Vec<u64> {
        let mut rng = Xoshiro256::new(mix_many(&[self.seed, node as u64, 0xBEEF]));
        let z = Zipf::new(self.model.n, self.model.alpha);
        (0..n_draws).map(|_| z.sample_index(&mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_small_exact() {
        let h = harmonic(4, 1.0);
        assert!((h - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_large_matches_brute_force() {
        let n = 500_000u64;
        for alpha in [0.7f64, 1.0, 1.5] {
            let brute: f64 = (1..=n).map(|r| (r as f64).powf(-alpha)).sum();
            let fast = harmonic(n, alpha);
            let rel = (fast - brute).abs() / brute;
            assert!(rel < 1e-4, "alpha {alpha}: {fast} vs {brute}");
        }
    }

    #[test]
    fn generated_density_matches_target() {
        let model = DensityModel::new(50_000, 1.2);
        for target in [0.05f64, 0.2] {
            let g = PartitionGenerator::with_density(model, target, 99);
            // Average measured density over a few nodes.
            let mean: f64 = (0..8)
                .map(|node| g.indices(node).len() as f64 / model.n as f64)
                .sum::<f64>()
                / 8.0;
            assert!(
                (mean - target).abs() / target < 0.08,
                "target {target}: measured {mean}"
            );
        }
    }

    #[test]
    fn union_density_matches_layer_prediction() {
        // Merging K nodes' partitions should land on f(K λ0): the fact
        // the whole §IV design workflow rests on.
        let model = DensityModel::new(20_000, 1.0);
        let g = PartitionGenerator::with_density(model, 0.1, 7);
        let k = 8;
        let mut union = std::collections::HashSet::new();
        for node in 0..k {
            union.extend(g.indices(node));
        }
        let measured = union.len() as f64 / model.n as f64;
        let predicted = model.density(k as f64 * g.lambda0());
        assert!(
            (measured - predicted).abs() / predicted < 0.05,
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn nodes_are_decorrelated_but_overlapping() {
        let model = DensityModel::new(10_000, 1.2);
        let g = PartitionGenerator::with_density(model, 0.15, 3);
        let a: std::collections::HashSet<u64> = g.indices(0).into_iter().collect();
        let b: std::collections::HashSet<u64> = g.indices(1).into_iter().collect();
        assert_ne!(a, b, "distinct nodes must differ");
        // Power-law heads overlap: intersection is non-trivial.
        let inter = a.intersection(&b).count();
        assert!(inter > 0, "no overlap at all is implausible");
    }

    #[test]
    fn draws_lambda_consistency() {
        // Occupancy from N Zipf draws ≈ f(N / H_n(α)).
        let n = 20_000u64;
        let alpha = 1.1;
        let n_draws = 30_000usize;
        let model = DensityModel::new(n, alpha);
        let g = PartitionGenerator::new(model, 1.0, 5); // λ0 unused by draws
        let d: std::collections::HashSet<u64> = g.draws(0, n_draws).into_iter().collect();
        let measured = d.len() as f64 / n as f64;
        let predicted = model.density(lambda_for_draws(n, alpha, n_draws as u64));
        // The Zipf sampler discretises the continuous power law, which
        // shifts a little mass from the head to the tail relative to the
        // exact r^{-α} law and so produces slightly *more* distinct
        // indices than the idealised model; 10% is the observed envelope.
        assert!(
            (measured - predicted).abs() / predicted < 0.10,
            "measured {measured} vs predicted {predicted}"
        );
    }

    #[test]
    fn indices_are_sorted_unique_zero_based() {
        let model = DensityModel::new(5_000, 1.0);
        let g = PartitionGenerator::with_density(model, 0.3, 1);
        let idx = g.indices(2);
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert!(idx.iter().all(|&i| i < model.n));
    }
}
