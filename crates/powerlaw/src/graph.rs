//! Synthetic power-law graphs, CSR assembly, and random edge
//! partitioning.
//!
//! The paper evaluates on the Twitter follower graph and the Yahoo!
//! Altavista web graph, partitioned by **random edge partitioning**
//! (§II.B — the greedy alternative's precomputation costs far more than
//! the runtime it saves). We generate graphs with power-law in/out degree
//! by sampling each edge's endpoints from independent Zipf laws — a
//! Chung–Lu-style model that reproduces the head-heavy collision
//! behaviour Kylix exploits — and partition edges uniformly at random.

use crate::zipf::Zipf;
use kylix_sparse::{mix_many, Xoshiro256};

/// A directed multigraph as an edge list over vertices `0..n_vertices`.
#[derive(Debug, Clone, Default)]
pub struct EdgeList {
    /// Number of vertices (ids are `0..n_vertices`).
    pub n_vertices: u64,
    /// Directed edges `(src, dst)`.
    pub edges: Vec<(u32, u32)>,
}

impl EdgeList {
    /// Generate a power-law graph: each edge draws `src ~ Zipf(α_out)`
    /// and `dst ~ Zipf(α_in)` independently.
    pub fn power_law(
        n_vertices: u64,
        n_edges: usize,
        alpha_out: f64,
        alpha_in: f64,
        seed: u64,
    ) -> Self {
        assert!(n_vertices <= u32::MAX as u64 + 1, "vertex ids are u32");
        let zo = Zipf::new(n_vertices, alpha_out);
        let zi = Zipf::new(n_vertices, alpha_in);
        let mut rng = Xoshiro256::new(mix_many(&[seed, 0xEDDE]));
        let edges = (0..n_edges)
            .map(|_| {
                (
                    zo.sample_index(&mut rng) as u32,
                    zi.sample_index(&mut rng) as u32,
                )
            })
            .collect();
        Self { n_vertices, edges }
    }

    /// Number of edges.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True when the graph has no edges.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Random edge partitioning into `m` shares (paper §II.B). Every edge
    /// goes to a uniformly random machine; deterministic in `seed`.
    pub fn partition_random(&self, m: usize, seed: u64) -> Vec<EdgeList> {
        let mut shares: Vec<EdgeList> = (0..m)
            .map(|_| EdgeList {
                n_vertices: self.n_vertices,
                edges: Vec::with_capacity(self.edges.len() / m + 1),
            })
            .collect();
        let mut rng = Xoshiro256::new(mix_many(&[seed, 0x9A57]));
        for &e in &self.edges {
            shares[rng.next_index(m)].edges.push(e);
        }
        shares
    }

    /// Build the compressed-sparse-row form (rows = sources).
    pub fn to_csr(&self) -> Csr {
        Csr::from_edges(self.n_vertices, &self.edges)
    }

    /// Distinct destination vertices ("in" features of a PageRank
    /// iteration for this share: the columns of `Xᵢ`).
    pub fn distinct_dsts(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.edges.iter().map(|e| e.1).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Distinct source vertices ("out" features: the rows of `Xᵢ`).
    pub fn distinct_srcs(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.edges.iter().map(|e| e.0).collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

/// Compressed sparse row adjacency: `cols[row_ptr[v]..row_ptr[v+1]]` are
/// the out-neighbours of vertex `v`.
#[derive(Debug, Clone)]
pub struct Csr {
    /// Number of vertices.
    pub n: u64,
    /// Row offsets, length `n + 1`.
    pub row_ptr: Vec<usize>,
    /// Column (destination) ids, length = number of edges.
    pub cols: Vec<u32>,
}

impl Csr {
    /// Assemble CSR from an edge list by counting sort (O(V + E)).
    pub fn from_edges(n_vertices: u64, edges: &[(u32, u32)]) -> Self {
        let n = n_vertices as usize;
        let mut counts = vec![0usize; n + 1];
        for &(s, _) in edges {
            counts[s as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut cols = vec![0u32; edges.len()];
        let mut cursor = row_ptr.clone();
        for &(s, d) in edges {
            let c = &mut cursor[s as usize];
            cols[*c] = d;
            *c += 1;
        }
        Self {
            n: n_vertices,
            row_ptr,
            cols,
        }
    }

    /// Out-degree of a vertex.
    pub fn degree(&self, v: u32) -> usize {
        self.row_ptr[v as usize + 1] - self.row_ptr[v as usize]
    }

    /// Out-neighbours of a vertex.
    pub fn neighbours(&self, v: u32) -> &[u32] {
        &self.cols[self.row_ptr[v as usize]..self.row_ptr[v as usize + 1]]
    }

    /// Single-node PageRank reference: `rank' = 1/n + (n-1)/n · Xᵀ(rank/deg)`
    /// following the paper's iteration (damping expressed with graph size,
    /// as in the paper's Eq. for PageRank). Runs `iters` sweeps from the
    /// uniform vector; the distributed implementations are checked against
    /// this bit-for-bit given the same iteration count and arithmetic
    /// order tolerance.
    #[allow(clippy::needless_range_loop)] // `v` is a vertex id, not an index
    pub fn pagerank_reference(&self, iters: usize, damping: f64) -> Vec<f64> {
        let n = self.n as usize;
        let mut rank = vec![1.0 / n as f64; n];
        let mut next = vec![0.0f64; n];
        for _ in 0..iters {
            next.iter_mut().for_each(|x| *x = 0.0);
            for v in 0..n {
                let deg = self.degree(v as u32);
                if deg == 0 {
                    continue;
                }
                let share = rank[v] / deg as f64;
                for &d in self.neighbours(v as u32) {
                    next[d as usize] += share;
                }
            }
            for v in 0..n {
                rank[v] = (1.0 - damping) / n as f64 + damping * next[v];
            }
        }
        rank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_law_graph_has_requested_shape() {
        let g = EdgeList::power_law(1000, 20_000, 1.2, 1.2, 4);
        assert_eq!(g.len(), 20_000);
        assert!(g
            .edges
            .iter()
            .all(|&(s, d)| (s as u64) < 1000 && (d as u64) < 1000));
    }

    #[test]
    fn head_vertices_have_high_degree() {
        let g = EdgeList::power_law(10_000, 100_000, 1.4, 1.4, 5);
        let csr = g.to_csr();
        let deg0 = csr.degree(0);
        let mid_degrees: usize = (4000u32..4100).map(|v| csr.degree(v)).sum();
        assert!(
            deg0 > mid_degrees / 20,
            "vertex 0 degree {deg0} not power-law-ish vs mid {mid_degrees}"
        );
    }

    #[test]
    fn partition_random_preserves_edges() {
        let g = EdgeList::power_law(500, 5_000, 1.0, 1.0, 6);
        let parts = g.partition_random(8, 1);
        assert_eq!(parts.len(), 8);
        let total: usize = parts.iter().map(|p| p.len()).sum();
        assert_eq!(total, g.len());
        // Multiset equality via sorted concat.
        let mut orig = g.edges.clone();
        let mut cat: Vec<(u32, u32)> = parts.iter().flat_map(|p| p.edges.clone()).collect();
        orig.sort_unstable();
        cat.sort_unstable();
        assert_eq!(orig, cat);
    }

    #[test]
    fn partition_is_roughly_balanced() {
        let g = EdgeList::power_law(500, 64_000, 1.0, 1.0, 7);
        let parts = g.partition_random(16, 2);
        for p in &parts {
            let frac = p.len() as f64 / g.len() as f64;
            assert!((frac - 1.0 / 16.0).abs() < 0.01, "unbalanced: {}", p.len());
        }
    }

    #[test]
    fn csr_round_trips_edges() {
        let edges = vec![(0u32, 1u32), (0, 2), (1, 2), (2, 0), (2, 0)];
        let csr = Csr::from_edges(3, &edges);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(1), 1);
        assert_eq!(csr.degree(2), 2);
        assert_eq!(csr.neighbours(1), &[2]);
        assert_eq!(csr.neighbours(2), &[0, 0]);
        let total: usize = (0..3).map(|v| csr.degree(v)).sum();
        assert_eq!(total, edges.len());
    }

    #[test]
    fn pagerank_reference_sums_to_one_without_sinks() {
        // Regular ring: no sinks, so total mass is conserved.
        let edges: Vec<(u32, u32)> = (0..100u32).map(|v| (v, (v + 1) % 100)).collect();
        let csr = Csr::from_edges(100, &edges);
        let pr = csr.pagerank_reference(20, 0.85);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mass {total}");
        // Symmetric structure: all ranks equal.
        for &x in &pr {
            assert!((x - 0.01).abs() < 1e-12);
        }
    }

    #[test]
    fn pagerank_star_center_dominates() {
        // Star: everyone points to 0; 0 points to 1.
        let mut edges: Vec<(u32, u32)> = (1..50u32).map(|v| (v, 0)).collect();
        edges.push((0, 1));
        let csr = Csr::from_edges(50, &edges);
        let pr = csr.pagerank_reference(30, 0.85);
        assert!(pr[0] > pr[2] * 10.0, "center {} vs leaf {}", pr[0], pr[2]);
        assert!(pr[1] > pr[2], "0's neighbour outranks other leaves");
    }

    #[test]
    fn distinct_endpoint_sets() {
        let el = EdgeList {
            n_vertices: 10,
            edges: vec![(1, 2), (1, 3), (4, 2)],
        };
        assert_eq!(el.distinct_srcs(), vec![1, 4]);
        assert_eq!(el.distinct_dsts(), vec![2, 3]);
    }
}
