//! The Prop. 4.1 density model: `f(λ)`, its inverse, and per-layer
//! density / message-size predictions.
//!
//! For a vocabulary of `n` features whose rank-`r` frequency is
//! `Poisson(λ r^{-α})`, the expected fraction of features present in a
//! partition is
//!
//! ```text
//! D = f(λ) = (1/n) Σ_{r=1..n} (1 − exp(−λ r^{-α}))
//! ```
//!
//! Summing the partitions of `K` nodes multiplies the rate by `K`, so the
//! density of the data held at node layer `t` of a butterfly with degrees
//! `d_1 × … × d_l` is `f(A_t λ0)` where `A_t = d_1 ⋯ d_t` — and because
//! layer `t` only covers a `1/A_t` slice of the index range, the expected
//! element count per node is `(n / A_t) · f(A_t λ0)`. The communication
//! volume therefore *shrinks* down the network whenever collisions are
//! plentiful — the "Kylix" profile of Fig. 5 — and the per-neighbour
//! packet size divides by one more degree, which drives the optimal
//! degree selection of §IV (implemented in the `kylix` crate's `design`
//! module on top of this model).

/// Above this `n` the sum is evaluated with an exact head plus an
/// integral-approximated tail; below, fully exactly.
const EXACT_N: u64 = 1 << 17;
/// Ranks `1..=HEAD` are always summed exactly.
const HEAD: u64 = 4096;
/// Log-spaced panels for the tail integral.
const PANELS: usize = 2048;

/// The Prop. 4.1 model for one dataset: `n` features with exponent `α`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DensityModel {
    /// Total number of features (vector length `n`).
    pub n: u64,
    /// Power-law exponent of the rank-frequency law.
    pub alpha: f64,
}

/// Predicted statistics for one node layer of a butterfly network.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerPrediction {
    /// Number of original partitions aggregated at this node layer
    /// (`A_t = d_1 ⋯ d_t`; 1 at the top).
    pub aggregated: u64,
    /// Expected vector density `f(A_t λ0)` over the full feature space.
    pub density: f64,
    /// Expected non-zero elements held per node: `(n / A_t) · density`.
    pub elems_per_node: f64,
}

impl DensityModel {
    /// Construct a model; panics on degenerate parameters.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n >= 1, "need at least one feature");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        Self { n, alpha }
    }

    /// The density function `f(λ)` (expected fraction of features with
    /// count ≥ 1).
    pub fn density(&self, lambda: f64) -> f64 {
        assert!(lambda >= 0.0 && lambda.is_finite(), "bad lambda {lambda}");
        if lambda == 0.0 {
            return 0.0;
        }
        if self.n <= EXACT_N {
            self.sum_exact(1, self.n, lambda) / self.n as f64
        } else {
            let head = self.sum_exact(1, HEAD, lambda);
            let tail = self.tail_integral(HEAD, self.n, lambda);
            (head + tail) / self.n as f64
        }
    }

    /// Exact `Σ_{r=a..=b} (1 − exp(−λ r^{-α}))`.
    fn sum_exact(&self, a: u64, b: u64, lambda: f64) -> f64 {
        let alpha = self.alpha;
        let mut acc = 0.0;
        for r in a..=b {
            let rate = lambda * (r as f64).powf(-alpha);
            acc += -(-rate).exp_m1();
        }
        acc
    }

    /// `Σ_{r=a+1..=b} g(r)` approximated by `∫_{a+1/2}^{b+1/2} g(x) dx`
    /// with log-spaced trapezoids (`g` is smooth and monotone, so the
    /// midpoint-shifted integral tracks the sum to high accuracy).
    fn tail_integral(&self, a: u64, b: u64, lambda: f64) -> f64 {
        let alpha = self.alpha;
        let lo = a as f64 + 0.5;
        let hi = b as f64 + 0.5;
        let llo = lo.ln();
        let lhi = hi.ln();
        let g = |x: f64| -> f64 { -(-lambda * x.powf(-alpha)).exp_m1() };
        // Trapezoid in u = ln x: ∫ g dx = ∫ g(e^u) e^u du.
        let mut acc = 0.0;
        let step = (lhi - llo) / PANELS as f64;
        let mut prev = g(lo) * lo;
        for i in 1..=PANELS {
            let x = (llo + step * i as f64).exp();
            let cur = g(x) * x;
            acc += 0.5 * (prev + cur) * step;
            prev = cur;
        }
        acc
    }

    /// Invert `f`: the λ at which the model predicts the given density.
    ///
    /// `density` must be in `(0, 1)`; solved by bisection on `ln λ`
    /// (monotone, so convergence is guaranteed).
    pub fn lambda_for_density(&self, density: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&density) && density > 0.0,
            "density must be in (0,1), got {density}"
        );
        let (mut lo, mut hi) = (-60.0f64, 60.0f64); // ln λ bounds
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.density(mid.exp()) < density {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-12 {
                break;
            }
        }
        (0.5 * (lo + hi)).exp()
    }

    /// The λ at which density reaches 0.9 — the normalisation the paper
    /// uses for the x-axis of Fig. 4.
    pub fn lambda_090(&self) -> f64 {
        self.lambda_for_density(0.9)
    }

    /// Predicted per-node-layer statistics for a butterfly with the given
    /// degrees, starting from a top-layer scaling factor `lambda0`.
    ///
    /// Returns `degrees.len() + 1` entries: node layers `0..=l`. Entry
    /// `t` describes data held *after* `t` communication layers; entry
    /// `t` is also what gets sent during communication layer `t+1`
    /// (split `d_{t+1}` ways).
    pub fn layer_predictions(&self, lambda0: f64, degrees: &[usize]) -> Vec<LayerPrediction> {
        let mut out = Vec::with_capacity(degrees.len() + 1);
        let mut agg = 1u64;
        for t in 0..=degrees.len() {
            if t > 0 {
                agg *= degrees[t - 1] as u64;
            }
            let density = self.density(agg as f64 * lambda0);
            out.push(LayerPrediction {
                aggregated: agg,
                density,
                elems_per_node: (self.n as f64 / agg as f64) * density,
            });
        }
        out
    }

    /// Expected per-neighbour message size, in elements, for communication
    /// layer `t+1` when node layer `t` data is split `d` ways.
    pub fn message_elems(&self, pred: &LayerPrediction, d: usize) -> f64 {
        pred.elems_per_node / d as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_density(n: u64, alpha: f64, lambda: f64) -> f64 {
        let mut acc = 0.0;
        for r in 1..=n {
            acc += -(-lambda * (r as f64).powf(-alpha)).exp_m1();
        }
        acc / n as f64
    }

    #[test]
    fn density_zero_and_saturation() {
        let m = DensityModel::new(10_000, 1.0);
        assert_eq!(m.density(0.0), 0.0);
        // Huge λ saturates every feature.
        assert!(m.density(1e12) > 0.999);
    }

    #[test]
    fn density_is_monotone_in_lambda() {
        let m = DensityModel::new(100_000, 1.2);
        let mut prev = 0.0;
        for e in -8..8 {
            let d = m.density(10f64.powi(e));
            assert!(d >= prev, "not monotone at 1e{e}");
            prev = d;
        }
    }

    #[test]
    fn tail_approximation_matches_exact_sum() {
        // Force the approximate path by n > EXACT_N and compare against
        // brute force.
        let n = 1_000_000;
        for alpha in [0.5f64, 1.0, 2.0] {
            let m = DensityModel::new(n, alpha);
            for lambda in [0.01f64, 1.0, 100.0, 1e4] {
                let approx = m.density(lambda);
                let exact = exact_density(n, alpha, lambda);
                let rel = (approx - exact).abs() / exact.max(1e-12);
                assert!(
                    rel < 1e-3,
                    "alpha {alpha} lambda {lambda}: {approx} vs {exact} (rel {rel})"
                );
            }
        }
    }

    #[test]
    fn lambda_for_density_round_trips() {
        let m = DensityModel::new(200_000, 1.3);
        for d in [0.01f64, 0.035, 0.21, 0.5, 0.9] {
            let lambda = m.lambda_for_density(d);
            let back = m.density(lambda);
            assert!((back - d).abs() < 1e-6, "target {d}: got {back}");
        }
    }

    #[test]
    fn fig4_shape_modest_alpha_dependence() {
        // Paper Fig. 4: the normalised density curves for α ∈ [0.5, 2]
        // nearly coincide. Check that at λ = λ_0.9 / 10, densities across
        // α stay within a modest band.
        let ds: Vec<f64> = [0.5f64, 1.0, 2.0]
            .iter()
            .map(|&alpha| {
                let m = DensityModel::new(1 << 16, alpha);
                let l09 = m.lambda_090();
                m.density(l09 / 10.0)
            })
            .collect();
        let (lo, hi) = ds
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &d| (l.min(d), h.max(d)));
        assert!(hi - lo < 0.3, "α-dependence too strong: {ds:?}");
    }

    #[test]
    fn layer_predictions_density_grows_volume_shrinks() {
        // Twitter-like setup: density 0.21 at the 64-way partition.
        let m = DensityModel::new(1 << 20, 1.2);
        let lambda0 = m.lambda_for_density(0.21);
        let preds = m.layer_predictions(lambda0, &[8, 4, 2]);
        assert_eq!(preds.len(), 4);
        assert_eq!(preds[0].aggregated, 1);
        assert_eq!(preds[3].aggregated, 64);
        for w in preds.windows(2) {
            assert!(w[1].density > w[0].density, "density must grow downward");
            assert!(
                w[1].elems_per_node < w[0].elems_per_node,
                "per-node volume must shrink downward (power-law collapse)"
            );
        }
    }

    #[test]
    fn message_elems_divides_by_degree() {
        let m = DensityModel::new(1000, 1.0);
        let p = LayerPrediction {
            aggregated: 1,
            density: 0.5,
            elems_per_node: 500.0,
        };
        assert_eq!(m.message_elems(&p, 4), 125.0);
    }

    #[test]
    #[should_panic(expected = "density must be in")]
    fn inverse_rejects_bad_density() {
        DensityModel::new(100, 1.0).lambda_for_density(1.5);
    }
}
