#![warn(missing_docs)]

//! # kylix-powerlaw
//!
//! Statistical models of power-law ("natural graph") data and synthetic
//! workload generators for the Kylix reproduction.
//!
//! The paper's network-design workflow (§IV) rests on one observation:
//! for power-law data, the frequency of the rank-`r` feature is well
//! modelled as `Poisson(λ · r^{-α})`, so the *density* of a sparse vector
//! (fraction of features present) is a closed-form function of the
//! scaling factor λ:
//!
//! ```text
//! D = f(λ) = (1/n) Σ_{r=1..n} (1 − exp(−λ r^{-α}))        (Prop. 4.1)
//! ```
//!
//! When `K` nodes' partitions are summed, the rate scales to `K·λ`, so
//! walking a butterfly network down its layers just walks `λ` up this
//! curve — that is the whole design workflow, reproduced in
//! [`density::DensityModel`].
//!
//! Modules:
//! * [`density`] — `f(λ)`, its inverse, per-layer densities and expected
//!   message sizes (Prop. 4.1; paper Figs. 4 and 5).
//! * [`zipf`] — O(1) power-law rank sampler (continuous inverse-CDF,
//!   discretised) for building synthetic edges and feature draws.
//! * [`poisson`] — Poisson counts and exact Bernoulli occupancy draws.
//! * [`generator`] — sparse power-law vector generators (per-node
//!   partitions with a given α and density).
//! * [`graph`] — synthetic power-law graph generation, CSR assembly, and
//!   random edge partitioning (the partitioning scheme the paper uses).
//! * [`datasets`] — scaled-down stand-ins for the paper's Twitter
//!   follower graph and Yahoo! Altavista web graph, calibrated to the
//!   measured per-partition densities (0.21 and 0.035 at 64 nodes).

pub mod datasets;
pub mod density;
pub mod generator;
pub mod graph;
pub mod poisson;
pub mod zipf;

pub use datasets::DatasetSpec;
pub use density::DensityModel;
pub use generator::PartitionGenerator;
pub use graph::{Csr, EdgeList};
pub use zipf::Zipf;
