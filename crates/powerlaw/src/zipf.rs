//! Power-law (Zipf-like) rank sampling.
//!
//! Draws ranks `r ∈ {1, …, n}` with probability approximately
//! `∝ r^{-α}`. We invert the CDF of the *continuous* power-law density on
//! `[1, n+1)` and floor the result: rank `r` then has exact probability
//! `∫_r^{r+1} x^{-α} dx / ∫_1^{n+1} x^{-α} dx`, which matches `r^{-α}` to
//! within its own magnitude everywhere and preserves the log-log slope —
//! the property the Kylix experiments depend on. The sampler is O(1) per
//! draw with no tables, so generating multi-million-edge graphs is cheap.

use kylix_sparse::Xoshiro256;

/// An O(1) sampler of ranks `1..=n` with `P(r) ≈ r^{-α}` (normalised).
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    alpha: f64,
    /// `(n+1)^{1-α} − 1`, cached for the inverse CDF (α ≠ 1 branch).
    span: f64,
}

impl Zipf {
    /// Create a sampler over ranks `1..=n` with exponent `α > 0`.
    pub fn new(n: u64, alpha: f64) -> Self {
        assert!(n >= 1, "need at least one rank");
        assert!(alpha > 0.0 && alpha.is_finite(), "alpha must be positive");
        let span = if (alpha - 1.0).abs() < 1e-12 {
            ((n + 1) as f64).ln()
        } else {
            ((n + 1) as f64).powf(1.0 - alpha) - 1.0
        };
        Self { n, alpha, span }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// The power-law exponent.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Draw one rank in `1..=n`.
    pub fn sample(&self, rng: &mut Xoshiro256) -> u64 {
        let u = rng.next_f64();
        let x = if (self.alpha - 1.0).abs() < 1e-12 {
            // F(x) = ln(x)/ln(n+1)  =>  x = (n+1)^u
            (u * self.span).exp()
        } else {
            // F(x) = (x^{1-α} − 1)/((n+1)^{1-α} − 1)
            (1.0 + u * self.span).powf(1.0 / (1.0 - self.alpha))
        };
        // Floor into {1, …, n}; clamp guards the x == n+1 edge.
        (x as u64).clamp(1, self.n)
    }

    /// Draw one rank and return it zero-based (`0..n`), convenient for
    /// array indexing of features/vertices.
    pub fn sample_index(&self, rng: &mut Xoshiro256) -> u64 {
        self.sample(rng) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(100, 1.2);
        let mut rng = Xoshiro256::new(8);
        for _ in 0..50_000 {
            let r = z.sample(&mut rng);
            assert!((1..=100).contains(&r));
        }
    }

    #[test]
    fn rank_one_dominates() {
        let z = Zipf::new(1000, 1.5);
        let mut rng = Xoshiro256::new(9);
        let n = 100_000;
        let ones = (0..n).filter(|_| z.sample(&mut rng) == 1).count();
        // For α=1.5, P(1) ≈ (1 - 2^{-0.5}) / (1 - 1001^{-0.5}) ≈ 0.30.
        let frac = ones as f64 / n as f64;
        assert!((0.25..0.36).contains(&frac), "P(rank 1) = {frac}");
    }

    #[test]
    fn empirical_loglog_slope_matches_alpha() {
        for alpha in [0.8f64, 1.0, 1.6] {
            let z = Zipf::new(10_000, alpha);
            let mut rng = Xoshiro256::new(10);
            let mut counts = vec![0u64; 10_001];
            for _ in 0..2_000_000 {
                counts[z.sample(&mut rng) as usize] += 1;
            }
            // Regress log(count) on log(rank) over well-populated ranks.
            let pts: Vec<(f64, f64)> = (2..200)
                .filter(|&r| counts[r] > 50)
                .map(|r| ((r as f64).ln(), (counts[r] as f64).ln()))
                .collect();
            assert!(pts.len() > 50, "not enough populated ranks");
            let n = pts.len() as f64;
            let sx: f64 = pts.iter().map(|p| p.0).sum();
            let sy: f64 = pts.iter().map(|p| p.1).sum();
            let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
            let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
            let slope = (n * sxy - sx * sy) / (n * sxx - sx * sx);
            assert!((slope + alpha).abs() < 0.12, "alpha {alpha}: slope {slope}");
        }
    }

    #[test]
    fn alpha_one_branch_works() {
        let z = Zipf::new(50, 1.0);
        let mut rng = Xoshiro256::new(11);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            seen.insert(z.sample(&mut rng));
        }
        assert!(seen.len() > 40, "α=1 sampler collapsed: {}", seen.len());
    }

    #[test]
    fn single_rank_always_one() {
        let z = Zipf::new(1, 2.0);
        let mut rng = Xoshiro256::new(12);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut rng), 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let z = Zipf::new(500, 1.3);
        let a: Vec<u64> = {
            let mut r = Xoshiro256::new(77);
            (0..32).map(|_| z.sample(&mut r)).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256::new(77);
            (0..32).map(|_| z.sample(&mut r)).collect()
        };
        assert_eq!(a, b);
    }
}
