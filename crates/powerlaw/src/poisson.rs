//! Poisson count sampling and exact occupancy draws.
//!
//! The Prop. 4.1 data model treats each feature's frequency as
//! `Poisson(λ r^{-α})`. Two uses arise:
//!
//! * **Occupancy** — whether a feature appears at all. `P(count ≥ 1) =
//!   1 − e^{-rate}` is a Bernoulli draw; we sample it exactly, which is
//!   all the density experiments need.
//! * **Counts** — actual multiplicities, for value generation. Knuth's
//!   product method is exact for modest rates; above a threshold we use
//!   the normal approximation (error negligible for rate ≳ 30 and these
//!   workloads never depend on exact tail counts).

use kylix_sparse::Xoshiro256;

/// Rate above which the normal approximation replaces Knuth's method.
const NORMAL_CUTOFF: f64 = 30.0;

/// Draw a Poisson count with the given rate.
pub fn sample_poisson(rng: &mut Xoshiro256, rate: f64) -> u64 {
    assert!(rate >= 0.0 && rate.is_finite(), "bad rate {rate}");
    if rate == 0.0 {
        return 0;
    }
    if rate < NORMAL_CUTOFF {
        // Knuth: multiply uniforms until the product drops below e^{-λ}.
        let limit = (-rate).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= rng.next_f64();
            if p <= limit {
                return k;
            }
            k += 1;
        }
    } else {
        // Normal approximation N(λ, λ), rounded and clamped.
        let x = rate + rate.sqrt() * rng.next_gaussian();
        x.round().max(0.0) as u64
    }
}

/// Exact draw of the occupancy indicator `1{Poisson(rate) ≥ 1}`.
pub fn sample_occupied(rng: &mut Xoshiro256, rate: f64) -> bool {
    debug_assert!(rate >= 0.0);
    // P(≥1) = 1 − e^{-rate}; u < p with u uniform.
    rng.next_f64() < -(-rate).exp_m1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_is_zero() {
        let mut rng = Xoshiro256::new(1);
        for _ in 0..100 {
            assert_eq!(sample_poisson(&mut rng, 0.0), 0);
        }
    }

    #[test]
    fn small_rate_mean_and_variance() {
        let mut rng = Xoshiro256::new(2);
        let rate = 3.5;
        let n = 200_000;
        let (mut sum, mut sq) = (0f64, 0f64);
        for _ in 0..n {
            let k = sample_poisson(&mut rng, rate) as f64;
            sum += k;
            sq += k * k;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - rate).abs() < 0.05, "mean {mean}");
        assert!((var - rate).abs() < 0.1, "var {var}");
    }

    #[test]
    fn large_rate_mean_and_variance() {
        let mut rng = Xoshiro256::new(3);
        let rate = 250.0;
        let n = 100_000;
        let (mut sum, mut sq) = (0f64, 0f64);
        for _ in 0..n {
            let k = sample_poisson(&mut rng, rate) as f64;
            sum += k;
            sq += k * k;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!((mean - rate).abs() < 0.5, "mean {mean}");
        assert!((var / rate - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn occupancy_matches_closed_form() {
        let mut rng = Xoshiro256::new(4);
        for rate in [0.01f64, 0.5, 1.0, 4.0] {
            let n = 200_000;
            let hits = (0..n).filter(|_| sample_occupied(&mut rng, rate)).count();
            let want = 1.0 - (-rate).exp();
            let got = hits as f64 / n as f64;
            assert!((got - want).abs() < 0.01, "rate {rate}: {got} vs {want}");
        }
    }

    #[test]
    fn occupancy_of_zero_rate_is_false() {
        let mut rng = Xoshiro256::new(5);
        for _ in 0..1000 {
            assert!(!sample_occupied(&mut rng, 0.0));
        }
    }
}
