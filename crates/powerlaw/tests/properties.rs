//! Property tests on the statistical models: the density function's
//! analytic identities and the samplers' distributional sanity.

use kylix_powerlaw::generator::{harmonic, lambda_for_draws};
use kylix_powerlaw::{DensityModel, Zipf};
use kylix_sparse::Xoshiro256;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// f is monotone in λ and bounded in [0, 1].
    #[test]
    fn density_monotone_and_bounded(
        n in 64u64..100_000,
        alpha in 0.3f64..2.5,
        l1 in -6.0f64..6.0,
        dl in 0.0f64..3.0,
    ) {
        let m = DensityModel::new(n, alpha);
        let a = m.density(10f64.powf(l1));
        let b = m.density(10f64.powf(l1 + dl));
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!((0.0..=1.0).contains(&b));
        prop_assert!(b >= a - 1e-12);
    }

    /// The inverse really inverts across the useful range.
    #[test]
    fn lambda_inverse_round_trips(
        n in 256u64..50_000,
        alpha in 0.4f64..2.0,
        d in 0.01f64..0.95,
    ) {
        let m = DensityModel::new(n, alpha);
        let lambda = m.lambda_for_density(d);
        prop_assert!((m.density(lambda) - d).abs() < 1e-5);
    }

    /// Superadditivity of union density: f(2λ) ≤ 2·f(λ) (collisions
    /// only remove elements) and f(2λ) ≥ f(λ).
    #[test]
    fn union_density_bounds(
        n in 256u64..50_000,
        alpha in 0.4f64..2.0,
        l in -4.0f64..4.0,
    ) {
        let m = DensityModel::new(n, alpha);
        let lambda = 10f64.powf(l);
        let one = m.density(lambda);
        let two = m.density(2.0 * lambda);
        prop_assert!(two <= 2.0 * one + 1e-12);
        prop_assert!(two >= one - 1e-12);
    }

    /// Layer predictions: density grows downward, per-node elements
    /// shrink, aggregation factors multiply out.
    #[test]
    fn layer_predictions_invariants(
        alpha in 0.6f64..1.8,
        d0 in 0.02f64..0.5,
        degrees in prop::collection::vec(2usize..9, 1..4),
    ) {
        let m = DensityModel::new(1 << 16, alpha);
        let lambda0 = m.lambda_for_density(d0);
        let preds = m.layer_predictions(lambda0, &degrees);
        prop_assert_eq!(preds.len(), degrees.len() + 1);
        let product: u64 = degrees.iter().map(|&d| d as u64).product();
        prop_assert_eq!(preds.last().unwrap().aggregated, product);
        for w in preds.windows(2) {
            prop_assert!(w[1].density >= w[0].density);
            prop_assert!(w[1].elems_per_node <= w[0].elems_per_node + 1e-9);
        }
    }

    /// Harmonic numbers: positive, increasing in n, decreasing in α.
    #[test]
    fn harmonic_monotonicity(n in 10u64..1_000_000, alpha in 0.3f64..2.5) {
        let h = harmonic(n, alpha);
        prop_assert!(h > 0.0);
        prop_assert!(harmonic(n + 10, alpha) >= h);
        prop_assert!(harmonic(n, alpha + 0.2) <= h);
    }

    /// λ from draws is linear in the draw count.
    #[test]
    fn lambda_linear_in_draws(n in 100u64..100_000, alpha in 0.4f64..2.0, draws in 1u64..1_000_000) {
        let a = lambda_for_draws(n, alpha, draws);
        let b = lambda_for_draws(n, alpha, 2 * draws);
        prop_assert!((b / a - 2.0).abs() < 1e-9);
    }

    /// Zipf samples respect the support and favour small ranks in
    /// aggregate: the mean sampled rank is far below uniform's mean.
    #[test]
    fn zipf_head_heavy(n in 100u64..10_000, alpha in 0.8f64..2.0, seed in 0u64..1000) {
        let z = Zipf::new(n, alpha);
        let mut rng = Xoshiro256::new(seed);
        let k = 2000;
        let mut sum = 0.0;
        for _ in 0..k {
            let r = z.sample(&mut rng);
            prop_assert!((1..=n).contains(&r));
            sum += r as f64;
        }
        let mean = sum / k as f64;
        prop_assert!(mean < 0.4 * n as f64, "mean rank {mean} vs n {n}");
    }
}
