//! Union-with-position-maps merge kernels.
//!
//! During configuration (paper §III.A) a node receives `d` sorted index
//! sets from its butterfly-group neighbours and must compute
//!
//! 1. the **union** of the sets (the node's index set for the next layer),
//! 2. for every input set, a **position map** from positions in that set
//!    to positions in the union.
//!
//! The maps are what make reduction cheap: the down pass *scatter-adds* a
//! neighbour's value vector into the union layout with one indexed add per
//! element (`map f` in the paper), and the up pass *gathers* the slice a
//! neighbour asked for with one indexed read per element (`map g`).
//!
//! §VI.A of the paper observes that hash tables are the asymptotically
//! obvious way to union sets but lose badly to **merging sorted runs** in
//! practice (5× in their measurements) because of random-access constants.
//! Merging is only efficient when the two runs are comparable in length,
//! so `k` sets are combined along a balanced binary **tree merge**: leaves
//! are the input sets, every internal node merges two runs of similar
//! size. We implement exactly that, threading the position maps through
//! the tree: when two runs merge, previously-built maps of their leaves
//! are rewritten through the merge's own placement vector.

use crate::key::Key;

/// Result of unioning `k` sorted sets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MergeResult {
    /// The sorted, deduplicated union of all input sets.
    pub union: Vec<Key>,
    /// `maps[i][p]` = position in `union` of element `p` of input set `i`.
    pub maps: Vec<Vec<u32>>,
}

/// Merge two sorted deduplicated runs, producing the union and, for each
/// input, the map from its positions to union positions.
pub fn merge_union(a: &[Key], b: &[Key]) -> MergeResult {
    let mut union = Vec::with_capacity(a.len() + b.len());
    let mut map_a = Vec::with_capacity(a.len());
    let mut map_b = Vec::with_capacity(b.len());
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let pos = union.len() as u32;
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                union.push(a[i]);
                map_a.push(pos);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                union.push(b[j]);
                map_b.push(pos);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                union.push(a[i]);
                map_a.push(pos);
                map_b.push(pos);
                i += 1;
                j += 1;
            }
        }
    }
    while i < a.len() {
        map_a.push(union.len() as u32);
        union.push(a[i]);
        i += 1;
    }
    while j < b.len() {
        map_b.push(union.len() as u32);
        union.push(b[j]);
        j += 1;
    }
    MergeResult {
        union,
        maps: vec![map_a, map_b],
    }
}

/// Union `k` sorted deduplicated sets via a balanced tree merge,
/// returning per-set position maps into the union (paper §VI.A).
///
/// Cost is `O(S log k)` where `S` is the total input size, versus
/// `O(S k)` for naive sequential accumulation into one growing run.
pub fn tree_merge(sets: &[&[Key]]) -> MergeResult {
    match sets.len() {
        0 => MergeResult {
            union: Vec::new(),
            maps: Vec::new(),
        },
        1 => MergeResult {
            union: sets[0].to_vec(),
            maps: vec![(0..sets[0].len() as u32).collect()],
        },
        _ => {
            // Internal frame: a merged run plus the maps of the original
            // leaf sets it covers (in input order).
            struct Frame {
                run: Vec<Key>,
                leaf_maps: Vec<(usize, Vec<u32>)>,
            }
            let mut level: Vec<Frame> = sets
                .iter()
                .enumerate()
                .map(|(i, s)| Frame {
                    run: s.to_vec(),
                    leaf_maps: vec![(i, (0..s.len() as u32).collect())],
                })
                .collect();
            while level.len() > 1 {
                let mut next = Vec::with_capacity(level.len().div_ceil(2));
                let mut it = level.into_iter();
                while let Some(a) = it.next() {
                    match it.next() {
                        None => next.push(a),
                        Some(b) => {
                            let merged = merge_union(&a.run, &b.run);
                            let mut leaf_maps =
                                Vec::with_capacity(a.leaf_maps.len() + b.leaf_maps.len());
                            for (idx, m) in a.leaf_maps {
                                leaf_maps.push((
                                    idx,
                                    m.iter().map(|&p| merged.maps[0][p as usize]).collect(),
                                ));
                            }
                            for (idx, m) in b.leaf_maps {
                                leaf_maps.push((
                                    idx,
                                    m.iter().map(|&p| merged.maps[1][p as usize]).collect(),
                                ));
                            }
                            next.push(Frame {
                                run: merged.union,
                                leaf_maps,
                            });
                        }
                    }
                }
                level = next;
            }
            let root = level.pop().expect("nonempty level");
            let mut maps = vec![Vec::new(); sets.len()];
            for (idx, m) in root.leaf_maps {
                maps[idx] = m;
            }
            MergeResult {
                union: root.run,
                maps,
            }
        }
    }
}

/// Reference union via hash set + sort; used by tests and benches as the
/// baseline the paper's tree merge beat by 5×.
pub fn hash_union(sets: &[&[Key]]) -> Vec<Key> {
    let mut all: std::collections::HashSet<Key> = std::collections::HashSet::new();
    for s in sets {
        all.extend(s.iter().copied());
    }
    let mut v: Vec<Key> = all.into_iter().collect();
    v.sort_unstable();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Xoshiro256;
    use crate::index_set::IndexSet;

    fn set(ids: impl IntoIterator<Item = u64>) -> Vec<Key> {
        IndexSet::from_indices(ids).into_keys()
    }

    fn check_maps(result: &MergeResult, inputs: &[&[Key]]) {
        assert_eq!(result.maps.len(), inputs.len());
        for (input, map) in inputs.iter().zip(&result.maps) {
            assert_eq!(input.len(), map.len());
            for (k, &p) in input.iter().zip(map) {
                assert_eq!(result.union[p as usize], *k, "map points at wrong key");
            }
        }
        assert!(
            result.union.windows(2).all(|w| w[0] < w[1]),
            "union not sorted/unique"
        );
    }

    #[test]
    fn merge_two_disjoint() {
        let a = set([1u64, 2, 3]);
        let b = set([10u64, 20, 30]);
        let r = merge_union(&a, &b);
        assert_eq!(r.union.len(), 6);
        check_maps(&r, &[&a, &b]);
    }

    #[test]
    fn merge_two_identical() {
        let a = set(0..50u64);
        let r = merge_union(&a, &a);
        assert_eq!(r.union, a);
        assert_eq!(r.maps[0], r.maps[1]);
        check_maps(&r, &[&a, &a]);
    }

    #[test]
    fn merge_with_empty() {
        let a = set([7u64, 8]);
        let e: Vec<Key> = Vec::new();
        let r = merge_union(&a, &e);
        assert_eq!(r.union, a);
        assert!(r.maps[1].is_empty());
        let r2 = merge_union(&e, &a);
        assert_eq!(r2.union, a);
    }

    #[test]
    fn tree_merge_matches_hash_union() {
        let mut rng = Xoshiro256::new(42);
        for k in [1usize, 2, 3, 4, 5, 8, 9, 16, 17] {
            let sets: Vec<Vec<Key>> = (0..k)
                .map(|_| {
                    let n = rng.next_index(500);
                    set((0..n).map(|_| rng.next_below(1000)))
                })
                .collect();
            let refs: Vec<&[Key]> = sets.iter().map(|s| s.as_slice()).collect();
            let r = tree_merge(&refs);
            assert_eq!(r.union, hash_union(&refs), "k={k}");
            check_maps(&r, &refs);
        }
    }

    #[test]
    fn tree_merge_zero_sets() {
        let r = tree_merge(&[]);
        assert!(r.union.is_empty());
        assert!(r.maps.is_empty());
    }

    #[test]
    fn tree_merge_single_set_is_identity() {
        let a = set([3u64, 1, 4, 1, 5]);
        let r = tree_merge(&[&a]);
        assert_eq!(r.union, a);
        assert_eq!(r.maps[0], (0..a.len() as u32).collect::<Vec<_>>());
    }

    #[test]
    fn scatter_add_through_maps_sums_duplicates() {
        // The whole point of the maps: values at shared indices collapse.
        let a = set([1u64, 2, 3]);
        let b = set([2u64, 3, 4]);
        let r = tree_merge(&[&a, &b]);
        let mut acc = vec![0.0f64; r.union.len()];
        for (v, &p) in [1.0, 1.0, 1.0].iter().zip(&r.maps[0]) {
            acc[p as usize] += v;
        }
        for (v, &p) in [10.0, 10.0, 10.0].iter().zip(&r.maps[1]) {
            acc[p as usize] += v;
        }
        let total: f64 = acc.iter().sum();
        assert_eq!(total, 33.0);
        // index 2 and 3 got both contributions
        let pos2 = r.union.iter().position(|k| k.index == 2).unwrap();
        assert_eq!(acc[pos2], 11.0);
    }

    #[test]
    fn power_law_collision_shrinks_union() {
        // Heads of power-law sets overlap heavily, so the union is much
        // smaller than the concatenation — the effect behind the Kylix
        // volume profile (paper Fig. 5).
        let mut rng = Xoshiro256::new(1);
        let sets: Vec<Vec<Key>> = (0..8)
            .map(|_| {
                set((0..3000).map(|_| {
                    // crude zipf: floor(u^-1) capped
                    let u = rng.next_f64().max(1e-9);
                    ((1.0 / u) as u64).min(9999)
                }))
            })
            .collect();
        let refs: Vec<&[Key]> = sets.iter().map(|s| s.as_slice()).collect();
        let total: usize = refs.iter().map(|s| s.len()).sum();
        let r = tree_merge(&refs);
        assert!(
            r.union.len() * 2 < total,
            "expected heavy collapse: union {} vs total {total}",
            r.union.len()
        );
    }
}
