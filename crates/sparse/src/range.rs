//! Contiguous half-open ranges of the 64-bit hash space.
//!
//! Kylix's nested partitioning works on the *hash* space: the whole space
//! `[0, 2^64)` is recursively split into equal sub-ranges, one per
//! butterfly-group neighbour at each layer (paper §III.A: "Partitioning is
//! done into equal-size ranges of indices … the original indices are
//! hashed to the values used for partitioning"). Because a node's key set
//! is sorted by hash, extracting the keys of a sub-range is two binary
//! searches — the partition step is O(d log s) for a set of size s split
//! `d` ways, and the extracted parts are contiguous slices (no copying
//! until they are framed into messages).

/// A half-open range `[lo, hi)` of the hash space.
///
/// Bounds are stored as `u128` so the full space `[0, 2^64)` is
/// representable without a special case for the exclusive upper bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HashRange {
    /// Inclusive lower bound (as a 128-bit value; always < 2^64).
    lo: u128,
    /// Exclusive upper bound (as a 128-bit value; ≤ 2^64).
    hi: u128,
}

impl HashRange {
    /// The full 64-bit hash space `[0, 2^64)`.
    pub fn full() -> Self {
        Self {
            lo: 0,
            hi: 1u128 << 64,
        }
    }

    /// A sub-range; panics if bounds are out of order or exceed 2^64.
    pub fn new(lo: u128, hi: u128) -> Self {
        assert!(lo <= hi && hi <= (1u128 << 64), "bad range {lo}..{hi}");
        Self { lo, hi }
    }

    /// Inclusive lower bound, clamped into u64.
    #[inline]
    pub fn lo(&self) -> u64 {
        self.lo as u64
    }

    /// Exclusive upper bound as u128 (may be exactly 2^64).
    #[inline]
    pub fn hi(&self) -> u128 {
        self.hi
    }

    /// Number of hash points covered.
    #[inline]
    pub fn len(&self) -> u128 {
        self.hi - self.lo
    }

    /// True when the range covers no hash points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo == self.hi
    }

    /// Does this range contain the given hash?
    #[inline]
    pub fn contains(&self, hash: u64) -> bool {
        let h = hash as u128;
        self.lo <= h && h < self.hi
    }

    /// Split into `d` equal (±1 point) consecutive sub-ranges.
    ///
    /// The first `len % d` parts are one point longer so the parts tile the
    /// range exactly. With `d` dividing a power of two (the common case —
    /// butterfly degrees are small integers and the space is 2^64) parts
    /// are exactly equal.
    pub fn split(&self, d: usize) -> Vec<HashRange> {
        assert!(d > 0, "cannot split into 0 parts");
        let d128 = d as u128;
        let base = self.len() / d128;
        let extra = self.len() % d128;
        let mut parts = Vec::with_capacity(d);
        let mut lo = self.lo;
        for t in 0..d128 {
            let len = base + if t < extra { 1 } else { 0 };
            parts.push(HashRange::new(lo, lo + len));
            lo += len;
        }
        debug_assert_eq!(lo, self.hi);
        parts
    }

    /// Which of the `d` equal parts does `hash` fall into?
    ///
    /// Equivalent to finding the index of the part of [`Self::split`]
    /// containing `hash`, but in O(1).
    pub fn part_of(&self, hash: u64, d: usize) -> usize {
        debug_assert!(self.contains(hash), "hash outside range");
        let d128 = d as u128;
        let base = self.len() / d128;
        let extra = self.len() % d128;
        let off = hash as u128 - self.lo;
        // First `extra` parts have length base+1.
        let wide = extra * (base + 1);
        if off < wide {
            (off / (base + 1)) as usize
        } else {
            (extra + (off - wide) / base) as usize
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Xoshiro256;

    #[test]
    fn full_range_covers_everything() {
        let r = HashRange::full();
        assert!(r.contains(0));
        assert!(r.contains(u64::MAX));
        assert_eq!(r.len(), 1u128 << 64);
    }

    #[test]
    fn split_tiles_exactly() {
        let r = HashRange::full();
        for d in [1usize, 2, 3, 4, 5, 7, 8, 16, 64] {
            let parts = r.split(d);
            assert_eq!(parts.len(), d);
            assert_eq!(parts[0].lo, 0);
            assert_eq!(parts[d - 1].hi, 1u128 << 64);
            for w in parts.windows(2) {
                assert_eq!(w[0].hi, w[1].lo, "gap or overlap at {w:?}");
            }
            let total: u128 = parts.iter().map(|p| p.len()).sum();
            assert_eq!(total, r.len());
        }
    }

    #[test]
    fn nested_split_is_consistent() {
        // Splitting 8 ways then each part 4 ways tiles like splitting 32 ways.
        let r = HashRange::full();
        let once = r.split(32);
        let nested: Vec<HashRange> = r.split(8).iter().flat_map(|p| p.split(4)).collect();
        assert_eq!(once, nested);
    }

    #[test]
    fn part_of_agrees_with_split() {
        let mut rng = Xoshiro256::new(21);
        for d in [2usize, 3, 8, 13] {
            let r = HashRange::full().split(5)[2]; // some interior range
            let parts = r.split(d);
            for _ in 0..2000 {
                let h = r.lo() as u128 + (rng.next_u64() as u128 % r.len());
                let h = h as u64;
                let want = parts.iter().position(|p| p.contains(h)).unwrap();
                assert_eq!(r.part_of(h, d), want, "hash {h}, d {d}");
            }
        }
    }

    #[test]
    fn empty_ranges_behave() {
        let r = HashRange::new(100, 100);
        assert!(r.is_empty());
        assert!(!r.contains(100));
        let parts = r.split(4);
        assert!(parts.iter().all(|p| p.is_empty()));
    }

    #[test]
    #[should_panic(expected = "bad range")]
    fn reversed_range_panics() {
        HashRange::new(10, 5);
    }
}
