//! Sorted, deduplicated sets of hashed feature indices.
//!
//! An [`IndexSet`] is the unit of Kylix's configuration pass: each node's
//! `in` and `out` feature sets are kept in `(hash, index)` order so that
//!
//! * splitting by hash range is two binary searches per boundary,
//! * unions of co-ranged sets are linear merges (see [`crate::merge`]),
//! * positions in the set index directly into the value vectors exchanged
//!   during reduction.

use crate::key::Key;
use crate::range::HashRange;

/// A sorted, deduplicated sequence of [`Key`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IndexSet {
    keys: Vec<Key>,
}

impl IndexSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from raw feature indices (hashes computed, sorted, deduped).
    pub fn from_indices(indices: impl IntoIterator<Item = u64>) -> Self {
        let mut keys: Vec<Key> = indices.into_iter().map(Key::new).collect();
        keys.sort_unstable();
        keys.dedup();
        Self { keys }
    }

    /// Build from keys that are already sorted and deduplicated.
    ///
    /// Panics in debug builds if the invariant does not hold.
    pub fn from_sorted_keys(keys: Vec<Key>) -> Self {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "keys not sorted/unique"
        );
        Self { keys }
    }

    /// Number of keys.
    #[inline]
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Is the set empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The sorted keys.
    #[inline]
    pub fn keys(&self) -> &[Key] {
        &self.keys
    }

    /// Consume into the sorted key vector.
    pub fn into_keys(self) -> Vec<Key> {
        self.keys
    }

    /// Iterate the original feature indices in set (hash) order.
    pub fn indices(&self) -> impl Iterator<Item = u64> + '_ {
        self.keys.iter().map(|k| k.index)
    }

    /// Binary-search the position of `key`.
    pub fn position(&self, key: Key) -> Option<usize> {
        self.keys.binary_search(&key).ok()
    }

    /// Does the set contain the feature index?
    pub fn contains_index(&self, index: u64) -> bool {
        self.position(Key::new(index)).is_some()
    }

    /// The position range `[start, end)` of keys whose hash lies in `range`.
    pub fn span_of(&self, range: &HashRange) -> std::ops::Range<usize> {
        let start = self
            .keys
            .partition_point(|k| (k.hash as u128) < range.lo() as u128);
        let end = self.keys.partition_point(|k| (k.hash as u128) < range.hi());
        start..end
    }

    /// Split the set into `d` contiguous slices, one per equal sub-range of
    /// `range`. The concatenation of the slices is exactly the whole set
    /// (assuming all keys lie within `range`, which the caller guarantees
    /// in the Kylix protocol).
    pub fn split_by_range<'a>(&'a self, range: &HashRange, d: usize) -> Vec<&'a [Key]> {
        let parts = range.split(d);
        let mut out = Vec::with_capacity(d);
        for p in &parts {
            out.push(&self.keys[self.span_of(p)]);
        }
        out
    }

    /// Check every key lies within `range` (protocol invariant; used by
    /// debug assertions and tests).
    pub fn all_within(&self, range: &HashRange) -> bool {
        self.keys.iter().all(|k| range.contains(k.hash))
    }
}

impl FromIterator<u64> for IndexSet {
    fn from_iter<T: IntoIterator<Item = u64>>(iter: T) -> Self {
        Self::from_indices(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::Xoshiro256;

    #[test]
    fn from_indices_sorts_and_dedups() {
        let s = IndexSet::from_indices([5u64, 1, 5, 9, 1, 1]);
        assert_eq!(s.len(), 3);
        assert!(s.keys().windows(2).all(|w| w[0] < w[1]));
        let mut idx: Vec<u64> = s.indices().collect();
        idx.sort_unstable();
        assert_eq!(idx, vec![1, 5, 9]);
    }

    #[test]
    fn contains_and_position() {
        let s = IndexSet::from_indices(0..100u64);
        for i in 0..100 {
            assert!(s.contains_index(i));
        }
        assert!(!s.contains_index(100));
        for (p, k) in s.keys().iter().enumerate() {
            assert_eq!(s.position(*k), Some(p));
        }
    }

    #[test]
    fn split_by_range_concatenates_to_whole() {
        let mut rng = Xoshiro256::new(17);
        let s = IndexSet::from_indices((0..5000).map(|_| rng.next_below(1_000_000)));
        for d in [1usize, 2, 3, 7, 16] {
            let parts = s.split_by_range(&HashRange::full(), d);
            let cat: Vec<Key> = parts.iter().flat_map(|p| p.iter().copied()).collect();
            assert_eq!(cat, s.keys(), "d={d}");
        }
    }

    #[test]
    fn split_parts_land_in_their_ranges() {
        let mut rng = Xoshiro256::new(19);
        let s = IndexSet::from_indices((0..2000).map(|_| rng.next_u64()));
        let ranges = HashRange::full().split(8);
        let parts = s.split_by_range(&HashRange::full(), 8);
        for (r, p) in ranges.iter().zip(&parts) {
            for k in *p {
                assert!(r.contains(k.hash));
            }
        }
    }

    #[test]
    fn power_law_indices_balance_across_ranges() {
        // Indices 0..n with Zipf-ish duplication collapse to 0..n distinct
        // keys; hashing must spread them evenly across 8 ranges.
        let s = IndexSet::from_indices(0..80_000u64);
        let parts = s.split_by_range(&HashRange::full(), 8);
        for p in &parts {
            let frac = p.len() as f64 / s.len() as f64;
            assert!((frac - 0.125).abs() < 0.01, "unbalanced: {}", p.len());
        }
    }

    #[test]
    fn span_of_empty_range_is_empty() {
        let s = IndexSet::from_indices(0..100u64);
        let r = HashRange::new(42, 42);
        assert!(s.span_of(&r).is_empty());
    }

    #[test]
    fn all_within_detects_outliers() {
        let s = IndexSet::from_indices([1u64, 2, 3]);
        assert!(s.all_within(&HashRange::full()));
        let tiny = HashRange::new(0, 1);
        assert!(!s.all_within(&tiny));
    }
}
