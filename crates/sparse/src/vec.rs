//! Sparse vectors: an index set paired with values, plus the
//! scatter/gather kernels that move values through position maps.
//!
//! During reduction (paper §III.B) the value buffers exchanged between
//! nodes are *positional*: a message carries the values of a contiguous
//! slice of the sender's sorted index set, and the receiver either
//! **scatter-adds** them into its union layout (down pass, map `f`) or
//! **gathers** a requested slice out of its layout (up pass, map `g`).
//! Keeping values positional means no index decoding in the hot loop —
//! one `map[p]` lookup per element, exactly the "constant time per
//! element" the paper claims for its maps.

use crate::index_set::IndexSet;
use crate::key::Key;
use crate::reducer::{Reducer, Scalar};

/// A sparse vector: sorted keys plus one value per key.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVec<V> {
    keys: IndexSet,
    vals: Vec<V>,
}

impl<V: Copy> SparseVec<V> {
    /// Build from `(index, value)` pairs; duplicate indices are combined
    /// with `reducer`.
    pub fn from_pairs<R: Reducer<V>>(
        pairs: impl IntoIterator<Item = (u64, V)>,
        reducer: R,
    ) -> Self {
        let mut kv: Vec<(Key, V)> = pairs.into_iter().map(|(i, v)| (Key::new(i), v)).collect();
        kv.sort_unstable_by_key(|(k, _)| *k);
        let mut keys = Vec::with_capacity(kv.len());
        let mut vals: Vec<V> = Vec::with_capacity(kv.len());
        for (k, v) in kv {
            if keys.last() == Some(&k) {
                let last = vals.last_mut().expect("vals tracks keys");
                reducer.combine(last, v);
            } else {
                keys.push(k);
                vals.push(v);
            }
        }
        Self {
            keys: IndexSet::from_sorted_keys(keys),
            vals,
        }
    }

    /// Pair an existing index set with a value per key (lengths must match).
    pub fn from_parts(keys: IndexSet, vals: Vec<V>) -> Self {
        assert_eq!(keys.len(), vals.len(), "keys/vals length mismatch");
        Self { keys, vals }
    }

    /// An all-`fill` vector over the given index set.
    pub fn filled(keys: IndexSet, fill: V) -> Self {
        let n = keys.len();
        Self {
            keys,
            vals: vec![fill; n],
        }
    }

    /// Number of stored (index, value) pairs.
    pub fn len(&self) -> usize {
        self.vals.len()
    }

    /// True when no pairs are stored.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
    }

    /// The sorted index set.
    pub fn keys(&self) -> &IndexSet {
        &self.keys
    }

    /// The values, positionally aligned with `keys()`.
    pub fn values(&self) -> &[V] {
        &self.vals
    }

    /// Mutable values.
    pub fn values_mut(&mut self) -> &mut [V] {
        &mut self.vals
    }

    /// Value at a feature index, if present.
    pub fn get(&self, index: u64) -> Option<V> {
        self.keys.position(Key::new(index)).map(|p| self.vals[p])
    }

    /// Iterate `(index, value)` pairs in key (hash) order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, V)> + '_ {
        self.keys.indices().zip(self.vals.iter().copied())
    }
}

/// Scatter-add `src` into `dst` through a position map:
/// `dst[map[p]] ⊕= src[p]` (paper's map `f`, down pass).
#[inline]
pub fn scatter_combine<V: Copy, R: Reducer<V>>(dst: &mut [V], src: &[V], map: &[u32], reducer: R) {
    debug_assert_eq!(src.len(), map.len());
    for (v, &p) in src.iter().zip(map) {
        reducer.combine(&mut dst[p as usize], *v);
    }
}

/// Scatter-combine straight from a little-endian wire body:
/// `dst[map[p]] ⊕= decode(raw[p])` — the down-pass hot loop fused with
/// decoding, so a received slice needs no intermediate `Vec<V>`.
/// `raw` must hold exactly `map.len()` packed `WIDTH`-byte scalars
/// (checked by the caller against the wire count).
#[inline]
pub fn scatter_combine_le<V: Scalar, R: Reducer<V>>(
    dst: &mut [V],
    raw: &[u8],
    map: &[u32],
    reducer: R,
) {
    debug_assert_eq!(raw.len(), map.len() * V::WIDTH);
    for (chunk, &p) in raw.chunks_exact(V::WIDTH).zip(map) {
        reducer.combine(&mut dst[p as usize], V::read_le(chunk));
    }
}

/// Decode a little-endian wire body straight into a value slice
/// (up-pass span rebuild without an intermediate `Vec<V>`). `raw` must
/// hold exactly `dst.len()` packed scalars.
#[inline]
pub fn copy_from_le<V: Scalar>(dst: &mut [V], raw: &[u8]) {
    debug_assert_eq!(raw.len(), dst.len() * V::WIDTH);
    for (d, chunk) in dst.iter_mut().zip(raw.chunks_exact(V::WIDTH)) {
        *d = V::read_le(chunk);
    }
}

/// Gather through a position map: `out[p] = src[map[p]]`
/// (paper's map `g`, up pass).
///
/// Allocates per call; hot paths use [`gather_into`] instead. Kept for
/// tests and one-shot callers.
#[doc(hidden)]
#[inline]
pub fn gather<V: Copy>(src: &[V], map: &[u32]) -> Vec<V> {
    map.iter().map(|&p| src[p as usize]).collect()
}

/// Gather into a caller-provided buffer (avoids per-message allocation in
/// hot loops).
#[inline]
pub fn gather_into<V: Copy>(src: &[V], map: &[u32], out: &mut Vec<V>) {
    out.clear();
    out.reserve(map.len());
    for &p in map {
        out.push(src[p as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::tree_merge;
    use crate::reducer::{MinReducer, SumReducer};

    #[test]
    fn from_pairs_combines_duplicates() {
        let v = SparseVec::from_pairs([(1u64, 2.0f64), (2, 3.0), (1, 5.0)], SumReducer);
        assert_eq!(v.len(), 2);
        assert_eq!(v.get(1), Some(7.0));
        assert_eq!(v.get(2), Some(3.0));
        assert_eq!(v.get(3), None);
    }

    #[test]
    fn from_pairs_with_min_reducer() {
        let v = SparseVec::from_pairs([(9u64, 5u64), (9, 2), (9, 8)], MinReducer);
        assert_eq!(v.get(9), Some(2));
    }

    #[test]
    fn filled_covers_all_keys() {
        let keys = IndexSet::from_indices([4u64, 5, 6]);
        let v = SparseVec::filled(keys, 1.0f64);
        assert!(v.iter().all(|(_, x)| x == 1.0));
        assert_eq!(v.len(), 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn from_parts_checks_lengths() {
        let keys = IndexSet::from_indices([1u64, 2]);
        let _ = SparseVec::from_parts(keys, vec![1.0f64]);
    }

    #[test]
    fn scatter_gather_round_trip_through_merge() {
        // Two overlapping sets; scatter both into the union; gather each
        // back and check shared entries accumulated.
        let a = IndexSet::from_indices([1u64, 2, 3]);
        let b = IndexSet::from_indices([3u64, 4]);
        let m = tree_merge(&[a.keys(), b.keys()]);
        let mut acc = vec![0.0f64; m.union.len()];
        scatter_combine(&mut acc, &[1.0, 1.0, 1.0], &m.maps[0], SumReducer);
        scatter_combine(&mut acc, &[2.0, 2.0], &m.maps[1], SumReducer);
        let back_a = gather(&acc, &m.maps[0]);
        // Positions of a = indices 1,2,3 in hash order; index 3 has 1+2.
        let idx3_pos = a.keys().iter().position(|k| k.index == 3).unwrap();
        assert_eq!(back_a[idx3_pos], 3.0);
        let total: f64 = acc.iter().sum();
        assert_eq!(total, 7.0);
    }

    #[test]
    fn scatter_combine_le_matches_decoded_path() {
        let src = [1.5f64, -2.25, 4.0];
        let raw: Vec<u8> = src.iter().flat_map(|v| v.to_le_bytes()).collect();
        let map = [2u32, 0, 2];
        let mut fused = vec![10.0f64; 3];
        scatter_combine_le(&mut fused, &raw, &map, SumReducer);
        let mut reference = vec![10.0f64; 3];
        scatter_combine(&mut reference, &src, &map, SumReducer);
        // Bit-identical: same combine order, same decoded values.
        for (a, b) in fused.iter().zip(&reference) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn copy_from_le_round_trips() {
        let src = [7u64, u64::MAX, 0];
        let raw: Vec<u8> = src.iter().flat_map(|v| v.to_le_bytes()).collect();
        let mut dst = [0u64; 3];
        copy_from_le(&mut dst, &raw);
        assert_eq!(dst, src);
    }

    #[test]
    fn gather_into_reuses_buffer() {
        let src = [10.0f64, 20.0, 30.0];
        let map = [2u32, 0];
        let mut buf = Vec::with_capacity(8);
        gather_into(&src, &map, &mut buf);
        assert_eq!(buf, vec![30.0, 10.0]);
        gather_into(&src, &[1u32], &mut buf);
        assert_eq!(buf, vec![20.0]);
    }

    #[test]
    fn iter_yields_hash_order() {
        let v = SparseVec::from_pairs([(5u64, 1.0f64), (6, 2.0), (7, 3.0)], SumReducer);
        let from_iter: Vec<(u64, f64)> = v.iter().collect();
        let expect: Vec<(u64, f64)> = v.keys().indices().map(|i| (i, v.get(i).unwrap())).collect();
        assert_eq!(from_iter, expect);
    }
}
