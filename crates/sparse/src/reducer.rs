//! Value types and reduction operators.
//!
//! A sparse allreduce is parameterised by the *element type* travelling
//! through the network and the *associative, commutative operator* that
//! collapses duplicate indices. PageRank sums `f64` contributions;
//! connected components takes the `min` of candidate labels; HADI-style
//! diameter estimation `OR`s Flajolet–Martin bitstrings. The traits here
//! keep the protocol generic over all of those without boxing.

use std::fmt::Debug;

/// A fixed-width value that can be framed into network messages.
///
/// Implementations must round-trip exactly through `to_le_bytes` /
/// `from_le_bytes`; the protocol ships raw little-endian buffers.
pub trait Scalar: Copy + Send + Sync + Debug + PartialEq + Default + 'static {
    /// Encoded width in bytes.
    const WIDTH: usize;
    /// Whether combining values of this type is sensitive to evaluation
    /// order (floating point: addition is not associative in `f32`/`f64`).
    /// Drives the default of the reduction's `deterministic` mode —
    /// order-sensitive scalars buffer out-of-order arrivals and combine
    /// in a fixed order so results stay bit-identical; exact integer
    /// types combine in arrival order immediately.
    const ORDER_SENSITIVE: bool;
    /// Append the little-endian encoding of `self` to `out`.
    fn write_le(&self, out: &mut Vec<u8>);
    /// Write the little-endian encoding into exactly `WIDTH` bytes
    /// (pooled send buffers that are not `Vec<u8>`-backed).
    fn write_le_slice(&self, out: &mut [u8]);
    /// Decode from exactly `WIDTH` bytes.
    fn read_le(bytes: &[u8]) -> Self;
}

macro_rules! impl_scalar {
    ($($t:ty => $sensitive:expr),*) => {$(
        impl Scalar for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();
            const ORDER_SENSITIVE: bool = $sensitive;
            #[inline]
            fn write_le(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn write_le_slice(&self, out: &mut [u8]) {
                out.copy_from_slice(&self.to_le_bytes());
            }
            #[inline]
            fn read_le(bytes: &[u8]) -> Self {
                <$t>::from_le_bytes(bytes.try_into().expect("scalar width"))
            }
        }
    )*};
}

impl_scalar!(f32 => true, f64 => true, u32 => false, u64 => false, i32 => false, i64 => false);

/// An associative, commutative reduction operator over `V` with an
/// identity element.
///
/// Associativity + commutativity are what let Kylix reduce in stages down
/// the butterfly and still produce the same totals as a flat reduction;
/// the property tests in `kylix` verify this end to end.
pub trait Reducer<V>: Copy + Send + Sync + 'static {
    /// The identity element (`0` for sum, `+inf` for min, …).
    fn identity(&self) -> V;
    /// Fold `b` into `a`.
    fn combine(&self, a: &mut V, b: V);
}

/// Sum reduction (the default for PageRank / SGD gradients).
#[derive(Debug, Clone, Copy, Default)]
pub struct SumReducer;

macro_rules! impl_sum {
    ($($t:ty => $zero:expr),*) => {$(
        impl Reducer<$t> for SumReducer {
            #[inline]
            fn identity(&self) -> $t { $zero }
            #[inline]
            fn combine(&self, a: &mut $t, b: $t) { *a += b; }
        }
    )*};
}
impl_sum!(f32 => 0.0, f64 => 0.0, u32 => 0, u64 => 0, i32 => 0, i64 => 0);

/// Minimum reduction (label propagation, shortest paths).
#[derive(Debug, Clone, Copy, Default)]
pub struct MinReducer;

macro_rules! impl_min {
    ($($t:ty => $id:expr),*) => {$(
        impl Reducer<$t> for MinReducer {
            #[inline]
            fn identity(&self) -> $t { $id }
            #[inline]
            fn combine(&self, a: &mut $t, b: $t) { if b < *a { *a = b; } }
        }
    )*};
}
impl_min!(f32 => f32::INFINITY, f64 => f64::INFINITY,
          u32 => u32::MAX, u64 => u64::MAX, i32 => i32::MAX, i64 => i64::MAX);

/// Maximum reduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxReducer;

macro_rules! impl_max {
    ($($t:ty => $id:expr),*) => {$(
        impl Reducer<$t> for MaxReducer {
            #[inline]
            fn identity(&self) -> $t { $id }
            #[inline]
            fn combine(&self, a: &mut $t, b: $t) { if b > *a { *a = b; } }
        }
    )*};
}
impl_max!(f32 => f32::NEG_INFINITY, f64 => f64::NEG_INFINITY,
          u32 => 0, u64 => 0, i32 => i32::MIN, i64 => i64::MIN);

/// Bitwise-OR reduction (Flajolet–Martin / HADI bitstrings).
#[derive(Debug, Clone, Copy, Default)]
pub struct BitOrReducer;

macro_rules! impl_or {
    ($($t:ty),*) => {$(
        impl Reducer<$t> for BitOrReducer {
            #[inline]
            fn identity(&self) -> $t { 0 }
            #[inline]
            fn combine(&self, a: &mut $t, b: $t) { *a |= b; }
        }
    )*};
}
impl_or!(u32, u64);

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<V: Scalar>(v: V) {
        let mut buf = Vec::new();
        v.write_le(&mut buf);
        assert_eq!(buf.len(), V::WIDTH);
        assert_eq!(V::read_le(&buf), v);
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(3.75f32);
        round_trip(-1.25e300f64);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(-42i32);
        round_trip(i64::MIN);
    }

    fn slice_matches_vec<V: Scalar>(v: V) {
        let mut via_vec = Vec::new();
        v.write_le(&mut via_vec);
        let mut via_slice = vec![0u8; V::WIDTH];
        v.write_le_slice(&mut via_slice);
        assert_eq!(via_vec, via_slice);
    }

    #[test]
    fn write_le_slice_matches_write_le() {
        slice_matches_vec(3.75f32);
        slice_matches_vec(-1.25e300f64);
        slice_matches_vec(0xDEAD_BEEFu32);
        slice_matches_vec(u64::MAX);
        slice_matches_vec(-42i32);
        slice_matches_vec(i64::MIN);
    }

    #[test]
    fn only_floats_are_order_sensitive() {
        fn sensitive<V: Scalar>() -> bool {
            V::ORDER_SENSITIVE
        }
        assert!(sensitive::<f32>());
        assert!(sensitive::<f64>());
        assert!(!sensitive::<u32>());
        assert!(!sensitive::<u64>());
        assert!(!sensitive::<i32>());
        assert!(!sensitive::<i64>());
    }

    #[test]
    fn sum_identity_and_combine() {
        let r = SumReducer;
        let mut a: f64 = r.identity();
        r.combine(&mut a, 2.0);
        r.combine(&mut a, 3.0);
        assert_eq!(a, 5.0);
    }

    #[test]
    fn min_max_identities_absorb() {
        let (mn, mx) = (MinReducer, MaxReducer);
        let mut a: u64 = Reducer::<u64>::identity(&mn);
        mn.combine(&mut a, 7);
        mn.combine(&mut a, 3);
        mn.combine(&mut a, 9);
        assert_eq!(a, 3);
        let mut b: i32 = Reducer::<i32>::identity(&mx);
        mx.combine(&mut b, -5);
        mx.combine(&mut b, 11);
        assert_eq!(b, 11);
    }

    #[test]
    fn bitor_unions_bits() {
        let r = BitOrReducer;
        let mut a: u64 = r.identity();
        r.combine(&mut a, 0b0011);
        r.combine(&mut a, 0b0110);
        assert_eq!(a, 0b0111);
    }

    #[test]
    fn reducers_are_commutative_and_associative() {
        let r = SumReducer;
        let vals = [1.5f64, -2.0, 7.25, 0.5];
        // (a+b)+c == a+(b+c), order-independent
        let mut left = r.identity();
        for v in vals {
            r.combine(&mut left, v);
        }
        let mut right = r.identity();
        for v in vals.iter().rev() {
            r.combine(&mut right, *v);
        }
        assert_eq!(left, right);
    }
}
