//! Hashing and deterministic pseudo-random number generation.
//!
//! Kylix partitions feature indices into equal *hash ranges* rather than
//! equal index ranges: power-law data concentrates mass on small indices,
//! so splitting the raw index space would be badly unbalanced. The paper
//! (§III.A) hashes the original indices to the values used for
//! partitioning; we use the splitmix64 finaliser, a full-period bijective
//! mixer with excellent avalanche behaviour and a handful of instructions
//! per key — cheap enough to recompute on the fly rather than ship over
//! the network.
//!
//! The PRNGs here ([`SplitMix64`], [`Xoshiro256`]) exist so that workload
//! generators and the network simulator are deterministic given a seed,
//! with no dependence on external crate version churn. Xoshiro256++ is the
//! same generator family the `rand` ecosystem uses for non-cryptographic
//! simulation work.

/// The splitmix64 finaliser: a bijective mixing of a 64-bit value.
///
/// Used to map feature indices into the 64-bit partitioning space. Being a
/// bijection, distinct indices never collide, so ordering sets by
/// `(mix64(idx), idx)` is a strict total order in which the first component
/// is uniformly distributed.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Inverse of [`mix64`]. Only used by tests to prove bijectivity and to
/// recover indices from hashes when debugging.
#[inline]
pub fn unmix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 31) ^ (x >> 62)).wrapping_mul(0x319642B2D24D8EC3);
    x = (x ^ (x >> 27) ^ (x >> 54)).wrapping_mul(0x96DE1B173F119089);
    x ^= x >> 30 ^ x >> 60;
    x.wrapping_sub(0x9E37_79B9_7F4A_7C15)
}

/// Mix several words into one 64-bit value. Handy for deriving per-edge or
/// per-message jitter deterministically from (seed, src, dst, seq).
#[inline]
pub fn mix_many(words: &[u64]) -> u64 {
    let mut acc = 0x243F_6A88_85A3_08D3u64; // pi digits, nothing up the sleeve
    for &w in words {
        acc = mix64(acc ^ w);
    }
    acc
}

/// SplitMix64 sequential generator. Mainly used to seed [`Xoshiro256`].
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workspace's workhorse PRNG.
///
/// Deterministic, fast, and of well-studied statistical quality; all
/// workload generators and simulator jitter draw from this so experiments
/// replay bit-identically from a seed.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed via SplitMix64 as recommended by the xoshiro authors.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Next 64 uniformly distributed bits (xoshiro256++ scrambler).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (unbiased).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "next_below(0)");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform usize in `[0, bound)`.
    #[inline]
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Standard normal deviate via Box–Muller (used for latency jitter).
    pub fn next_gaussian(&mut self) -> f64 {
        // Draw u in (0,1] to keep ln() finite.
        let u = 1.0 - self.next_f64();
        let v = self.next_f64();
        (-2.0 * u.ln()).sqrt() * (std::f64::consts::TAU * v).cos()
    }

    /// Exponential deviate with the given rate.
    pub fn next_exp(&mut self, rate: f64) -> f64 {
        let u = 1.0 - self.next_f64();
        -u.ln() / rate
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, data: &mut [T]) {
        for i in (1..data.len()).rev() {
            let j = self.next_index(i + 1);
            data.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_bijective_on_samples() {
        for x in [0u64, 1, 42, u64::MAX, 0xDEAD_BEEF, 1 << 63] {
            assert_eq!(unmix64(mix64(x)), x, "round trip failed for {x}");
        }
        let mut rng = Xoshiro256::new(7);
        for _ in 0..10_000 {
            let x = rng.next_u64();
            assert_eq!(unmix64(mix64(x)), x);
        }
    }

    #[test]
    fn mix64_distinct_inputs_distinct_outputs() {
        let mut seen = std::collections::HashSet::new();
        for x in 0..10_000u64 {
            assert!(seen.insert(mix64(x)), "collision at {x}");
        }
    }

    #[test]
    fn mix64_spreads_small_indices() {
        // Consecutive small indices (the power-law "head") must land in
        // different quarters of the hash space often enough to balance
        // 4-way partitions.
        let quarters: Vec<usize> = (0..1000u64).map(|x| (mix64(x) >> 62) as usize).collect();
        let mut counts = [0usize; 4];
        for q in quarters {
            counts[q] += 1;
        }
        for &c in &counts {
            assert!((150..=350).contains(&c), "unbalanced quarters: {counts:?}");
        }
    }

    #[test]
    fn xoshiro_is_deterministic() {
        let mut a = Xoshiro256::new(123);
        let mut b = Xoshiro256::new(123);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn xoshiro_differs_across_seeds() {
        let a: Vec<u64> = {
            let mut r = Xoshiro256::new(1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Xoshiro256::new(2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256::new(99);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_range_and_roughly_uniform() {
        let mut rng = Xoshiro256::new(5);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            let x = rng.next_below(10);
            assert!(x < 10);
            counts[x as usize] += 1;
        }
        for &c in &counts {
            assert!((9_000..=11_000).contains(&c), "nonuniform: {counts:?}");
        }
    }

    #[test]
    fn gaussian_mean_and_var_are_sane() {
        let mut rng = Xoshiro256::new(11);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.next_gaussian();
            sum += x;
            sq += x * x;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn exp_mean_matches_rate() {
        let mut rng = Xoshiro256::new(13);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| rng.next_exp(4.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256::new(3);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "shuffle did nothing");
    }

    #[test]
    fn mix_many_order_sensitive() {
        assert_ne!(mix_many(&[1, 2]), mix_many(&[2, 1]));
        assert_eq!(mix_many(&[1, 2]), mix_many(&[1, 2]));
    }
}
