//! Hashed feature keys.
//!
//! A [`Key`] pairs an application-level feature index with its splitmix64
//! hash. All Kylix index sets are sorted by `(hash, index)`:
//!
//! * the hash component spreads power-law heads uniformly across the
//!   partitioning space, so equal hash ranges ≈ equal expected load;
//! * the index component breaks ties (the hash is bijective so ties never
//!   actually occur between distinct indices, but keeping the index in the
//!   comparison makes the order a total order by construction and guards
//!   against a future non-bijective hash).
//!
//! Keys are 16 bytes and `Copy`; merge kernels move them by value.

use crate::hash::mix64;

/// A feature index tagged with its partitioning hash.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key {
    /// splitmix64 hash of `index` — the primary sort/partition component.
    pub hash: u64,
    /// The original application-level feature index.
    pub index: u64,
}

impl Key {
    /// Build a key from a raw feature index.
    #[inline]
    pub fn new(index: u64) -> Self {
        Self {
            hash: mix64(index),
            index,
        }
    }
}

impl From<u64> for Key {
    #[inline]
    fn from(index: u64) -> Self {
        Key::new(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_orders_by_hash_first() {
        // Find two indices whose hash order differs from index order.
        let a = Key::new(0);
        let b = Key::new(1);
        if a.hash < b.hash {
            assert!(a < b);
        } else {
            assert!(b < a);
        }
    }

    #[test]
    fn key_new_matches_mix64() {
        let k = Key::new(123456);
        assert_eq!(k.hash, mix64(123456));
        assert_eq!(k.index, 123456);
    }

    #[test]
    fn key_is_16_bytes() {
        assert_eq!(std::mem::size_of::<Key>(), 16);
    }

    #[test]
    fn from_u64_round_trip() {
        let k: Key = 42u64.into();
        assert_eq!(k, Key::new(42));
    }
}
