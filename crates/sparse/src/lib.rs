#![warn(missing_docs)]

//! # kylix-sparse
//!
//! Foundation data structures for the Kylix sparse allreduce
//! (Zhao & Canny, *Kylix: A Sparse Allreduce for Commodity Clusters*,
//! ICPP 2014).
//!
//! Everything in Kylix revolves around **sorted sparse index sets**: each
//! cluster node holds a set of feature indices (the non-zeros of its share
//! of a distributed vector) kept in a canonical order, and the network
//! protocol repeatedly *partitions* those sets into contiguous hash ranges,
//! *merges* sets arriving from butterfly neighbours, and *scatters/gathers*
//! value vectors through position maps built during the merge.
//!
//! This crate provides those primitives:
//!
//! * [`hash`] — the splitmix64 finaliser used to spread power-law keys
//!   uniformly over the partitioning space, plus a small deterministic
//!   PRNG ([`hash::SplitMix64`], [`hash::Xoshiro256`]) used throughout the
//!   workspace so every experiment is reproducible without external
//!   dependencies.
//! * [`key`] — [`key::Key`], an index tagged with its partition hash; sets
//!   are ordered by `(hash, index)` so equal-size *hash ranges* carry
//!   balanced load even on heavily skewed (power-law) index distributions
//!   (paper §III.A: "the original indices are hashed to the values used
//!   for partitioning").
//! * [`index_set`] — [`index_set::IndexSet`], a sorted, deduplicated set of
//!   keys with range splitting by binary search.
//! * [`merge`] — two-way and k-way **tree merge** kernels (paper §VI.A)
//!   producing the union together with the position maps `f`/`g` used for
//!   constant-time scatter-add and gather during reduction.
//! * [`range`] — contiguous half-open ranges of the 64-bit hash space and
//!   their equal subdivision, the basis of the nested partitioning.
//! * <code>vec</code> — [`vec::SparseVec`], an index set paired with values, plus
//!   the scatter/gather kernels driven by position maps.
//! * [`reducer`] — the [`reducer::Reducer`] trait (sum / min / max / or)
//!   and the [`reducer::Scalar`] byte-codec trait for values travelling
//!   through the network.

pub mod hash;
pub mod index_set;
pub mod key;
pub mod merge;
pub mod range;
pub mod reducer;
pub mod vec;

pub use hash::{mix64, mix_many, SplitMix64, Xoshiro256};
pub use index_set::IndexSet;
pub use key::Key;
pub use merge::{merge_union, tree_merge, MergeResult};
pub use range::HashRange;
pub use reducer::{BitOrReducer, MaxReducer, MinReducer, Reducer, Scalar, SumReducer};
pub use vec::SparseVec;
