//! Property tests on the foundation kernels: merges, splits, maps,
//! scatter/gather — the algebra the whole protocol rests on.

use kylix_sparse::merge::hash_union;
use kylix_sparse::vec::{gather, scatter_combine};
use kylix_sparse::{merge_union, mix64, tree_merge, HashRange, IndexSet, Key, SumReducer};
use proptest::prelude::*;

fn arb_indices(max_len: usize, universe: u64) -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0..universe, 0..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// tree_merge union == hash union for any sets; maps point at the
    /// right keys; unions are sorted and unique.
    #[test]
    fn tree_merge_is_correct_union(
        raw in prop::collection::vec(arb_indices(60, 300), 0..9)
    ) {
        let sets: Vec<Vec<Key>> = raw
            .iter()
            .map(|ids| IndexSet::from_indices(ids.iter().copied()).into_keys())
            .collect();
        let refs: Vec<&[Key]> = sets.iter().map(|s| s.as_slice()).collect();
        let r = tree_merge(&refs);
        prop_assert_eq!(&r.union, &hash_union(&refs));
        prop_assert!(r.union.windows(2).all(|w| w[0] < w[1]));
        for (set, map) in refs.iter().zip(&r.maps) {
            prop_assert_eq!(set.len(), map.len());
            for (k, &p) in set.iter().zip(map) {
                prop_assert_eq!(r.union[p as usize], *k);
            }
        }
    }

    /// Scatter-then-gather through merge maps is the identity on each
    /// input's positions when inputs are disjoint, and the sum of
    /// inputs at shared keys otherwise.
    #[test]
    fn scatter_gather_semantics(
        a_ids in arb_indices(50, 200),
        b_ids in arb_indices(50, 200),
    ) {
        let a = IndexSet::from_indices(a_ids.iter().copied()).into_keys();
        let b = IndexSet::from_indices(b_ids.iter().copied()).into_keys();
        let r = merge_union(&a, &b);
        let av: Vec<f64> = (0..a.len()).map(|i| i as f64 + 1.0).collect();
        let bv: Vec<f64> = (0..b.len()).map(|i| (i as f64 + 1.0) * 100.0).collect();
        let mut acc = vec![0.0f64; r.union.len()];
        scatter_combine(&mut acc, &av, &r.maps[0], SumReducer);
        scatter_combine(&mut acc, &bv, &r.maps[1], SumReducer);
        let back_a = gather(&acc, &r.maps[0]);
        for (i, k) in a.iter().enumerate() {
            let b_share = b
                .iter()
                .position(|bk| bk == k)
                .map_or(0.0, |j| bv[j]);
            prop_assert_eq!(back_a[i], av[i] + b_share);
        }
    }

    /// Range splitting at any depth is a partition: every key lands in
    /// exactly one part, parts are ordered, concatenation is identity.
    #[test]
    fn split_partitions_any_set(
        ids in arb_indices(200, 1_000_000),
        d in 1usize..12,
    ) {
        let set = IndexSet::from_indices(ids.iter().copied());
        let parts = set.split_by_range(&HashRange::full(), d);
        let cat: Vec<Key> = parts.iter().flat_map(|p| p.iter().copied()).collect();
        prop_assert_eq!(cat, set.keys().to_vec());
        let ranges = HashRange::full().split(d);
        for (r, p) in ranges.iter().zip(&parts) {
            for k in *p {
                prop_assert!(r.contains(k.hash));
            }
        }
    }

    /// part_of agrees with split membership for every key.
    #[test]
    fn part_of_matches_split(h in any::<u64>(), d in 1usize..10) {
        let full = HashRange::full();
        let idx = full.part_of(h, d);
        let parts = full.split(d);
        prop_assert!(parts[idx].contains(h));
    }

    /// mix64 stays bijective on arbitrary samples.
    #[test]
    fn mix64_injective_on_sample(xs in prop::collection::hash_set(any::<u64>(), 0..200)) {
        let hashed: std::collections::HashSet<u64> = xs.iter().map(|&x| mix64(x)).collect();
        prop_assert_eq!(hashed.len(), xs.len());
    }

    /// IndexSet construction is canonical: order and duplicates in the
    /// input don't matter.
    #[test]
    fn index_set_is_canonical(mut ids in arb_indices(100, 500)) {
        let a = IndexSet::from_indices(ids.iter().copied());
        ids.reverse();
        ids.extend(ids.clone()); // duplicates
        let b = IndexSet::from_indices(ids.iter().copied());
        prop_assert_eq!(a, b);
    }
}
