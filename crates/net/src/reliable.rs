//! Reliable delivery over an unreliable substrate: [`ReliableComm`].
//!
//! The commodity-cluster links Kylix targets lose, duplicate, reorder
//! and damage packets. Replication (§V) absorbs *node* loss; this
//! wrapper absorbs *message* loss, so an unreplicated butterfly
//! completes over lossy links and a replicated one survives crash+loss
//! combined. The mechanism is classic ARQ:
//!
//! * every payload travels in a checksummed frame carrying a
//!   per-`(destination, tag)` sequence number;
//! * the receiver acknowledges every data frame (including duplicates —
//!   the first ack may have been lost) and delivers in sequence order,
//!   parking out-of-order arrivals;
//! * the sender retransmits unacknowledged frames on an exponential
//!   backoff schedule, up to a bounded attempt count;
//! * frames that fail their checksum are silently discarded —
//!   retransmission recovers them, so *corruption becomes loss*.
//!
//! The wrapper drives its substrate exclusively through
//! [`RawComm::recv_raw_timeout`], because it must see acks from any
//! peer while the protocol above it waits on one specific message.
//! All ranks of a cluster must wrap identically: a `ReliableComm`
//! speaks only to other `ReliableComm`s.
//!
//! Because retransmission scheduling runs on *wall* time even over the
//! virtual-time simulator, runs that actually lose messages are not
//! virtual-time-deterministic — see `DESIGN.md` ("Fault model") for
//! the determinism contract.

use crate::comm::{Comm, CommError, RawComm, RawMessage};
use crate::fault::checksum;
use crate::tag::Tag;
use bytes::Bytes;
use kylix_telemetry::{Counter, RankTelemetry};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::time::{Duration, Instant};

const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;
/// Frame layout: `[kind u8][seq u32 LE][payload…][crc u64 LE]`, crc
/// over everything before it.
const HEADER_LEN: usize = 5;
const CRC_LEN: usize = 8;

/// Retransmission parameters.
#[derive(Debug, Clone, Copy)]
pub struct RetryConfig {
    /// Delay before the first retransmission.
    pub base: Duration,
    /// Upper bound on the (doubling) retransmission delay.
    pub cap: Duration,
    /// Total send attempts per frame before giving up on it.
    pub max_attempts: u32,
    /// How long [`ReliableComm::flush`] keeps answering peers'
    /// retransmits after its own sends are all acknowledged.
    pub linger: Duration,
}

impl Default for RetryConfig {
    fn default() -> Self {
        // `max_attempts` is sized so that a *live* peer is effectively
        // never abandoned: even at 25% loss + 10% corruption each way,
        // thirty attempts fail with probability ~1e-7. Abandoning a
        // frame to a live peer would permanently stall its in-order
        // stream, so the budget errs far on the side of patience; a
        // genuinely dead peer still costs only ~1.5s of backoff.
        // `linger` must comfortably exceed `cap`: a peer whose final
        // ack was lost retransmits at most every `cap`, and flush may
        // only declare the link quiet after several such periods have
        // passed silently — otherwise the fast rank exits before the
        // slow rank's next retransmit and the tail is never repaired.
        Self {
            base: Duration::from_millis(3),
            cap: Duration::from_millis(48),
            max_attempts: 30,
            linger: Duration::from_millis(150),
        }
    }
}

/// Counters of what the reliability layer did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliableStats {
    /// Data frames sent (first transmissions).
    pub data_sent: u64,
    /// Retransmitted data frames.
    pub retransmits: u64,
    /// Acks sent.
    pub acks_sent: u64,
    /// Duplicate data frames suppressed (re-acked, not re-delivered).
    pub duplicates_dropped: u64,
    /// Frames discarded for checksum failure.
    pub corrupt_dropped: u64,
    /// Frames abandoned after `max_attempts` (peer presumed dead).
    pub gave_up: u64,
}

struct Pending {
    to: usize,
    tag: Tag,
    seq: u32,
    frame: Bytes,
    attempts: u32,
    due: Instant,
}

/// Per-`(peer, tag)` receive stream state.
#[derive(Default)]
struct RecvStream {
    /// Next sequence number to deliver.
    expected: u32,
    /// Arrived ahead of sequence.
    parked: BTreeMap<u32, Bytes>,
    /// In-order payloads not yet consumed by the protocol.
    ready: VecDeque<Bytes>,
}

/// Cap on remembered not-yet-arrived discards (see `ThreadComm`).
const MAX_PENDING_DISCARDS: usize = 1024;

/// Acked, retransmitting, duplicate-suppressing communicator wrapper.
pub struct ReliableComm<C: RawComm> {
    inner: C,
    cfg: RetryConfig,
    /// Next sequence number per outgoing `(to, tag)` stream.
    send_seq: HashMap<(usize, Tag), u32>,
    /// Sent-but-unacknowledged frames, in send order.
    unacked: VecDeque<Pending>,
    streams: HashMap<(usize, Tag), RecvStream>,
    pending_discards: HashMap<(usize, Tag), u32>,
    discard_order: VecDeque<(usize, Tag)>,
    stats: ReliableStats,
}

impl<C: RawComm> ReliableComm<C> {
    /// Wrap `inner` with default retransmission parameters.
    pub fn new(inner: C) -> Self {
        Self::with_config(inner, RetryConfig::default())
    }

    /// Wrap `inner` with explicit retransmission parameters.
    pub fn with_config(inner: C, cfg: RetryConfig) -> Self {
        Self {
            inner,
            cfg,
            send_seq: HashMap::new(),
            unacked: VecDeque::new(),
            streams: HashMap::new(),
            pending_discards: HashMap::new(),
            discard_order: VecDeque::new(),
            stats: ReliableStats::default(),
        }
    }

    /// The reliability counters so far.
    pub fn stats(&self) -> ReliableStats {
        self.stats
    }

    /// Number of sent frames still awaiting acknowledgement.
    pub fn unacked_len(&self) -> usize {
        self.unacked.len()
    }

    /// Unwrap the inner communicator. Pending retransmission state is
    /// dropped; call [`ReliableComm::flush`] first for a clean handoff.
    pub fn into_inner(self) -> C {
        self.inner
    }

    fn frame(kind: u8, seq: u32, payload: &[u8]) -> Bytes {
        let mut buf = Vec::with_capacity(HEADER_LEN + payload.len() + CRC_LEN);
        buf.push(kind);
        buf.extend_from_slice(&seq.to_le_bytes());
        buf.extend_from_slice(payload);
        let crc = checksum(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
        Bytes::from(buf)
    }

    /// Parse and verify a frame; `None` if damaged or not a frame.
    fn open_frame(buf: &Bytes) -> Option<(u8, u32, Bytes)> {
        if buf.len() < HEADER_LEN + CRC_LEN {
            return None;
        }
        let body_len = buf.len() - CRC_LEN;
        let mut crc_bytes = [0u8; 8];
        crc_bytes.copy_from_slice(&buf[body_len..]);
        if u64::from_le_bytes(crc_bytes) != checksum(&buf[..body_len]) {
            return None;
        }
        let kind = buf[0];
        if kind != KIND_DATA && kind != KIND_ACK {
            return None;
        }
        let mut seq_bytes = [0u8; 4];
        seq_bytes.copy_from_slice(&buf[1..5]);
        let seq = u32::from_le_bytes(seq_bytes);
        Some((kind, seq, buf.slice(HEADER_LEN..body_len)))
    }

    /// Mirror one reliability event into the substrate's telemetry
    /// shard (if any), keyed by the protocol tag it concerns.
    #[inline]
    fn tel_bump(&self, tag: Tag, kind: Counter) {
        if let Some(t) = self.inner.telemetry() {
            t.add(tag.phase(), tag.layer(), kind, 1);
        }
    }

    fn send_ack(&mut self, to: usize, tag: Tag, seq: u32) {
        let frame = Self::frame(KIND_ACK, seq, &[]);
        self.tel_bump(tag, Counter::AcksSent);
        self.inner.send(to, tag, frame);
        self.stats.acks_sent += 1;
    }

    fn consume_pending_discard(&mut self, src: usize, tag: Tag) -> bool {
        match self.pending_discards.get_mut(&(src, tag)) {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    self.pending_discards.remove(&(src, tag));
                }
                true
            }
            None => false,
        }
    }

    /// Process one arrival from the substrate. Returns `true` if it was
    /// a valid frame (progress happened).
    fn handle_frame(&mut self, msg: RawMessage) -> bool {
        let Some((kind, seq, payload)) = Self::open_frame(&msg.payload) else {
            self.tel_bump(msg.tag, Counter::CorruptRejects);
            self.stats.corrupt_dropped += 1;
            return false;
        };
        match kind {
            KIND_ACK => {
                if let Some(i) = self
                    .unacked
                    .iter()
                    .position(|p| p.to == msg.src && p.tag == msg.tag && p.seq == seq)
                {
                    self.unacked.remove(i);
                }
            }
            _ => {
                // Data. Ack unconditionally: a duplicate means our
                // previous ack was lost (or the link duplicated).
                self.send_ack(msg.src, msg.tag, seq);
                let stream = self.streams.entry((msg.src, msg.tag)).or_default();
                if seq < stream.expected || stream.parked.contains_key(&seq) {
                    self.tel_bump(msg.tag, Counter::DupesDropped);
                    self.stats.duplicates_dropped += 1;
                } else {
                    stream.parked.insert(seq, payload);
                    // Promote the in-sequence prefix to deliverable.
                    let key = (msg.src, msg.tag);
                    loop {
                        let stream = self.streams.get_mut(&key).expect("stream exists");
                        let Some(p) = stream.parked.remove(&stream.expected) else {
                            break;
                        };
                        stream.expected = stream.expected.wrapping_add(1);
                        if !self.consume_pending_discard(key.0, key.1) {
                            self.streams
                                .get_mut(&key)
                                .expect("stream exists")
                                .ready
                                .push_back(p);
                        }
                    }
                }
            }
        }
        true
    }

    /// Retransmit whatever is due, then wait up to `max_wait` for one
    /// arrival and process it. The workhorse behind every receive.
    fn pump(&mut self, max_wait: Duration) -> Result<(), CommError> {
        let now = Instant::now();
        let mut next_due: Option<Instant> = None;
        let mut retransmit = Vec::new();
        let mut i = 0;
        while i < self.unacked.len() {
            let p = &mut self.unacked[i];
            if p.due <= now {
                if p.attempts >= self.cfg.max_attempts {
                    // Peer presumed dead; stop burning the link.
                    let tag = p.tag;
                    self.stats.gave_up += 1;
                    self.unacked.remove(i);
                    self.tel_bump(tag, Counter::GaveUp);
                    continue;
                }
                p.attempts += 1;
                let backoff = self
                    .cfg
                    .base
                    .saturating_mul(1u32 << (p.attempts - 1).min(16))
                    .min(self.cfg.cap);
                p.due = now + backoff;
                retransmit.push((p.to, p.tag, p.frame.clone()));
                self.stats.retransmits += 1;
            }
            next_due = Some(next_due.map_or(self.unacked[i].due, |d| d.min(self.unacked[i].due)));
            i += 1;
        }
        for (to, tag, frame) in retransmit {
            self.tel_bump(tag, Counter::Retransmits);
            self.inner.send(to, tag, frame);
        }
        // Sleep no longer than the earliest retransmission deadline.
        let wait = match next_due {
            Some(d) => d.saturating_duration_since(now).min(max_wait),
            None => max_wait,
        };
        if let Some(msg) = self.inner.recv_raw_timeout(wait)? {
            self.handle_frame(msg);
        }
        Ok(())
    }

    /// Drive retransmission until every sent frame is acknowledged (or
    /// abandoned after `max_attempts`), then keep answering peers'
    /// retransmits until the link has been quiet for the configured
    /// linger. Call once per rank after its last collective op — this
    /// closes the "last message" window where a peer's lost final frame
    /// could otherwise never be repaired.
    pub fn flush(&mut self) -> Result<ReliableStats, CommError> {
        while !self.unacked.is_empty() {
            self.pump(Duration::from_millis(5))?;
        }
        let mut quiet_since = Instant::now();
        while quiet_since.elapsed() < self.cfg.linger {
            let before = self.stats;
            self.pump(Duration::from_millis(5))?;
            if self.stats != before || !self.unacked.is_empty() {
                quiet_since = Instant::now();
                while !self.unacked.is_empty() {
                    self.pump(Duration::from_millis(5))?;
                }
            }
        }
        Ok(self.stats)
    }

    fn take_ready(&mut self, from: usize, tag: Tag) -> Option<Bytes> {
        let stream = self.streams.get_mut(&(from, tag))?;
        stream.ready.pop_front()
    }
}

impl<C: RawComm> Comm for ReliableComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&mut self, to: usize, tag: Tag, payload: Bytes) {
        let seq_ref = self.send_seq.entry((to, tag)).or_insert(0);
        let seq = *seq_ref;
        *seq_ref = seq.wrapping_add(1);
        let frame = Self::frame(KIND_DATA, seq, &payload);
        self.inner.send(to, tag, frame.clone());
        self.stats.data_sent += 1;
        self.unacked.push_back(Pending {
            to,
            tag,
            seq,
            frame,
            attempts: 1,
            due: Instant::now() + self.cfg.base,
        });
    }

    fn recv_timeout(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Bytes, CommError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(p) = self.take_ready(from, tag) {
                return Ok(p);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CommError::Timeout { from, tag });
            }
            self.pump(remaining.min(Duration::from_millis(25)))?;
        }
    }

    fn recv_any_timeout(
        &mut self,
        sources: &[usize],
        tag: Tag,
        timeout: Duration,
    ) -> Result<(usize, Bytes), CommError> {
        let deadline = Instant::now() + timeout;
        loop {
            for &s in sources {
                if let Some(p) = self.take_ready(s, tag) {
                    return Ok((s, p));
                }
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CommError::TimeoutAny {
                    sources: sources.to_vec(),
                    tag,
                });
            }
            self.pump(remaining.min(Duration::from_millis(25)))?;
        }
    }

    fn discard(&mut self, sources: &[usize], tag: Tag) {
        for &s in sources {
            if self.take_ready(s, tag).is_some() {
                continue;
            }
            let n = self.pending_discards.entry((s, tag)).or_insert(0);
            if *n == 0 {
                self.discard_order.push_back((s, tag));
            }
            *n += 1;
        }
        while self.pending_discards.len() > MAX_PENDING_DISCARDS {
            match self.discard_order.pop_front() {
                Some(key) => {
                    self.pending_discards.remove(&key);
                }
                None => break,
            }
        }
    }

    fn now(&self) -> f64 {
        self.inner.now()
    }

    fn charge_compute(&mut self, seconds: f64) {
        self.inner.charge_compute(seconds);
    }

    fn note_traffic(&mut self, layer: u16, bytes: usize) {
        self.inner.note_traffic(layer, bytes);
    }

    fn telemetry(&self) -> Option<&RankTelemetry> {
        self.inner.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{ChaosComm, FaultPlan};
    use crate::tag::Phase;
    use crate::thread_comm::ThreadComm;
    use std::thread;

    fn tag(seq: u32) -> Tag {
        Tag::new(Phase::App, 0, seq)
    }

    #[test]
    fn frame_round_trip_and_corruption_rejection() {
        let f = ReliableComm::<ThreadComm>::frame(KIND_DATA, 41, b"payload");
        let (kind, seq, payload) = ReliableComm::<ThreadComm>::open_frame(&f).expect("valid frame");
        assert_eq!(kind, KIND_DATA);
        assert_eq!(seq, 41);
        assert_eq!(&payload[..], b"payload");
        let mut damaged = f.to_vec();
        damaged[6] ^= 0x01;
        assert!(ReliableComm::<ThreadComm>::open_frame(&Bytes::from(damaged)).is_none());
    }

    #[test]
    fn lossless_round_trip() {
        let comms = ThreadComm::make_cluster(2);
        let out: Vec<u64> = thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|c| {
                    s.spawn(move || {
                        let mut r = ReliableComm::new(c);
                        let peer = 1 - r.rank();
                        for i in 0..20u32 {
                            r.send(peer, tag(i), Bytes::from(vec![i as u8]));
                        }
                        let mut sum = 0u64;
                        for i in 0..20u32 {
                            sum += r.recv(peer, tag(i)).unwrap()[0] as u64;
                        }
                        r.flush().unwrap();
                        sum
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(out, vec![190, 190]);
    }

    #[test]
    fn survives_heavy_loss_duplication_and_corruption() {
        let comms = ThreadComm::make_cluster(2);
        let plan = FaultPlan::new(77)
            .drop_rate(0.25)
            .duplicate_rate(0.1)
            .corrupt_rate(0.1)
            .delay_rate(0.1);
        let out: Vec<(u64, ReliableStats)> = thread::scope(|s| {
            let plan = &plan;
            let handles: Vec<_> = comms
                .into_iter()
                .map(|c| {
                    s.spawn(move || {
                        let mut r = ReliableComm::new(ChaosComm::new(c, plan.clone()));
                        let peer = 1 - r.rank();
                        for i in 0..50u32 {
                            r.send(peer, tag(0), Bytes::from(vec![i as u8]));
                        }
                        let mut sum = 0u64;
                        for _ in 0..50u32 {
                            // Same tag: sequence numbers must restore
                            // FIFO despite loss + reordering.
                            sum += r.recv(peer, tag(0)).unwrap()[0] as u64;
                        }
                        let stats = r.flush().unwrap();
                        (sum, stats)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let expect: u64 = (0..50u64).sum();
        for (sum, _stats) in &out {
            // Delivery is what matters: every payload arrived intact and
            // in order. (A tail `gave_up` on a final *ack* after the
            // peer exited is benign and timing-dependent, so it is not
            // asserted.)
            assert_eq!(*sum, expect);
        }
        let total_retx: u64 = out.iter().map(|(_, s)| s.retransmits).sum();
        assert!(total_retx > 0, "25% loss must force retransmissions");
    }

    #[test]
    fn in_order_delivery_per_stream() {
        let comms = ThreadComm::make_cluster(2);
        let plan = FaultPlan::new(3).delay_rate(0.5);
        let out: Vec<Vec<u8>> = thread::scope(|s| {
            let plan = &plan;
            let handles: Vec<_> = comms
                .into_iter()
                .map(|c| {
                    s.spawn(move || {
                        let mut r = ReliableComm::new(ChaosComm::new(c, plan.clone()));
                        let peer = 1 - r.rank();
                        for i in 0..30u8 {
                            r.send(peer, tag(0), Bytes::from(vec![i]));
                        }
                        let mut got = Vec::new();
                        for _ in 0..30 {
                            got.push(r.recv(peer, tag(0)).unwrap()[0]);
                        }
                        r.flush().unwrap();
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for got in out {
            assert_eq!(got, (0..30u8).collect::<Vec<_>>(), "FIFO restored");
        }
    }

    #[test]
    fn gives_up_on_dead_peer_without_hanging() {
        let mut comms = ThreadComm::make_cluster(2);
        drop(comms.pop().unwrap()); // rank 1 dead
        let mut r = ReliableComm::with_config(
            comms.pop().unwrap(),
            RetryConfig {
                base: Duration::from_millis(1),
                cap: Duration::from_millis(4),
                max_attempts: 3,
                linger: Duration::from_millis(5),
            },
        );
        r.send(1, tag(0), Bytes::from_static(b"anyone there?"));
        let stats = r.flush().unwrap();
        assert_eq!(stats.gave_up, 1);
        assert_eq!(r.unacked_len(), 0);
    }
}
