//! Real-socket communicator: one rank per thread over loopback TCP.
//!
//! The paper runs Kylix on a real 64-node EC2 cluster over commodity
//! Ethernet (§VII); the in-process [`crate::ThreadComm`] and the
//! virtual-time simulator reproduce the *protocol* but never touch an
//! OS network stack, so framing, torn reads, kernel buffering, and
//! connection teardown go unexercised. `TcpComm` closes that gap: the
//! same [`Comm`]/[`RawComm`] contract, but every inter-rank message
//! crosses a real TCP socket as a length-prefixed frame
//! (see [`crate::frame`]).
//!
//! ### Threading model
//!
//! Each endpoint owns, per remote peer, one **writer thread** draining
//! an unbounded frame queue into the outgoing socket — so
//! [`Comm::send`] keeps the fire-and-forget, never-blocking semantics
//! of the other substrates regardless of kernel buffer backpressure —
//! and one **reader thread** reassembling frames from the incoming
//! socket. All readers funnel into a single per-endpoint event channel,
//! which feeds exactly the same stash / pending-discard / `recv_any`
//! machinery as `ThreadComm`; the protocol above cannot tell the
//! substrates apart (the three-way differential tests pin this).
//! Self-addressed sends loop back through the funnel directly, skipping
//! the socket layer just as `ThreadComm` skips the wire — send-side
//! telemetry accounting is identical on all substrates.
//!
//! ### Connection lifecycle
//!
//! [`TcpCluster::make_cluster`] builds the full `m × (m−1)` directed
//! mesh up front: each ordered pair gets one connection, carrying
//! traffic in one direction only, identified by an 8-byte
//! `[magic, src-rank]` handshake. Dropping an endpoint closes its
//! write sides (peers' readers see EOF) and shuts down its read sides
//! (its own readers unblock), then joins every worker thread — `Drop`
//! is deterministic and leak-free. A peer's death is *observable*:
//! once the incoming connection from rank `p` is gone and nothing from
//! `p` remains stashed, a selective receive from `p` fails fast with
//! [`CommError::Closed`] instead of burning its full timeout, and a
//! framing violation on the link surfaces [`CommError::Corrupt`].
//! [`RawComm::recv_raw_timeout`] deliberately keeps reporting silence
//! as `Ok(None)` (not `Closed`): the reliability layer's retransmit /
//! linger loops treat peer silence as loss, and must keep servicing
//! *other* live links after one peer exits.

use crate::comm::{Comm, CommError, RawComm, RawMessage};
use crate::frame::{encode_frame, FrameDecoder};
use crate::tag::Tag;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use kylix_telemetry::{Counter, RankTelemetry, Telemetry};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Connection-handshake magic: "KYLX".
const HELLO_MAGIC: u32 = 0x4B59_4C58;

/// Caps shared with `ThreadComm` (same stash GC discipline).
const MAX_PENDING_DISCARDS: usize = 1024;
const MAX_SPARE_QUEUES: usize = 32;

/// Socket read granularity for the reader threads.
const READ_CHUNK: usize = 64 * 1024;

/// One parsed arrival.
#[derive(Debug)]
struct Envelope {
    src: usize,
    tag: Tag,
    payload: Bytes,
}

/// What a reader thread can report into the funnel.
#[derive(Debug)]
enum Event {
    /// A complete frame from the wire (or a self-addressed loopback).
    Msg(Envelope),
    /// The incoming connection from `src` closed (EOF or socket error):
    /// the peer is gone and will never speak again.
    Eof { src: usize },
    /// The incoming connection from `src` violated framing (oversized /
    /// undersized length prefix): the stream cannot be resynchronised.
    Corrupt { src: usize },
}

/// A rank's endpoint in a loopback-TCP cluster. See the module docs for
/// the threading and lifecycle model.
pub struct TcpComm {
    rank: usize,
    size: usize,
    /// Per-destination frame queues feeding the writer threads. `None`
    /// at our own index (self-sends loop back through `self_tx`) and
    /// after `Drop` started.
    writers: Vec<Option<Sender<Bytes>>>,
    /// Loopback sender for self-addressed messages.
    self_tx: Sender<Event>,
    /// The single reader funnel.
    rx: Receiver<Event>,
    /// Clones of the incoming sockets, kept so `Drop` can shut down
    /// their read sides and unblock the reader threads.
    incoming: Vec<Option<TcpStream>>,
    /// Reader + writer threads, joined on `Drop`.
    workers: Vec<JoinHandle<()>>,
    /// Whether the incoming connection from each peer is still open.
    /// Own index stays `true` (the loopback cannot die separately).
    peer_open: Vec<bool>,
    /// Peers whose incoming stream violated framing.
    peer_corrupt: Vec<bool>,
    /// Messages that arrived before the protocol asked for them.
    stash: HashMap<(usize, Tag), VecDeque<Bytes>>,
    /// Discards registered before the matching message arrived.
    pending_discards: HashMap<(usize, Tag), u32>,
    discard_order: VecDeque<(usize, Tag)>,
    spare_queues: Vec<VecDeque<Bytes>>,
    shard: Option<Arc<RankTelemetry>>,
    epoch: Instant,
}

/// Entry points for building and running loopback-TCP clusters.
///
/// Mirrors [`crate::LocalCluster`]: `run*` spawns one OS thread per
/// rank, hands each its [`TcpComm`] endpoint, and collects per-rank
/// results; `make_cluster*` returns the endpoints for callers that
/// manage their own threads.
pub struct TcpCluster;

impl TcpCluster {
    /// Build the full set of endpoints for an `m`-rank cluster wired
    /// over loopback TCP. Panics if sockets cannot be bound or the mesh
    /// cannot be established (loopback connectivity is a precondition,
    /// not a tolerated fault).
    pub fn make_cluster(m: usize) -> Vec<TcpComm> {
        Self::build_cluster(m, None)
    }

    /// [`TcpCluster::make_cluster`] with a telemetry shard attached to
    /// each endpoint (wall-clock flavour — pair with
    /// `Telemetry::new(m, Clock::Wall)`).
    pub fn make_cluster_with_telemetry(m: usize, tel: &Telemetry) -> Vec<TcpComm> {
        assert!(
            tel.len() >= m,
            "telemetry has {} rank shards, cluster needs {m}",
            tel.len()
        );
        Self::build_cluster(m, Some(tel))
    }

    /// Run `f(rank's comm)` on `m` concurrent node threads over real
    /// loopback sockets; returns each rank's result, indexed by rank.
    pub fn run<R, F>(m: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(TcpComm) -> R + Sync,
    {
        let comms = Self::make_cluster(m);
        std::thread::scope(|s| {
            let handles: Vec<_> = comms.into_iter().map(|comm| s.spawn(|| f(comm))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        })
    }

    /// [`TcpCluster::run`] with a telemetry instance attached.
    pub fn run_with_telemetry<R, F>(m: usize, tel: &Telemetry, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(TcpComm) -> R + Sync,
    {
        let comms = Self::make_cluster_with_telemetry(m, tel);
        std::thread::scope(|s| {
            let handles: Vec<_> = comms.into_iter().map(|comm| s.spawn(|| f(comm))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        })
    }

    /// Run every rank behind a [`crate::ChaosComm`] applying `plan` —
    /// seeded drop/dup/corrupt/delay and mid-run crashes injected
    /// *above* the real sockets, exactly as
    /// [`crate::LocalCluster::run_with_faults`] injects them above the
    /// in-process channels.
    pub fn run_with_faults<R, F>(m: usize, plan: &crate::fault::FaultPlan, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(crate::fault::ChaosComm<TcpComm>) -> R + Sync,
    {
        let comms = Self::make_cluster(m);
        std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| s.spawn(|| f(crate::fault::ChaosComm::new(comm, plan.clone()))))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        })
    }

    fn build_cluster(m: usize, tel: Option<&Telemetry>) -> Vec<TcpComm> {
        assert!(m > 0, "cluster must have at least one rank");
        // One listener per rank, ephemeral loopback ports.
        let listeners: Vec<TcpListener> = (0..m)
            .map(|r| {
                TcpListener::bind("127.0.0.1:0")
                    .unwrap_or_else(|e| panic!("rank {r}: cannot bind loopback listener: {e}"))
            })
            .collect();
        let addrs: Vec<SocketAddr> = listeners
            .iter()
            .map(|l| l.local_addr().expect("listener has a local addr"))
            .collect();

        // One funnel per rank.
        let mut funnel_txs = Vec::with_capacity(m);
        let mut funnel_rxs = Vec::with_capacity(m);
        for _ in 0..m {
            let (tx, rx) = unbounded();
            funnel_txs.push(tx);
            funnel_rxs.push(rx);
        }

        // Accept side: each rank's acceptor collects its m-1 incoming
        // connections, identifies the sender from the handshake, and
        // spawns the per-connection reader thread.
        type Accepted = Vec<(usize, TcpStream, JoinHandle<()>)>;
        let acceptors: Vec<JoinHandle<Accepted>> = listeners
            .into_iter()
            .enumerate()
            .map(|(dst, listener)| {
                let tx = funnel_txs[dst].clone();
                std::thread::spawn(move || {
                    let mut conns = Vec::with_capacity(m - 1);
                    for _ in 0..m - 1 {
                        let (mut stream, _) = listener
                            .accept()
                            .unwrap_or_else(|e| panic!("rank {dst}: accept failed: {e}"));
                        stream.set_nodelay(true).ok();
                        let mut hello = [0u8; 8];
                        stream
                            .read_exact(&mut hello)
                            .unwrap_or_else(|e| panic!("rank {dst}: handshake read: {e}"));
                        let magic = u32::from_le_bytes(hello[..4].try_into().unwrap());
                        assert_eq!(magic, HELLO_MAGIC, "rank {dst}: bad handshake magic");
                        let src = u32::from_le_bytes(hello[4..].try_into().unwrap()) as usize;
                        assert!(src < m, "rank {dst}: handshake from bogus rank {src}");
                        let read_half = stream
                            .try_clone()
                            .expect("clone incoming stream for reader");
                        let tx = tx.clone();
                        let reader = std::thread::spawn(move || reader_loop(src, read_half, tx));
                        conns.push((src, stream, reader));
                    }
                    conns
                })
            })
            .collect();

        // Connect side: the directed mesh, one connection per ordered
        // pair, introduced by the handshake. The writer threads spawn
        // here; their queues are what `send` pushes into.
        let mut writer_txs: Vec<Vec<Option<Sender<Bytes>>>> =
            (0..m).map(|_| (0..m).map(|_| None).collect()).collect();
        let mut writer_handles: Vec<Vec<JoinHandle<()>>> = (0..m).map(|_| Vec::new()).collect();
        for src in 0..m {
            for dst in 0..m {
                if dst == src {
                    continue;
                }
                let mut stream = TcpStream::connect(addrs[dst])
                    .unwrap_or_else(|e| panic!("connect {src} -> {dst}: {e}"));
                stream.set_nodelay(true).ok();
                let mut hello = [0u8; 8];
                hello[..4].copy_from_slice(&HELLO_MAGIC.to_le_bytes());
                hello[4..].copy_from_slice(&(src as u32).to_le_bytes());
                stream
                    .write_all(&hello)
                    .unwrap_or_else(|e| panic!("handshake {src} -> {dst}: {e}"));
                let (tx, rx) = unbounded::<Bytes>();
                writer_txs[src][dst] = Some(tx);
                writer_handles[src].push(std::thread::spawn(move || writer_loop(rx, stream)));
            }
        }

        // Collect the accept side, routing each rank's incoming stream
        // clones and reader handles back to its endpoint.
        let mut incoming: Vec<Vec<Option<TcpStream>>> =
            (0..m).map(|_| (0..m).map(|_| None).collect()).collect();
        let mut reader_handles: Vec<Vec<JoinHandle<()>>> = (0..m).map(|_| Vec::new()).collect();
        for (dst, acceptor) in acceptors.into_iter().enumerate() {
            for (src, stream, reader) in acceptor.join().expect("acceptor thread panicked") {
                assert!(
                    incoming[dst][src].is_none(),
                    "duplicate connection {src} -> {dst}"
                );
                incoming[dst][src] = Some(stream);
                reader_handles[dst].push(reader);
            }
        }

        let epoch = Instant::now();
        let mut endpoints = Vec::with_capacity(m);
        for rank in 0..m {
            let mut workers = std::mem::take(&mut writer_handles[rank]);
            workers.append(&mut reader_handles[rank]);
            endpoints.push(TcpComm {
                rank,
                size: m,
                writers: std::mem::take(&mut writer_txs[rank]),
                self_tx: funnel_txs[rank].clone(),
                rx: funnel_rxs.remove(0),
                incoming: std::mem::take(&mut incoming[rank]),
                workers,
                peer_open: vec![true; m],
                peer_corrupt: vec![false; m],
                stash: HashMap::new(),
                pending_discards: HashMap::new(),
                discard_order: VecDeque::new(),
                spare_queues: Vec::new(),
                shard: tel.map(|t| Arc::clone(t.rank(rank))),
                epoch,
            });
        }
        endpoints
    }
}

/// Reader thread: reassemble frames, funnel them, report EOF / framing
/// violations, exit.
fn reader_loop(src: usize, mut stream: TcpStream, tx: Sender<Event>) {
    let mut dec = FrameDecoder::new();
    let mut buf = vec![0u8; READ_CHUNK];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => {
                let _ = tx.send(Event::Eof { src });
                return;
            }
            Ok(n) => {
                dec.push(&buf[..n]);
                loop {
                    match dec.next_frame() {
                        Ok(Some((tag, payload))) => {
                            let _ = tx.send(Event::Msg(Envelope { src, tag, payload }));
                        }
                        Ok(None) => break,
                        Err(_) => {
                            // Unrecoverable framing violation: surface
                            // it, tear the connection down.
                            let _ = tx.send(Event::Corrupt { src });
                            let _ = stream.shutdown(Shutdown::Both);
                            return;
                        }
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            // A reset/abort from a dying peer is the same as EOF for
            // the protocol: the peer stopped talking.
            Err(_) => {
                let _ = tx.send(Event::Eof { src });
                return;
            }
        }
    }
}

/// Writer thread: drain the frame queue into the socket; on queue close
/// flush and half-close so the peer's reader sees a clean EOF; on write
/// error (peer died) swallow the rest — sends to dead ranks are dropped
/// silently, like every other substrate.
fn writer_loop(rx: Receiver<Bytes>, mut stream: TcpStream) {
    let mut broken = false;
    // Loop ends when the endpoint drops the sender: queue is drained.
    while let Ok(frame) = rx.recv() {
        if !broken && stream.write_all(&frame).is_err() {
            broken = true;
        }
    }
    if !broken {
        let _ = stream.flush();
    }
    let _ = stream.shutdown(Shutdown::Write);
}

impl TcpComm {
    /// Count one message delivered to (or discarded on behalf of) the
    /// protocol above; pairs with send-side accounting for the
    /// conservation tests.
    #[inline]
    fn record_recv(&self, tag: Tag, bytes: usize) {
        if let Some(t) = &self.shard {
            t.add(tag.phase(), tag.layer(), Counter::BytesRecv, bytes as u64);
            t.add(tag.phase(), tag.layer(), Counter::MsgsRecv, 1);
        }
    }

    /// Route one arrival: either it satisfies a pending discard and is
    /// dropped, or it joins the stash (same policy as `ThreadComm`).
    fn accept_envelope(&mut self, env: Envelope) {
        if self.consume_pending_discard(env.src, env.tag) {
            self.record_recv(env.tag, env.payload.len());
            return;
        }
        if let Some(t) = &self.shard {
            t.add(env.tag.phase(), env.tag.layer(), Counter::StashParks, 1);
        }
        self.stash
            .entry((env.src, env.tag))
            .or_insert_with(|| self.spare_queues.pop().unwrap_or_default())
            .push_back(env.payload);
    }

    /// Apply one funnel event to endpoint state.
    fn apply(&mut self, ev: Event) {
        match ev {
            Event::Msg(env) => self.accept_envelope(env),
            Event::Eof { src } => self.peer_open[src] = false,
            Event::Corrupt { src } => {
                self.peer_corrupt[src] = true;
                self.peer_open[src] = false;
            }
        }
    }

    fn consume_pending_discard(&mut self, src: usize, tag: Tag) -> bool {
        match self.pending_discards.get_mut(&(src, tag)) {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    self.pending_discards.remove(&(src, tag));
                }
                true
            }
            None => false,
        }
    }

    /// Pull everything currently in the funnel into the stash.
    fn drain_events(&mut self) {
        while let Ok(ev) = self.rx.try_recv() {
            self.apply(ev);
        }
    }

    fn take_stashed(&mut self, from: usize, tag: Tag) -> Option<Bytes> {
        let q = self.stash.get_mut(&(from, tag))?;
        let payload = q.pop_front();
        if q.is_empty() {
            let q = self.stash.remove(&(from, tag)).expect("entry exists");
            if self.spare_queues.len() < MAX_SPARE_QUEUES {
                self.spare_queues.push(q);
            }
        }
        if let Some(p) = &payload {
            self.record_recv(tag, p.len());
        }
        payload
    }

    /// Fail-fast check for a selective receive from `from`: `Some(err)`
    /// once nothing from `from` can ever arrive again.
    fn dead_peer_error(&self, from: usize, tag: Tag) -> Option<CommError> {
        if from == self.rank {
            return None;
        }
        if self.peer_corrupt[from] {
            return Some(CommError::Corrupt { from, tag });
        }
        if !self.peer_open[from] {
            return Some(CommError::Closed);
        }
        None
    }

    /// Number of messages currently held in the out-of-order stash.
    pub fn stash_len(&self) -> usize {
        self.stash.values().map(|q| q.len()).sum()
    }

    /// Number of registered not-yet-arrived discards.
    pub fn pending_discard_len(&self) -> usize {
        self.pending_discards.values().map(|&n| n as usize).sum()
    }

    /// Whether the incoming connection from `peer` is still open.
    pub fn peer_alive(&self, peer: usize) -> bool {
        self.peer_open[peer]
    }
}

impl Comm for TcpComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, to: usize, tag: Tag, payload: Bytes) {
        debug_assert!(to < self.size, "rank {to} out of range");
        // Send-side accounting counts *payload* bytes at the send call,
        // before peer liveness is known — the identical accounting
        // point and unit as ThreadComm and the simulator, so the
        // three-way differential tests can demand exact equality.
        // Framing overhead is a wire detail below the telemetry line.
        if let Some(t) = &self.shard {
            t.add(
                tag.phase(),
                tag.layer(),
                Counter::BytesSent,
                payload.len() as u64,
            );
            t.add(tag.phase(), tag.layer(), Counter::MsgsSent, 1);
        }
        if to == self.rank {
            let _ = self.self_tx.send(Event::Msg(Envelope {
                src: to,
                tag,
                payload,
            }));
            return;
        }
        let frame = encode_frame(tag, &payload);
        // A closed queue means the writer already shut down (endpoint
        // mid-drop); a broken socket is swallowed inside the writer.
        // Either way: a send to a dead rank vanishes, by contract.
        if let Some(tx) = &self.writers[to] {
            let _ = tx.send(frame);
        }
    }

    fn recv_timeout(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Bytes, CommError> {
        let deadline = Instant::now() + timeout;
        loop {
            self.drain_events();
            if let Some(p) = self.take_stashed(from, tag) {
                return Ok(p);
            }
            // Only after the stash is known empty may peer death
            // fail the call: messages sent before the EOF were
            // funnelled before it (per-connection FIFO).
            if let Some(err) = self.dead_peer_error(from, tag) {
                return Err(err);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                // Direct delivery fast path, as in ThreadComm: the
                // stash for this key was just checked empty.
                Ok(Event::Msg(env)) if env.src == from && env.tag == tag => {
                    self.record_recv(env.tag, env.payload.len());
                    if !self.consume_pending_discard(env.src, env.tag) {
                        return Ok(env.payload);
                    }
                }
                Ok(ev) => self.apply(ev),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CommError::Timeout { from, tag });
                }
                Err(RecvTimeoutError::Disconnected) => return Err(CommError::Closed),
            }
        }
    }

    fn recv_any_timeout(
        &mut self,
        sources: &[usize],
        tag: Tag,
        timeout: Duration,
    ) -> Result<(usize, Bytes), CommError> {
        let deadline = Instant::now() + timeout;
        loop {
            self.drain_events();
            for &s in sources {
                if let Some(p) = self.take_stashed(s, tag) {
                    return Ok((s, p));
                }
            }
            // The race can only fail fast once EVERY candidate is gone;
            // one live candidate keeps it waiting. Corruption wins over
            // plain closure in the report, being the stronger signal.
            if !sources.is_empty()
                && sources
                    .iter()
                    .all(|&s| self.dead_peer_error(s, tag).is_some())
            {
                let corrupt = sources.iter().find(|&&s| self.peer_corrupt[s]);
                return Err(match corrupt {
                    Some(&s) => CommError::Corrupt { from: s, tag },
                    None => CommError::Closed,
                });
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(Event::Msg(env)) if env.tag == tag && sources.contains(&env.src) => {
                    self.record_recv(env.tag, env.payload.len());
                    if !self.consume_pending_discard(env.src, env.tag) {
                        return Ok((env.src, env.payload));
                    }
                }
                Ok(ev) => self.apply(ev),
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CommError::TimeoutAny {
                        sources: sources.to_vec(),
                        tag,
                    });
                }
                Err(RecvTimeoutError::Disconnected) => return Err(CommError::Closed),
            }
        }
    }

    fn discard(&mut self, sources: &[usize], tag: Tag) {
        self.drain_events();
        for &s in sources {
            if self.take_stashed(s, tag).is_some() {
                continue;
            }
            let n = self.pending_discards.entry((s, tag)).or_insert(0);
            if *n == 0 {
                self.discard_order.push_back((s, tag));
            }
            *n += 1;
        }
        while self.pending_discards.len() > MAX_PENDING_DISCARDS {
            match self.discard_order.pop_front() {
                Some(key) => {
                    self.pending_discards.remove(&key);
                }
                None => break,
            }
        }
    }

    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    fn telemetry(&self) -> Option<&RankTelemetry> {
        self.shard.as_deref()
    }
}

impl RawComm for TcpComm {
    fn recv_raw_timeout(&mut self, timeout: Duration) -> Result<Option<RawMessage>, CommError> {
        let deadline = Instant::now() + timeout;
        loop {
            self.drain_events();
            // Deterministic pick: smallest (src, tag) with a stashed
            // message, FIFO within a key — identical to ThreadComm.
            if let Some(&(src, tag)) = self.stash.keys().min_by_key(|&&(s, t)| (s, t.raw())) {
                let payload = self.take_stashed(src, tag).expect("nonempty stash entry");
                return Ok(Some(RawMessage { src, tag, payload }));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(ev) => self.apply(ev),
                // Silence — even from an all-dead peer set — is a
                // timeout, not an error: the reliability layer above
                // treats it as loss and keeps its own schedule.
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => return Err(CommError::Closed),
            }
        }
    }
}

impl Drop for TcpComm {
    fn drop(&mut self) {
        // 1. Close the writer queues: writer threads drain whatever is
        //    still buffered, flush, half-close (peers see clean EOF).
        for w in &mut self.writers {
            *w = None;
        }
        // 2. Unblock our reader threads: shut down the read sides.
        //    Peers that already exited closed these sockets themselves;
        //    errors here are expected and ignored.
        for s in self.incoming.iter().flatten() {
            let _ = s.shutdown(Shutdown::Both);
        }
        // 3. Join every worker: after (1) and (2) all of them terminate
        //    promptly, so an endpoint drop never leaks threads or
        //    sockets. Ordering matters: writers were signalled first,
        //    so a peer blocked on our traffic receives it before the
        //    EOF, and only then do we wait.
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
impl TcpComm {
    /// Test-only hook: queue raw bytes on the wire to `to`, bypassing
    /// the frame encoder — the only way to present the peer's decoder
    /// with a hostile length prefix over a real socket.
    fn inject_raw_wire_bytes(&self, to: usize, bytes: &[u8]) {
        if let Some(tx) = &self.writers[to] {
            let _ = tx.send(Bytes::from(bytes.to_vec()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::DEFAULT_TIMEOUT;
    use crate::tag::Phase;
    use std::thread;

    fn tag(layer: u16, seq: u32) -> Tag {
        Tag::new(Phase::App, layer, seq)
    }

    /// Short patience for tests that expect failure.
    const SHORT: Duration = Duration::from_millis(200);

    #[test]
    fn ping_pong_over_real_sockets() {
        let mut comms = TcpCluster::make_cluster(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        thread::scope(|s| {
            s.spawn(move || {
                c0.send(1, tag(0, 0), Bytes::from_static(b"ping"));
                let r = c0.recv(1, tag(0, 1)).unwrap();
                assert_eq!(&r[..], b"pong");
            });
            s.spawn(move || {
                let r = c1.recv(0, tag(0, 0)).unwrap();
                assert_eq!(&r[..], b"ping");
                c1.send(0, tag(0, 1), Bytes::from_static(b"pong"));
            });
        });
    }

    #[test]
    fn out_of_order_selective_receive() {
        let mut comms = TcpCluster::make_cluster(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        c0.send(1, tag(0, 0), Bytes::from_static(b"a"));
        c0.send(1, tag(0, 1), Bytes::from_static(b"b"));
        c0.send(1, tag(0, 2), Bytes::from_static(b"c"));
        assert_eq!(&c1.recv(0, tag(0, 2)).unwrap()[..], b"c");
        assert_eq!(&c1.recv(0, tag(0, 1)).unwrap()[..], b"b");
        assert_eq!(&c1.recv(0, tag(0, 0)).unwrap()[..], b"a");
    }

    #[test]
    fn same_tag_messages_keep_fifo_order() {
        let mut comms = TcpCluster::make_cluster(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        for i in 0..50u8 {
            c0.send(1, tag(0, 0), Bytes::from(vec![i]));
        }
        for i in 0..50u8 {
            assert_eq!(c1.recv(0, tag(0, 0)).unwrap()[0], i);
        }
    }

    #[test]
    fn self_send_loops_back_without_a_socket() {
        let mut comms = TcpCluster::make_cluster(2);
        let mut c0 = comms.remove(0);
        c0.send(0, tag(1, 0), Bytes::from_static(b"me"));
        assert_eq!(&c0.recv(0, tag(1, 0)).unwrap()[..], b"me");
    }

    #[test]
    fn single_rank_cluster_works() {
        let mut comms = TcpCluster::make_cluster(1);
        let mut c0 = comms.pop().unwrap();
        c0.send(0, tag(0, 0), Bytes::from_static(b"solo"));
        assert_eq!(&c0.recv(0, tag(0, 0)).unwrap()[..], b"solo");
    }

    #[test]
    fn recv_any_returns_first_available() {
        let mut comms = TcpCluster::make_cluster(3);
        let mut c2 = comms.pop().unwrap();
        let mut c1 = comms.pop().unwrap();
        let _c0 = comms.pop().unwrap();
        c1.send(2, tag(1, 0), Bytes::from_static(b"from1"));
        let (src, payload) = c2.recv_any(&[0, 1], tag(1, 0)).unwrap();
        assert_eq!(src, 1);
        assert_eq!(&payload[..], b"from1");
    }

    #[test]
    fn timeout_on_silent_live_peer() {
        let mut comms = TcpCluster::make_cluster(2);
        let mut c1 = comms.remove(1);
        let err = c1.recv_timeout(0, tag(0, 0), SHORT).unwrap_err();
        assert!(matches!(err, CommError::Timeout { from: 0, .. }));
    }

    #[test]
    fn large_payload_crosses_in_torn_chunks() {
        // Bigger than any single kernel read: exercises reassembly.
        let big: Vec<u8> = (0..3 * READ_CHUNK).map(|i| (i % 251) as u8).collect();
        let expect = big.clone();
        let mut comms = TcpCluster::make_cluster(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        thread::scope(|s| {
            s.spawn(move || c0.send(1, tag(0, 0), Bytes::from(big)));
            s.spawn(move || {
                let r = c1.recv(0, tag(0, 0)).unwrap();
                assert_eq!(r.len(), expect.len());
                assert_eq!(&r[..], &expect[..]);
            });
        });
    }

    #[test]
    fn all_to_all_exchange() {
        let m = 6;
        let comms = TcpCluster::make_cluster(m);
        let results: Vec<Vec<u8>> = thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut c| {
                    s.spawn(move || {
                        let me = c.rank() as u8;
                        for to in 0..m {
                            c.send(to, tag(0, 0), Bytes::from(vec![me]));
                        }
                        let mut got = Vec::new();
                        for from in 0..m {
                            got.push(c.recv(from, tag(0, 0)).unwrap()[0]);
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in results {
            assert_eq!(r, (0..m as u8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn send_to_dead_rank_is_dropped_silently() {
        let mut comms = TcpCluster::make_cluster(2);
        let dead = comms.pop().unwrap();
        drop(dead);
        let mut c0 = comms.pop().unwrap();
        c0.send(1, tag(0, 0), Bytes::from_static(b"into the void"));
        // Survival is the assertion.
    }

    #[test]
    fn peer_death_surfaces_closed_not_hang() {
        let mut comms = TcpCluster::make_cluster(2);
        let dead = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        drop(dead); // rank 1 exits before ever speaking
        let start = Instant::now();
        let err = c0.recv_timeout(1, tag(0, 0), DEFAULT_TIMEOUT).unwrap_err();
        assert_eq!(err, CommError::Closed, "dead peer must fail fast");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "must not burn the 60 s default timeout"
        );
    }

    #[test]
    fn messages_sent_before_death_still_deliver() {
        let mut comms = TcpCluster::make_cluster(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        c0.send(1, tag(0, 0), Bytes::from_static(b"parting gift"));
        drop(c0); // flushes, then EOF
        assert_eq!(&c1.recv(0, tag(0, 0)).unwrap()[..], b"parting gift");
        // Now the peer is known dead and nothing is stashed.
        let err = c1.recv_timeout(0, tag(0, 1), DEFAULT_TIMEOUT).unwrap_err();
        assert_eq!(err, CommError::Closed);
    }

    #[test]
    fn recv_any_with_all_sources_dead_is_closed() {
        let mut comms = TcpCluster::make_cluster(3);
        let mut c2 = comms.pop().unwrap();
        drop(comms); // ranks 0 and 1 both exit
        let start = Instant::now();
        let err = c2
            .recv_any_timeout(&[0, 1], tag(0, 0), DEFAULT_TIMEOUT)
            .unwrap_err();
        assert_eq!(err, CommError::Closed);
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn recv_any_with_one_live_source_keeps_racing() {
        let mut comms = TcpCluster::make_cluster(3);
        let mut c2 = comms.pop().unwrap();
        let mut c1 = comms.pop().unwrap();
        drop(comms.pop().unwrap()); // rank 0 dead
        thread::scope(|s| {
            s.spawn(move || {
                thread::sleep(Duration::from_millis(50));
                c1.send(2, tag(0, 0), Bytes::from_static(b"late but alive"));
            });
            let (src, p) = c2.recv_any(&[0, 1], tag(0, 0)).unwrap();
            assert_eq!(src, 1);
            assert_eq!(&p[..], b"late but alive");
        });
    }

    #[test]
    fn hostile_length_prefix_yields_corrupt_error() {
        // A hostile/buggy peer declares a ~4 GiB frame. The victim must
        // answer Corrupt — without allocating the claimed body and
        // without burning a full timeout. The bad prefix goes under the
        // encoder via the test-only raw-wire hook: the writer queue
        // carries opaque byte blobs, so a blob that is not a valid
        // frame desynchronises the stream exactly like in-flight
        // corruption of a length word would.
        let mut comms = TcpCluster::make_cluster(2);
        let mut c1 = comms.pop().unwrap();
        let c0 = comms.pop().unwrap();
        c0.inject_raw_wire_bytes(1, &u32::MAX.to_le_bytes());
        let err = c1.recv_timeout(0, tag(0, 0), Duration::from_secs(10));
        assert!(
            matches!(err, Err(CommError::Corrupt { from: 0, .. })),
            "oversized prefix must surface Corrupt, got {err:?}"
        );
        drop(c0);
    }

    #[test]
    fn drop_joins_all_worker_threads() {
        // Dropping every endpoint must terminate promptly — no leaked
        // reader blocked in read(), no writer waiting on its queue.
        let comms = TcpCluster::make_cluster(4);
        let start = Instant::now();
        drop(comms);
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "drop must join workers promptly: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn drop_order_is_arbitrary_and_clean() {
        // Tear endpoints down in a hostile order, with traffic in
        // flight; every Drop must still return.
        let mut comms = TcpCluster::make_cluster(4);
        for c in comms.iter_mut() {
            for to in 0..4 {
                c.send(to, tag(0, 0), Bytes::from_static(b"inflight"));
            }
        }
        let start = Instant::now();
        drop(comms.remove(2));
        drop(comms.remove(0));
        drop(comms);
        assert!(start.elapsed() < Duration::from_secs(5));
    }

    #[test]
    fn discard_removes_stashed_copy_and_future_arrival() {
        let mut comms = TcpCluster::make_cluster(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        c1.discard(&[0], tag(0, 7));
        c0.send(1, tag(0, 7), Bytes::from_static(b"late loser"));
        c0.send(1, tag(0, 8), Bytes::from_static(b"keeper"));
        assert_eq!(&c1.recv(0, tag(0, 8)).unwrap()[..], b"keeper");
        assert!(c1.recv_timeout(0, tag(0, 7), SHORT).is_err());
        assert_eq!(c1.stash_len(), 0);
        assert_eq!(c1.pending_discard_len(), 0);
    }

    #[test]
    fn raw_recv_yields_anything_and_times_out_as_none() {
        let mut comms = TcpCluster::make_cluster(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        c0.send(1, tag(3, 9), Bytes::from_static(b"raw"));
        let msg = c1
            .recv_raw_timeout(Duration::from_secs(10))
            .unwrap()
            .expect("message");
        assert_eq!(msg.src, 0);
        assert_eq!(msg.tag, tag(3, 9));
        assert_eq!(&msg.payload[..], b"raw");
        assert!(c1.recv_raw_timeout(SHORT).unwrap().is_none());
        // Raw receive stays timeout-shaped (not Closed) after peer
        // death, by contract with the reliability layer.
        drop(c0);
        assert!(c1.recv_raw_timeout(SHORT).unwrap().is_none());
    }

    #[test]
    fn telemetry_counts_match_thread_substrate_semantics() {
        use kylix_telemetry::Clock;
        let tel = Telemetry::new(2, Clock::Wall);
        let mut comms = TcpCluster::make_cluster_with_telemetry(2, &tel);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        c0.send(1, tag(2, 0), Bytes::from_static(b"abc"));
        c0.send(1, tag(2, 1), Bytes::from_static(b"defgh"));
        assert_eq!(&c1.recv(0, tag(2, 1)).unwrap()[..], b"defgh");
        assert_eq!(&c1.recv(0, tag(2, 0)).unwrap()[..], b"abc");
        c0.note_traffic(2, 7);
        let rep = tel.report();
        let app = Phase::App as u8;
        // Payload bytes, not framed bytes: identical to ThreadComm.
        assert_eq!(rep.ranks[0].get(app, 2, Counter::BytesSent), 8);
        assert_eq!(rep.ranks[0].get(app, 2, Counter::MsgsSent), 2);
        assert_eq!(rep.ranks[1].get(app, 2, Counter::BytesRecv), 8);
        assert_eq!(rep.ranks[1].get(app, 2, Counter::MsgsRecv), 2);
        assert_eq!(
            rep.ranks[0].get(kylix_telemetry::SELF_PHASE, 2, Counter::BytesSent),
            7
        );
        assert_eq!(rep.on_layer(2, Counter::BytesSent), 15);
    }

    #[test]
    fn cluster_runner_collects_in_rank_order() {
        let out = TcpCluster::run(5, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40]);
    }

    #[test]
    fn now_is_monotone_wall_clock() {
        let comms = TcpCluster::make_cluster(1);
        let a = comms[0].now();
        let b = comms[0].now();
        assert!(b >= a);
    }
}
