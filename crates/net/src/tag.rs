//! Message tags.
//!
//! Kylix's protocol interleaves several logical streams between the same
//! pair of nodes — configuration messages, down-pass reduction values,
//! up-pass gathered values, application payloads — and replication adds
//! duplicate copies of each. A [`Tag`] identifies the stream so receivers
//! can *selectively* receive: `(phase, layer, seq)` packs into one `u64`.

/// Protocol phase of a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Phase {
    /// Configuration pass (index sets travelling down).
    Config = 0,
    /// Reduction down pass (values being scatter-reduced).
    ReduceDown = 1,
    /// Reduction up pass (values being gathered back).
    ReduceUp = 2,
    /// Combined configuration+reduction messages (minibatch mode).
    Combined = 3,
    /// Application-level traffic.
    App = 4,
    /// Control traffic (barriers, handshakes).
    Control = 5,
}

/// A message tag: `(phase, layer, seq)` packed into 64 bits.
///
/// `layer` is the butterfly communication layer (or any app-chosen
/// sub-channel), `seq` a free-running sequence number distinguishing
/// successive collective operations on the same channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tag(u64);

impl Tag {
    /// Pack a tag.
    #[inline]
    pub fn new(phase: Phase, layer: u16, seq: u32) -> Self {
        Tag(((phase as u64) << 48) | ((layer as u64) << 32) | seq as u64)
    }

    /// The phase component.
    #[inline]
    pub fn phase(&self) -> u8 {
        (self.0 >> 48) as u8
    }

    /// The layer component.
    #[inline]
    pub fn layer(&self) -> u16 {
        (self.0 >> 32) as u16
    }

    /// The sequence component.
    #[inline]
    pub fn seq(&self) -> u32 {
        self.0 as u32
    }

    /// The raw packed value.
    #[inline]
    pub fn raw(&self) -> u64 {
        self.0
    }

    /// Rebuild a tag from its packed value (the wire form used by the
    /// TCP substrate's frame codec). Inverse of [`Tag::raw`].
    #[inline]
    pub fn from_raw(raw: u64) -> Self {
        Tag(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_round_trip() {
        let t = Tag::new(Phase::ReduceUp, 7, 123456);
        assert_eq!(t.phase(), Phase::ReduceUp as u8);
        assert_eq!(t.layer(), 7);
        assert_eq!(t.seq(), 123456);
    }

    #[test]
    fn distinct_fields_distinct_tags() {
        let a = Tag::new(Phase::Config, 1, 0);
        let b = Tag::new(Phase::Config, 2, 0);
        let c = Tag::new(Phase::Config, 1, 1);
        let d = Tag::new(Phase::ReduceDown, 1, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn raw_round_trip() {
        let t = Tag::new(Phase::App, 9, 77);
        assert_eq!(Tag::from_raw(t.raw()), t);
    }

    #[test]
    fn extremes_fit() {
        let t = Tag::new(Phase::Control, u16::MAX, u32::MAX);
        assert_eq!(t.layer(), u16::MAX);
        assert_eq!(t.seq(), u32::MAX);
        assert_eq!(t.phase(), Phase::Control as u8);
    }
}
