//! Real in-process communicator: one mailbox per rank over crossbeam
//! channels.
//!
//! Matches the paper's implementation philosophy (§VI.B): nodes
//! communicate *opportunistically* — messages are pushed asynchronously
//! and the receiver picks matching ones out of its mailbox whenever the
//! protocol asks, stashing the rest. That out-of-order stash is what lets
//! every node run the butterfly schedule without global synchronisation.
//!
//! The stash is garbage-collected cooperatively: racing wrappers call
//! [`Comm::discard`] for the copies they no longer want, and a discard
//! for a message that has not arrived yet is remembered and applied on
//! arrival, so replica fan-out traffic cannot accumulate unboundedly.

use crate::comm::{Comm, CommError, RawComm, RawMessage};
use crate::tag::Tag;
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use kylix_telemetry::{Counter, RankTelemetry, Telemetry};
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cap on remembered not-yet-arrived discards. A discard aimed at a
/// dead peer never matches an arrival; without a bound those entries
/// would leak instead of the stash. Oldest entries are evicted first.
const MAX_PENDING_DISCARDS: usize = 1024;

/// Cap on retained empty stash queues. Enough to cover the distinct
/// `(src, tag)` keys live within one reduction layer on any realistic
/// group degree; beyond that the queues are simply dropped.
const MAX_SPARE_QUEUES: usize = 32;

/// One in-flight message.
#[derive(Debug)]
struct Envelope {
    src: usize,
    tag: Tag,
    payload: Bytes,
}

/// A rank's endpoint in an in-process thread cluster.
pub struct ThreadComm {
    rank: usize,
    size: usize,
    senders: Arc<Vec<Sender<Envelope>>>,
    rx: Receiver<Envelope>,
    /// Messages that arrived before the protocol asked for them.
    stash: HashMap<(usize, Tag), VecDeque<Bytes>>,
    /// Discards registered before the matching message arrived.
    pending_discards: HashMap<(usize, Tag), u32>,
    /// Insertion order of `pending_discards` keys, for eviction.
    discard_order: VecDeque<(usize, Tag)>,
    /// Emptied stash queues kept for reuse, so the steady-state receive
    /// path stops allocating queue storage per `(src, tag)` key.
    spare_queues: Vec<VecDeque<Bytes>>,
    /// This rank's telemetry shard, if counters were requested.
    shard: Option<Arc<RankTelemetry>>,
    epoch: Instant,
}

impl ThreadComm {
    /// Build a full set of endpoints for an `m`-rank cluster. The caller
    /// hands one endpoint to each node thread; dropping an endpoint
    /// models a dead node (messages to it vanish).
    pub fn make_cluster(m: usize) -> Vec<ThreadComm> {
        Self::build_cluster(m, None)
    }

    /// [`ThreadComm::make_cluster`] with a telemetry shard attached to
    /// each endpoint: sends, deliveries, and stash parks are counted
    /// per `(phase, layer)` in `tel.rank(r)`, and every `Comm` wrapper
    /// stacked on top records into the same shard.
    pub fn make_cluster_with_telemetry(m: usize, tel: &Telemetry) -> Vec<ThreadComm> {
        assert!(
            tel.len() >= m,
            "telemetry has {} rank shards, cluster needs {m}",
            tel.len()
        );
        Self::build_cluster(m, Some(tel))
    }

    fn build_cluster(m: usize, tel: Option<&Telemetry>) -> Vec<ThreadComm> {
        assert!(m > 0, "cluster must have at least one rank");
        let mut txs = Vec::with_capacity(m);
        let mut rxs = Vec::with_capacity(m);
        for _ in 0..m {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let senders = Arc::new(txs);
        let epoch = Instant::now();
        rxs.into_iter()
            .enumerate()
            .map(|(rank, rx)| ThreadComm {
                rank,
                size: m,
                senders: Arc::clone(&senders),
                rx,
                stash: HashMap::new(),
                pending_discards: HashMap::new(),
                discard_order: VecDeque::new(),
                spare_queues: Vec::new(),
                shard: tel.map(|t| Arc::clone(t.rank(rank))),
                epoch,
            })
            .collect()
    }

    /// Count one message delivered to (or discarded on behalf of) the
    /// protocol above; pairs with the send-side accounting so fault-free
    /// runs conserve messages per `(phase, layer)`.
    #[inline]
    fn record_recv(&self, tag: Tag, bytes: usize) {
        if let Some(t) = &self.shard {
            t.add(tag.phase(), tag.layer(), Counter::BytesRecv, bytes as u64);
            t.add(tag.phase(), tag.layer(), Counter::MsgsRecv, 1);
        }
    }

    /// Route one arrival: either it satisfies a pending discard and is
    /// dropped, or it joins the stash. Every receive path funnels
    /// arrivals through here so discards apply uniformly.
    fn accept(&mut self, env: Envelope) {
        if self.consume_pending_discard(env.src, env.tag) {
            // A pending discard consumes the arrival on the caller's
            // behalf: that is a delivery for conservation purposes.
            self.record_recv(env.tag, env.payload.len());
            return;
        }
        if let Some(t) = &self.shard {
            t.add(env.tag.phase(), env.tag.layer(), Counter::StashParks, 1);
        }
        self.stash
            .entry((env.src, env.tag))
            .or_insert_with(|| self.spare_queues.pop().unwrap_or_default())
            .push_back(env.payload);
    }

    fn consume_pending_discard(&mut self, src: usize, tag: Tag) -> bool {
        match self.pending_discards.get_mut(&(src, tag)) {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    self.pending_discards.remove(&(src, tag));
                }
                true
            }
            None => false,
        }
    }

    /// Pull everything currently in the channel into the stash.
    fn drain_into_stash(&mut self) {
        while let Ok(env) = self.rx.try_recv() {
            self.accept(env);
        }
    }

    fn take_stashed(&mut self, from: usize, tag: Tag) -> Option<Bytes> {
        let q = self.stash.get_mut(&(from, tag))?;
        let payload = q.pop_front();
        if q.is_empty() {
            let q = self.stash.remove(&(from, tag)).expect("entry exists");
            if self.spare_queues.len() < MAX_SPARE_QUEUES {
                self.spare_queues.push(q);
            }
        }
        if let Some(p) = &payload {
            self.record_recv(tag, p.len());
        }
        payload
    }

    /// Number of messages currently held in the out-of-order stash
    /// (across all sources and tags). Exposed for leak tests.
    pub fn stash_len(&self) -> usize {
        self.stash.values().map(|q| q.len()).sum()
    }

    /// Number of registered not-yet-arrived discards.
    pub fn pending_discard_len(&self) -> usize {
        self.pending_discards.values().map(|&n| n as usize).sum()
    }
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, to: usize, tag: Tag, payload: Bytes) {
        debug_assert!(to < self.size, "rank {to} out of range");
        // Traffic is counted at the send call, before the liveness of
        // the receiver is known — the same accounting point as the
        // simulator's, so the two substrates agree byte-for-byte.
        if let Some(t) = &self.shard {
            t.add(
                tag.phase(),
                tag.layer(),
                Counter::BytesSent,
                payload.len() as u64,
            );
            t.add(tag.phase(), tag.layer(), Counter::MsgsSent, 1);
        }
        // A disconnected receiver is a dead node: drop silently, exactly
        // like a packet to a crashed machine (§V handles recovery).
        let _ = self.senders[to].send(Envelope {
            src: self.rank,
            tag,
            payload,
        });
    }

    fn recv_timeout(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Bytes, CommError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(p) = self.take_stashed(from, tag) {
                return Ok(p);
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                // Direct delivery: the stash for this key was just
                // checked empty and the channel is FIFO, so a matching
                // arrival can be handed straight back without a stash
                // round-trip (and without its allocation).
                Ok(env) => {
                    if env.src == from && env.tag == tag {
                        self.record_recv(env.tag, env.payload.len());
                        if !self.consume_pending_discard(env.src, env.tag) {
                            return Ok(env.payload);
                        }
                    } else {
                        self.accept(env);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CommError::Timeout { from, tag });
                }
                Err(RecvTimeoutError::Disconnected) => return Err(CommError::Closed),
            }
        }
    }

    fn recv_any_timeout(
        &mut self,
        sources: &[usize],
        tag: Tag,
        timeout: Duration,
    ) -> Result<(usize, Bytes), CommError> {
        let deadline = Instant::now() + timeout;
        loop {
            self.drain_into_stash();
            for &s in sources {
                if let Some(p) = self.take_stashed(s, tag) {
                    return Ok((s, p));
                }
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                // Direct delivery, as in `recv_timeout`: every candidate
                // key was just checked empty in the stash, so a matching
                // arrival is by construction the first of its key.
                Ok(env) => {
                    if env.tag == tag && sources.contains(&env.src) {
                        self.record_recv(env.tag, env.payload.len());
                        if !self.consume_pending_discard(env.src, env.tag) {
                            return Ok((env.src, env.payload));
                        }
                    } else {
                        self.accept(env);
                    }
                }
                Err(RecvTimeoutError::Timeout) => {
                    return Err(CommError::TimeoutAny {
                        sources: sources.to_vec(),
                        tag,
                    });
                }
                Err(RecvTimeoutError::Disconnected) => return Err(CommError::Closed),
            }
        }
    }

    fn discard(&mut self, sources: &[usize], tag: Tag) {
        self.drain_into_stash();
        for &s in sources {
            if self.take_stashed(s, tag).is_some() {
                continue;
            }
            let n = self.pending_discards.entry((s, tag)).or_insert(0);
            if *n == 0 {
                self.discard_order.push_back((s, tag));
            }
            *n += 1;
        }
        // Evict the oldest remembered discards once over the cap (e.g.
        // discards aimed at dead peers whose message will never come).
        while self.pending_discards.len() > MAX_PENDING_DISCARDS {
            match self.discard_order.pop_front() {
                Some(key) => {
                    self.pending_discards.remove(&key);
                }
                None => break,
            }
        }
    }

    fn now(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64()
    }

    fn telemetry(&self) -> Option<&RankTelemetry> {
        self.shard.as_deref()
    }
}

impl RawComm for ThreadComm {
    fn recv_raw_timeout(&mut self, timeout: Duration) -> Result<Option<RawMessage>, CommError> {
        let deadline = Instant::now() + timeout;
        loop {
            self.drain_into_stash();
            // Deterministic pick: smallest (src, tag) with a stashed
            // message. Within one key the queue is FIFO.
            if let Some(&(src, tag)) = self.stash.keys().min_by_key(|&&(s, t)| (s, t.raw())) {
                let payload = self.take_stashed(src, tag).expect("nonempty stash entry");
                return Ok(Some(RawMessage { src, tag, payload }));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            match self.rx.recv_timeout(remaining) {
                Ok(env) => self.accept(env),
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => return Err(CommError::Closed),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::Phase;
    use std::thread;

    fn tag(layer: u16, seq: u32) -> Tag {
        Tag::new(Phase::App, layer, seq)
    }

    #[test]
    fn ping_pong() {
        let mut comms = ThreadComm::make_cluster(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        thread::scope(|s| {
            s.spawn(move || {
                c0.send(1, tag(0, 0), Bytes::from_static(b"ping"));
                let r = c0.recv(1, tag(0, 1)).unwrap();
                assert_eq!(&r[..], b"pong");
            });
            s.spawn(move || {
                let r = c1.recv(0, tag(0, 0)).unwrap();
                assert_eq!(&r[..], b"ping");
                c1.send(0, tag(0, 1), Bytes::from_static(b"pong"));
            });
        });
    }

    #[test]
    fn out_of_order_selective_receive() {
        let mut comms = ThreadComm::make_cluster(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        // Send three tags, receive them in reverse order.
        c0.send(1, tag(0, 0), Bytes::from_static(b"a"));
        c0.send(1, tag(0, 1), Bytes::from_static(b"b"));
        c0.send(1, tag(0, 2), Bytes::from_static(b"c"));
        assert_eq!(&c1.recv(0, tag(0, 2)).unwrap()[..], b"c");
        assert_eq!(&c1.recv(0, tag(0, 1)).unwrap()[..], b"b");
        assert_eq!(&c1.recv(0, tag(0, 0)).unwrap()[..], b"a");
    }

    #[test]
    fn same_tag_messages_keep_fifo_order() {
        let mut comms = ThreadComm::make_cluster(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        for i in 0..5u8 {
            c0.send(1, tag(0, 0), Bytes::from(vec![i]));
        }
        for i in 0..5u8 {
            assert_eq!(c1.recv(0, tag(0, 0)).unwrap()[0], i);
        }
    }

    #[test]
    fn recv_any_returns_first_available() {
        let mut comms = ThreadComm::make_cluster(3);
        let mut c2 = comms.pop().unwrap();
        let mut c1 = comms.pop().unwrap();
        let _c0 = comms.pop().unwrap();
        c1.send(2, tag(1, 0), Bytes::from_static(b"from1"));
        let (src, payload) = c2.recv_any(&[0, 1], tag(1, 0)).unwrap();
        assert_eq!(src, 1);
        assert_eq!(&payload[..], b"from1");
    }

    #[test]
    fn timeout_on_silent_peer() {
        let mut comms = ThreadComm::make_cluster(2);
        let mut c1 = comms.remove(1);
        let err = c1
            .recv_timeout(0, tag(0, 0), Duration::from_millis(50))
            .unwrap_err();
        assert!(matches!(err, CommError::Timeout { from: 0, .. }));
    }

    #[test]
    fn recv_any_timeout_reports_the_sources() {
        let mut comms = ThreadComm::make_cluster(4);
        let mut c3 = comms.remove(3);
        let err = c3
            .recv_any_timeout(&[0, 2], tag(0, 0), Duration::from_millis(50))
            .unwrap_err();
        match err {
            CommError::TimeoutAny { sources, tag: t } => {
                assert_eq!(sources, vec![0, 2]);
                assert_eq!(t, tag(0, 0));
            }
            other => panic!("expected TimeoutAny, got {other:?}"),
        }
    }

    #[test]
    fn send_to_dead_rank_is_dropped() {
        let mut comms = ThreadComm::make_cluster(2);
        let dead = comms.pop().unwrap();
        drop(dead); // rank 1 never runs
        let mut c0 = comms.pop().unwrap();
        c0.send(1, tag(0, 0), Bytes::from_static(b"into the void"));
        // No panic, nothing to assert beyond survival.
    }

    #[test]
    fn all_to_all_exchange() {
        let m = 8;
        let comms = ThreadComm::make_cluster(m);
        let results: Vec<Vec<u8>> = thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|mut c| {
                    s.spawn(move || {
                        let me = c.rank() as u8;
                        for to in 0..m {
                            c.send(to, tag(0, 0), Bytes::from(vec![me]));
                        }
                        let mut got = Vec::new();
                        for from in 0..m {
                            got.push(c.recv(from, tag(0, 0)).unwrap()[0]);
                        }
                        got
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for r in results {
            assert_eq!(r, (0..m as u8).collect::<Vec<_>>());
        }
    }

    #[test]
    fn now_is_monotone() {
        let comms = ThreadComm::make_cluster(1);
        let c = &comms[0];
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn discard_removes_stashed_copy() {
        let mut comms = ThreadComm::make_cluster(3);
        let mut c2 = comms.pop().unwrap();
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        c0.send(2, tag(0, 0), Bytes::from_static(b"winner"));
        c1.send(2, tag(0, 0), Bytes::from_static(b"loser"));
        let (_src, _p) = c2.recv_any(&[0, 1], tag(0, 0)).unwrap();
        // One copy remains stashed or in flight; discard the loser.
        c2.discard(&[0, 1], tag(0, 0));
        // Give the in-flight copy time to land, then drain.
        thread::sleep(Duration::from_millis(20));
        c2.drain_into_stash();
        assert_eq!(c2.stash_len(), 0, "losing copy must be collected");
    }

    #[test]
    fn discard_applies_to_future_arrival() {
        let mut comms = ThreadComm::make_cluster(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        // Discard before the message exists.
        c1.discard(&[0], tag(0, 7));
        c0.send(1, tag(0, 7), Bytes::from_static(b"late loser"));
        c0.send(1, tag(0, 8), Bytes::from_static(b"keeper"));
        // The keeper is receivable; the discarded one is consumed.
        assert_eq!(&c1.recv(0, tag(0, 8)).unwrap()[..], b"keeper");
        assert!(c1
            .recv_timeout(0, tag(0, 7), Duration::from_millis(50))
            .is_err());
        assert_eq!(c1.stash_len(), 0);
        assert_eq!(c1.pending_discard_len(), 0);
    }

    #[test]
    fn pending_discards_are_bounded() {
        let mut comms = ThreadComm::make_cluster(2);
        let mut c1 = comms.pop().unwrap();
        // Register far more dead-peer discards than the cap.
        for seq in 0..(MAX_PENDING_DISCARDS as u32 * 3) {
            c1.discard(&[0], tag(0, seq));
        }
        assert!(c1.pending_discards.len() <= MAX_PENDING_DISCARDS);
    }

    #[test]
    fn spare_queues_recycle_and_stay_bounded() {
        let mut comms = ThreadComm::make_cluster(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        // Stash messages under many distinct keys, then drain them: the
        // emptied queues go to the freelist (capped), and later arrivals
        // reuse them instead of allocating.
        let keys = MAX_SPARE_QUEUES as u32 * 2;
        for seq in 0..keys {
            c0.send(1, tag(0, seq), Bytes::from_static(b"x"));
        }
        // Receive out of order so every message goes through the stash.
        for seq in (0..keys).rev() {
            assert_eq!(&c1.recv(0, tag(0, seq)).unwrap()[..], b"x");
        }
        assert_eq!(c1.stash_len(), 0);
        assert!(c1.spare_queues.len() <= MAX_SPARE_QUEUES);
        assert!(!c1.spare_queues.is_empty(), "queues must be retained");
        // A fresh arrival through the stash pulls from the freelist.
        let before = c1.spare_queues.len();
        c0.send(1, tag(1, 0), Bytes::from_static(b"y"));
        c0.send(1, tag(1, 1), Bytes::from_static(b"z"));
        assert_eq!(&c1.recv(0, tag(1, 1)).unwrap()[..], b"z");
        assert_eq!(c1.spare_queues.len(), before - 1, "one queue in use");
    }

    #[test]
    fn telemetry_counts_sends_deliveries_and_parks() {
        use kylix_telemetry::Clock;
        let tel = Telemetry::new(2, Clock::Wall);
        let mut comms = ThreadComm::make_cluster_with_telemetry(2, &tel);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        c0.send(1, tag(2, 0), Bytes::from_static(b"abc"));
        c0.send(1, tag(2, 1), Bytes::from_static(b"defgh"));
        // Reverse order: the first arrival parks in the stash.
        assert_eq!(&c1.recv(0, tag(2, 1)).unwrap()[..], b"defgh");
        assert_eq!(&c1.recv(0, tag(2, 0)).unwrap()[..], b"abc");
        // Self-addressed traffic files under the pseudo-phase.
        c0.note_traffic(2, 7);
        let rep = tel.report();
        let app = crate::tag::Phase::App as u8;
        assert_eq!(rep.ranks[0].get(app, 2, Counter::BytesSent), 8);
        assert_eq!(rep.ranks[0].get(app, 2, Counter::MsgsSent), 2);
        assert_eq!(rep.ranks[1].get(app, 2, Counter::BytesRecv), 8);
        assert_eq!(rep.ranks[1].get(app, 2, Counter::MsgsRecv), 2);
        assert!(rep.ranks[1].get(app, 2, Counter::StashParks) >= 1);
        assert_eq!(
            rep.ranks[0].get(kylix_telemetry::SELF_PHASE, 2, Counter::BytesSent),
            7
        );
        // Whole-layer sums see wire + self traffic together.
        assert_eq!(rep.on_layer(2, Counter::BytesSent), 15);
    }

    #[test]
    fn telemetry_counts_discard_consumed_arrivals_as_received() {
        use kylix_telemetry::Clock;
        let tel = Telemetry::new(2, Clock::Wall);
        let mut comms = ThreadComm::make_cluster_with_telemetry(2, &tel);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        // Pending discard applied on a future arrival still counts as a
        // delivery, so sent == received holds for conservation tests.
        c1.discard(&[0], tag(0, 7));
        c0.send(1, tag(0, 7), Bytes::from_static(b"late loser"));
        assert!(c1
            .recv_timeout(0, tag(0, 7), Duration::from_millis(200))
            .is_err());
        let rep = tel.report();
        assert_eq!(rep.total(Counter::MsgsSent), 1);
        assert_eq!(rep.total(Counter::MsgsRecv), 1);
        assert_eq!(rep.total(Counter::BytesRecv), 10);
    }

    #[test]
    fn raw_recv_yields_anything_and_times_out_as_none() {
        let mut comms = ThreadComm::make_cluster(2);
        let mut c1 = comms.pop().unwrap();
        let mut c0 = comms.pop().unwrap();
        c0.send(1, tag(3, 9), Bytes::from_static(b"raw"));
        let m = c1
            .recv_raw_timeout(Duration::from_secs(1))
            .unwrap()
            .expect("message");
        assert_eq!(m.src, 0);
        assert_eq!(m.tag, tag(3, 9));
        assert_eq!(&m.payload[..], b"raw");
        assert!(c1
            .recv_raw_timeout(Duration::from_millis(30))
            .unwrap()
            .is_none());
    }
}
