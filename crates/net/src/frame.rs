//! Wire framing for the TCP substrate.
//!
//! A Kylix message on a socket is a *frame*:
//!
//! ```text
//! [body_len u32 LE][tag u64 LE][payload bytes …]
//! ```
//!
//! where `body_len = 8 + payload.len()` counts everything after the
//! length word. The sender rank is not on the wire — each TCP
//! connection carries exactly one direction of one peer pair, so the
//! source is established once at connection handshake and implied for
//! every frame after that.
//!
//! The decoder is a push-style streaming parser: TCP is a byte stream,
//! so a single `read` may return half a header, one and a half frames,
//! or ten concatenated frames, and [`FrameDecoder`] must reassemble
//! exactly the frames that were written regardless of how the kernel
//! tears them. A declared body length above [`MAX_FRAME_BYTES`] (or
//! below the 8-byte tag) is rejected as [`FrameError`] rather than
//! trusted: a corrupted or adversarial length prefix would otherwise
//! make the reader attempt a multi-gigabyte allocation or desynchronise
//! the stream silently. Framing errors are unrecoverable for the
//! connection — once the length prefix cannot be trusted, no later
//! byte boundary can — so the TCP substrate maps them to
//! [`crate::CommError::Corrupt`] and closes the link.

use crate::tag::Tag;
use bytes::Bytes;

/// Upper bound on the *payload* of one frame (64 MiB). Generously above
/// any packet the protocol produces (the paper's largest direct-topology
/// packets are ~1 MB at full scale), while small enough that a garbage
/// length prefix cannot drive allocation.
pub const MAX_FRAME_BYTES: usize = 64 << 20;

/// Bytes of framing overhead per message: the length word plus the tag.
pub const FRAME_HEADER: usize = 4 + 8;

/// A framing violation. The byte stream cannot be re-synchronised after
/// one of these: the connection must be torn down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The declared body length exceeds [`MAX_FRAME_BYTES`] + tag.
    Oversized {
        /// The declared body length.
        len: usize,
    },
    /// The declared body length cannot even hold the 8-byte tag.
    Undersized {
        /// The declared body length.
        len: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversized { len } => {
                write!(f, "frame body length {len} exceeds cap {MAX_FRAME_BYTES}")
            }
            FrameError::Undersized { len } => {
                write!(f, "frame body length {len} cannot hold the 8-byte tag")
            }
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode one message as a length-prefixed frame ready for `write_all`.
pub fn encode_frame(tag: Tag, payload: &[u8]) -> Bytes {
    assert!(
        payload.len() <= MAX_FRAME_BYTES,
        "payload of {} bytes exceeds the {MAX_FRAME_BYTES}-byte frame cap",
        payload.len()
    );
    let mut buf = Vec::with_capacity(FRAME_HEADER + payload.len());
    buf.extend_from_slice(&((8 + payload.len()) as u32).to_le_bytes());
    buf.extend_from_slice(&tag.raw().to_le_bytes());
    buf.extend_from_slice(payload);
    Bytes::from(buf)
}

/// Streaming frame reassembler: feed it raw socket bytes with
/// [`FrameDecoder::push`], pull complete frames with
/// [`FrameDecoder::next_frame`].
#[derive(Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf`; compacted lazily on `push` so frame
    /// extraction itself never memmoves.
    pos: usize,
}

impl FrameDecoder {
    /// A decoder with an empty reassembly buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append raw bytes read from the socket.
    pub fn push(&mut self, data: &[u8]) {
        // Compact before growing: everything before `pos` is dead.
        if self.pos > 0 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(data);
    }

    /// Bytes buffered but not yet returned as frames.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extract the next complete frame, if one is fully buffered.
    ///
    /// `Ok(None)` means "need more bytes" (a torn read mid-frame);
    /// `Err` means the stream is unrecoverable. After an `Err` the
    /// decoder is poisoned only by convention — callers must stop
    /// feeding the connection.
    pub fn next_frame(&mut self) -> Result<Option<(Tag, Bytes)>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let body_len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        if body_len < 8 {
            return Err(FrameError::Undersized { len: body_len });
        }
        if body_len > MAX_FRAME_BYTES + 8 {
            return Err(FrameError::Oversized { len: body_len });
        }
        if avail.len() < 4 + body_len {
            return Ok(None);
        }
        let tag = Tag::from_raw(u64::from_le_bytes([
            avail[4], avail[5], avail[6], avail[7], avail[8], avail[9], avail[10], avail[11],
        ]));
        let payload = Bytes::from(avail[12..4 + body_len].to_vec());
        self.pos += 4 + body_len;
        Ok(Some((tag, payload)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::Phase;

    fn tag(layer: u16, seq: u32) -> Tag {
        Tag::new(Phase::App, layer, seq)
    }

    #[test]
    fn single_frame_round_trip() {
        let f = encode_frame(tag(3, 9), b"hello");
        let mut dec = FrameDecoder::new();
        dec.push(&f);
        let (t, p) = dec.next_frame().unwrap().expect("complete frame");
        assert_eq!(t, tag(3, 9));
        assert_eq!(&p[..], b"hello");
        assert!(dec.next_frame().unwrap().is_none());
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn empty_payload_is_a_valid_frame() {
        let f = encode_frame(tag(0, 0), b"");
        assert_eq!(f.len(), FRAME_HEADER);
        let mut dec = FrameDecoder::new();
        dec.push(&f);
        let (t, p) = dec.next_frame().unwrap().expect("complete frame");
        assert_eq!(t, tag(0, 0));
        assert!(p.is_empty());
    }

    #[test]
    fn torn_reads_reassemble_byte_by_byte() {
        let f = encode_frame(tag(1, 2), b"torn across many reads");
        let mut dec = FrameDecoder::new();
        for (i, b) in f.iter().enumerate() {
            dec.push(&[*b]);
            let got = dec.next_frame().unwrap();
            if i + 1 < f.len() {
                assert!(got.is_none(), "frame complete early at byte {i}");
            } else {
                let (t, p) = got.expect("complete at last byte");
                assert_eq!(t, tag(1, 2));
                assert_eq!(&p[..], b"torn across many reads");
            }
        }
    }

    #[test]
    fn concatenated_frames_split_correctly() {
        let mut wire = Vec::new();
        for i in 0..10u32 {
            wire.extend_from_slice(&encode_frame(tag(0, i), &[i as u8; 7]));
        }
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        for i in 0..10u32 {
            let (t, p) = dec.next_frame().unwrap().expect("frame i");
            assert_eq!(t, tag(0, i));
            assert_eq!(&p[..], &[i as u8; 7]);
        }
        assert!(dec.next_frame().unwrap().is_none());
    }

    #[test]
    fn oversized_length_is_rejected_not_allocated() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(u32::MAX).to_le_bytes());
        wire.extend_from_slice(&[0u8; 16]);
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::Oversized { len }) if len == u32::MAX as usize
        ));
    }

    #[test]
    fn undersized_length_is_rejected() {
        let mut dec = FrameDecoder::new();
        dec.push(&3u32.to_le_bytes());
        dec.push(&[0u8; 8]);
        assert!(matches!(
            dec.next_frame(),
            Err(FrameError::Undersized { len: 3 })
        ));
    }

    #[test]
    fn length_exactly_at_cap_is_accepted() {
        // Header declaring exactly MAX_FRAME_BYTES + 8 must parse (the
        // decoder just waits for the body), one more must not.
        let mut dec = FrameDecoder::new();
        dec.push(&((MAX_FRAME_BYTES + 8) as u32).to_le_bytes());
        assert!(dec.next_frame().unwrap().is_none(), "cap-sized body waits");
        let mut dec = FrameDecoder::new();
        dec.push(&((MAX_FRAME_BYTES + 9) as u32).to_le_bytes());
        assert!(dec.next_frame().is_err());
    }
}
