//! The communicator trait.
//!
//! All Kylix protocol code — configuration, reduction, replication, the
//! baselines, the applications — is written against [`Comm`]. The trait
//! is intentionally tiny: point-to-point send, *selective* blocking
//! receive (by source + tag), receive-any (the primitive behind the
//! paper's replica "packet racing", §V.B), and two time hooks that let a
//! virtual-time simulator charge compute and report virtual clocks while
//! a real thread cluster reports wall clocks.

use crate::tag::Tag;
use bytes::Bytes;
use std::time::Duration;

/// Errors a receive can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived within the timeout (e.g. the peer is
    /// dead and the protocol has no replica to race).
    Timeout {
        /// Rank that was being waited on (or usize::MAX for recv_any).
        from: usize,
        /// Tag that was being waited on.
        tag: Tag,
    },
    /// The cluster is shutting down (all senders dropped).
    Closed,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { from, tag } => {
                write!(f, "timed out waiting for rank {from} tag {tag:?}")
            }
            CommError::Closed => write!(f, "communicator closed"),
        }
    }
}

impl std::error::Error for CommError {}

/// Default patience for blocking receives — long enough for any test or
/// bench on a loaded machine, short enough that a genuinely lost message
/// fails the run instead of hanging it.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(60);

/// A per-node communicator endpoint.
///
/// Each rank owns exactly one `Comm` value; methods take `&mut self`
/// because endpoints carry node-local state (receive stashes, virtual
/// clocks). Values are `Send` so ranks can run on their own threads.
pub trait Comm: Send {
    /// This node's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of nodes in the cluster.
    fn size(&self) -> usize;

    /// Fire-and-forget send. Sends to dead/absent ranks are silently
    /// dropped (commodity clusters lose nodes; the protocol layers above
    /// decide whether that is tolerable — see the replication module of
    /// the `kylix` crate).
    fn send(&mut self, to: usize, tag: Tag, payload: Bytes);

    /// Blocking selective receive of the next message from `from` with
    /// tag `tag`, with the given patience.
    fn recv_timeout(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Bytes, CommError>;

    /// Blocking selective receive with the default patience.
    fn recv(&mut self, from: usize, tag: Tag) -> Result<Bytes, CommError> {
        self.recv_timeout(from, tag, DEFAULT_TIMEOUT)
    }

    /// Receive the first message with tag `tag` from *any* of `sources`
    /// ("packet racing"): returns the winning source and its payload.
    fn recv_any_timeout(
        &mut self,
        sources: &[usize],
        tag: Tag,
        timeout: Duration,
    ) -> Result<(usize, Bytes), CommError>;

    /// `recv_any_timeout` with the default patience.
    fn recv_any(&mut self, sources: &[usize], tag: Tag) -> Result<(usize, Bytes), CommError> {
        self.recv_any_timeout(sources, tag, DEFAULT_TIMEOUT)
    }

    /// Current time in seconds: wall-clock since cluster start for real
    /// clusters, virtual time for simulators.
    fn now(&self) -> f64;

    /// Account local computation. Real clusters ignore this (the
    /// computation actually happened); simulators advance the node's
    /// virtual clock.
    fn charge_compute(&mut self, _seconds: f64) {}

    /// Bytes-per-element-independent hook: report how many application
    /// payload bytes a protocol message carries, for traffic accounting.
    /// Default is a no-op; the simulator records per-layer volumes.
    fn note_traffic(&mut self, _layer: u16, _bytes: usize) {}
}

/// A communicator wrapper that bounds every blocking receive with a
/// caller-chosen patience instead of [`DEFAULT_TIMEOUT`].
///
/// Useful for tests and demos that *expect* a peer to be unreachable
/// (e.g. an unreplicated protocol facing a dead node) and want the
/// failure surfaced quickly rather than after a minute.
pub struct PatienceComm<C: Comm> {
    inner: C,
    patience: Duration,
}

impl<C: Comm> PatienceComm<C> {
    /// Wrap a communicator with the given receive patience.
    pub fn new(inner: C, patience: Duration) -> Self {
        Self { inner, patience }
    }

    /// Unwrap the inner communicator.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: Comm> Comm for PatienceComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&mut self, to: usize, tag: Tag, payload: Bytes) {
        self.inner.send(to, tag, payload);
    }

    fn recv_timeout(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Bytes, CommError> {
        self.inner.recv_timeout(from, tag, timeout.min(self.patience))
    }

    fn recv(&mut self, from: usize, tag: Tag) -> Result<Bytes, CommError> {
        self.inner.recv_timeout(from, tag, self.patience)
    }

    fn recv_any_timeout(
        &mut self,
        sources: &[usize],
        tag: Tag,
        timeout: Duration,
    ) -> Result<(usize, Bytes), CommError> {
        self.inner
            .recv_any_timeout(sources, tag, timeout.min(self.patience))
    }

    fn recv_any(&mut self, sources: &[usize], tag: Tag) -> Result<(usize, Bytes), CommError> {
        self.inner.recv_any_timeout(sources, tag, self.patience)
    }

    fn now(&self) -> f64 {
        self.inner.now()
    }

    fn charge_compute(&mut self, seconds: f64) {
        self.inner.charge_compute(seconds);
    }

    fn note_traffic(&mut self, layer: u16, bytes: usize) {
        self.inner.note_traffic(layer, bytes);
    }
}
