//! The communicator trait.
//!
//! All Kylix protocol code — configuration, reduction, replication, the
//! baselines, the applications — is written against [`Comm`]. The trait
//! is intentionally tiny: point-to-point send, *selective* blocking
//! receive (by source + tag), receive-any (the primitive behind the
//! paper's replica "packet racing", §V.B), a stash garbage-collection
//! hook ([`Comm::discard`], used by racing wrappers to drop losing
//! copies), and two time hooks that let a virtual-time simulator charge
//! compute and report virtual clocks while a real thread cluster
//! reports wall clocks.
//!
//! Substrates that can hand over *every* incoming message regardless of
//! source and tag additionally implement [`RawComm`]; the reliable
//! delivery wrapper (`crate::reliable::ReliableComm`) is built on that,
//! because it must see acknowledgements from any peer while the
//! protocol above it blocks on one.

use crate::tag::Tag;
use bytes::Bytes;
use kylix_telemetry::{Counter, RankTelemetry, SELF_PHASE};
use std::time::Duration;

/// Errors a receive can surface.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived within the timeout for a *selective*
    /// receive (e.g. the peer is dead and the protocol has no replica
    /// to race).
    Timeout {
        /// Rank that was being waited on.
        from: usize,
        /// Tag that was being waited on.
        tag: Tag,
    },
    /// No message with `tag` arrived from *any* of `sources` within the
    /// timeout — a failed packet race: every candidate replica is dead
    /// or silent.
    TimeoutAny {
        /// The racing candidate ranks that were being waited on.
        sources: Vec<usize>,
        /// Tag that was being waited on.
        tag: Tag,
    },
    /// A received payload failed its integrity check: the bytes that
    /// arrived from `from` are not the bytes that were sent (injected
    /// or real corruption). Never silently delivered.
    Corrupt {
        /// Rank whose message was damaged.
        from: usize,
        /// Tag of the damaged message.
        tag: Tag,
    },
    /// This endpoint has crashed (mid-run fault injection): the node is
    /// dark and can neither send nor receive.
    Crashed {
        /// The crashed rank (this endpoint's own rank).
        rank: usize,
    },
    /// The cluster is shutting down (all senders dropped).
    Closed,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::Timeout { from, tag } => {
                write!(f, "timed out waiting for rank {from} tag {tag:?}")
            }
            CommError::TimeoutAny { sources, tag } => {
                write!(
                    f,
                    "timed out waiting for any of ranks {sources:?} tag {tag:?}"
                )
            }
            CommError::Corrupt { from, tag } => {
                write!(f, "corrupt payload from rank {from} tag {tag:?}")
            }
            CommError::Crashed { rank } => {
                write!(f, "rank {rank} has crashed (endpoint is dark)")
            }
            CommError::Closed => write!(f, "communicator closed"),
        }
    }
}

impl std::error::Error for CommError {}

/// Default patience for blocking receives — long enough for any test or
/// bench on a loaded machine, short enough that a genuinely lost message
/// fails the run instead of hanging it.
pub const DEFAULT_TIMEOUT: Duration = Duration::from_secs(60);

/// A per-node communicator endpoint.
///
/// Each rank owns exactly one `Comm` value; methods take `&mut self`
/// because endpoints carry node-local state (receive stashes, virtual
/// clocks). Values are `Send` so ranks can run on their own threads.
pub trait Comm: Send {
    /// This node's rank in `0..size()`.
    fn rank(&self) -> usize;

    /// Number of nodes in the cluster.
    fn size(&self) -> usize;

    /// Fire-and-forget send. Sends to dead/absent ranks are silently
    /// dropped (commodity clusters lose nodes; the protocol layers above
    /// decide whether that is tolerable — see the replication module of
    /// the `kylix` crate).
    fn send(&mut self, to: usize, tag: Tag, payload: Bytes);

    /// Blocking selective receive of the next message from `from` with
    /// tag `tag`, with the given patience.
    fn recv_timeout(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Bytes, CommError>;

    /// Blocking selective receive with the default patience.
    fn recv(&mut self, from: usize, tag: Tag) -> Result<Bytes, CommError> {
        self.recv_timeout(from, tag, DEFAULT_TIMEOUT)
    }

    /// Receive the first message with tag `tag` from *any* of `sources`
    /// ("packet racing"): returns the winning source and its payload.
    ///
    /// Losing copies are **not** consumed: a racing caller that fanned
    /// the same logical message out to every source should
    /// [`Comm::discard`] the losers afterwards, or they accumulate in
    /// the receive stash.
    fn recv_any_timeout(
        &mut self,
        sources: &[usize],
        tag: Tag,
        timeout: Duration,
    ) -> Result<(usize, Bytes), CommError>;

    /// `recv_any_timeout` with the default patience.
    fn recv_any(&mut self, sources: &[usize], tag: Tag) -> Result<(usize, Bytes), CommError> {
        self.recv_any_timeout(sources, tag, DEFAULT_TIMEOUT)
    }

    /// Drop one message with `tag` from each of `sources` — whether it
    /// already sits in the receive stash or has not arrived yet (a
    /// pending discard is remembered and applied on arrival).
    ///
    /// This is the stash garbage-collection hook for packet racing
    /// (§V.B): after a race is won, the losing replicas' copies are
    /// dead weight and would otherwise accumulate forever across
    /// collective rounds. The default is a no-op (substrates without a
    /// stash have nothing to collect).
    fn discard(&mut self, _sources: &[usize], _tag: Tag) {}

    /// Current time in seconds: wall-clock since cluster start for real
    /// clusters, virtual time for simulators.
    fn now(&self) -> f64;

    /// Account local computation. Real clusters ignore this (the
    /// computation actually happened); simulators advance the node's
    /// virtual clock.
    fn charge_compute(&mut self, _seconds: f64) {}

    /// Bytes-per-element-independent hook: report how many application
    /// payload bytes a protocol message carries that never touch the
    /// wire (a rank's own part of a scatter), for traffic accounting.
    ///
    /// The default implementation files the traffic under the
    /// [`SELF_PHASE`] pseudo-phase of this endpoint's telemetry shard
    /// (if any), so whole-layer volume reports are exact on every
    /// substrate.
    fn note_traffic(&mut self, layer: u16, bytes: usize) {
        if let Some(tel) = self.telemetry() {
            tel.add(SELF_PHASE, layer, Counter::BytesSent, bytes as u64);
            tel.add(SELF_PHASE, layer, Counter::MsgsSent, 1);
        }
    }

    /// This endpoint's telemetry shard, if counters were attached when
    /// the cluster was built. Wrappers must delegate so instrumentation
    /// added at any layer (reliability, chaos, replication) lands in
    /// the same per-rank shard. Default: no telemetry.
    fn telemetry(&self) -> Option<&RankTelemetry> {
        None
    }
}

/// One incoming message, unfiltered: source, tag, payload.
#[derive(Debug, Clone)]
pub struct RawMessage {
    /// Sender rank.
    pub src: usize,
    /// Message tag.
    pub tag: Tag,
    /// Message payload.
    pub payload: Bytes,
}

/// A communicator that can surrender its *next incoming message
/// whatever it is* — the primitive reliable delivery is built on.
///
/// Selective receives ([`Comm::recv_timeout`]) stash non-matching
/// traffic invisibly; a reliability layer must instead observe every
/// arrival (data from anyone, acknowledgements for its own sends), so
/// it drives the substrate exclusively through this method and keeps
/// its own delivery queues.
pub trait RawComm: Comm {
    /// Blocking receive of the next incoming message from any source
    /// with any tag. Returns `Ok(None)` if nothing arrived within
    /// `timeout` (an expected condition in retransmission loops, not an
    /// error). Messages already stashed by earlier selective receives
    /// are yielded first.
    fn recv_raw_timeout(&mut self, timeout: Duration) -> Result<Option<RawMessage>, CommError>;
}

/// A communicator wrapper that bounds every blocking receive with a
/// caller-chosen patience instead of [`DEFAULT_TIMEOUT`].
///
/// Useful for tests and demos that *expect* a peer to be unreachable
/// (e.g. an unreplicated protocol facing a dead node) and want the
/// failure surfaced quickly rather than after a minute.
///
/// ### Timeout semantics
///
/// The patience is an **upper bound**, applied identically to every
/// receive flavour:
///
/// * `recv` / `recv_any` (no explicit timeout) wait exactly the
///   patience instead of [`DEFAULT_TIMEOUT`];
/// * `recv_timeout` / `recv_any_timeout` wait
///   `min(explicit timeout, patience)` — an explicit timeout *shorter*
///   than the patience is honoured as given, a longer one is clamped
///   down to the patience.
pub struct PatienceComm<C: Comm> {
    inner: C,
    patience: Duration,
}

impl<C: Comm> PatienceComm<C> {
    /// Wrap a communicator with the given receive patience.
    pub fn new(inner: C, patience: Duration) -> Self {
        Self { inner, patience }
    }

    /// The configured patience (the upper bound on every receive).
    pub fn patience(&self) -> Duration {
        self.patience
    }

    /// Unwrap the inner communicator.
    pub fn into_inner(self) -> C {
        self.inner
    }
}

impl<C: Comm> Comm for PatienceComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn send(&mut self, to: usize, tag: Tag, payload: Bytes) {
        self.inner.send(to, tag, payload);
    }

    fn recv_timeout(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Bytes, CommError> {
        self.inner
            .recv_timeout(from, tag, timeout.min(self.patience))
    }

    fn recv(&mut self, from: usize, tag: Tag) -> Result<Bytes, CommError> {
        self.inner.recv_timeout(from, tag, self.patience)
    }

    fn recv_any_timeout(
        &mut self,
        sources: &[usize],
        tag: Tag,
        timeout: Duration,
    ) -> Result<(usize, Bytes), CommError> {
        self.inner
            .recv_any_timeout(sources, tag, timeout.min(self.patience))
    }

    fn recv_any(&mut self, sources: &[usize], tag: Tag) -> Result<(usize, Bytes), CommError> {
        self.inner.recv_any_timeout(sources, tag, self.patience)
    }

    fn discard(&mut self, sources: &[usize], tag: Tag) {
        self.inner.discard(sources, tag);
    }

    fn now(&self) -> f64 {
        self.inner.now()
    }

    fn charge_compute(&mut self, seconds: f64) {
        self.inner.charge_compute(seconds);
    }

    fn note_traffic(&mut self, layer: u16, bytes: usize) {
        self.inner.note_traffic(layer, bytes);
    }

    fn telemetry(&self) -> Option<&RankTelemetry> {
        self.inner.telemetry()
    }
}

impl<C: RawComm> RawComm for PatienceComm<C> {
    fn recv_raw_timeout(&mut self, timeout: Duration) -> Result<Option<RawMessage>, CommError> {
        self.inner.recv_raw_timeout(timeout.min(self.patience))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::Phase;
    use crate::thread_comm::ThreadComm;
    use std::time::Instant;

    fn tag() -> Tag {
        Tag::new(Phase::App, 0, 0)
    }

    /// Regression (both directions of the min semantics): an explicit
    /// timeout shorter than the patience is honoured as given.
    #[test]
    fn explicit_timeout_shorter_than_patience_is_honoured() {
        let comms = ThreadComm::make_cluster(2);
        let mut p = PatienceComm::new(comms.into_iter().nth(1).unwrap(), Duration::from_secs(5));
        let start = Instant::now();
        let err = p
            .recv_timeout(0, tag(), Duration::from_millis(40))
            .unwrap_err();
        let elapsed = start.elapsed();
        assert!(matches!(err, CommError::Timeout { from: 0, .. }));
        assert!(
            elapsed < Duration::from_millis(1500),
            "short explicit timeout must not wait out the patience: {elapsed:?}"
        );
    }

    /// Regression (the other direction): an explicit timeout longer
    /// than the patience is clamped down to the patience, consistently
    /// with `recv`.
    #[test]
    fn explicit_timeout_longer_than_patience_is_clamped() {
        let comms = ThreadComm::make_cluster(2);
        let mut p = PatienceComm::new(comms.into_iter().nth(1).unwrap(), Duration::from_millis(40));
        let start = Instant::now();
        let err = p
            .recv_timeout(0, tag(), Duration::from_secs(60))
            .unwrap_err();
        let elapsed = start.elapsed();
        assert!(matches!(err, CommError::Timeout { from: 0, .. }));
        assert!(
            elapsed < Duration::from_millis(1500),
            "long explicit timeout must be clamped to the patience: {elapsed:?}"
        );

        // recv_any has the same cap.
        let start = Instant::now();
        let err = p
            .recv_any_timeout(&[0], tag(), Duration::from_secs(60))
            .unwrap_err();
        assert!(matches!(err, CommError::TimeoutAny { .. }));
        assert!(start.elapsed() < Duration::from_millis(1500));
    }

    #[test]
    fn default_recv_uses_patience_not_default_timeout() {
        let comms = ThreadComm::make_cluster(2);
        let mut p = PatienceComm::new(comms.into_iter().nth(1).unwrap(), Duration::from_millis(40));
        let start = Instant::now();
        assert!(p.recv(0, tag()).is_err());
        assert!(start.elapsed() < Duration::from_millis(1500));
    }

    #[test]
    fn timeout_any_error_is_self_describing() {
        let e = CommError::TimeoutAny {
            sources: vec![3, 7],
            tag: tag(),
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('7'), "{s}");
    }
}
