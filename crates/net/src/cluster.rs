//! In-process cluster runner: one OS thread per rank.
//!
//! [`LocalCluster::run`] spawns `m` node threads, hands each its
//! [`crate::ThreadComm`] endpoint, and collects per-rank results. The
//! failure-injection variant simply *does not run* the dead ranks — their
//! endpoints are dropped, so traffic addressed to them disappears, which
//! is exactly the failure model of the paper's §V (crashed machines stop
//! talking; they do not babble).

use crate::fault::{ChaosComm, FaultPlan};
use crate::thread_comm::ThreadComm;
use kylix_telemetry::Telemetry;
use std::thread;

/// Entry points for running closures as an in-process cluster.
pub struct LocalCluster;

impl LocalCluster {
    /// Run `f(rank's comm)` on `m` concurrent node threads; returns each
    /// rank's result, indexed by rank.
    ///
    /// Panics in any node thread propagate (the run is a test/bench
    /// harness; a panicking protocol is a bug, not a tolerated fault —
    /// tolerated faults are injected with [`LocalCluster::run_with_failures`]).
    pub fn run<R, F>(m: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(ThreadComm) -> R + Sync,
    {
        let comms = ThreadComm::make_cluster(m);
        thread::scope(|s| {
            let handles: Vec<_> = comms.into_iter().map(|comm| s.spawn(|| f(comm))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        })
    }

    /// [`LocalCluster::run`] with a telemetry instance attached: each
    /// rank's endpoint records sends, deliveries, and stash parks into
    /// `tel.rank(r)` (wall-clock flavour — pair with
    /// `Telemetry::new(m, Clock::Wall)`).
    pub fn run_with_telemetry<R, F>(m: usize, tel: &Telemetry, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(ThreadComm) -> R + Sync,
    {
        let comms = ThreadComm::make_cluster_with_telemetry(m, tel);
        thread::scope(|s| {
            let handles: Vec<_> = comms.into_iter().map(|comm| s.spawn(|| f(comm))).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        })
    }

    /// Run every rank behind a [`ChaosComm`] applying `plan` — lossy
    /// links, duplicates, corruption, delays, and mid-run crashes, all
    /// deterministic in the plan's seed. Unlike
    /// [`LocalCluster::run_with_failures`], crashed ranks *do* run
    /// until their crash event fires (they go dark mid-protocol), so
    /// the closure must handle `CommError::Crashed` if the plan crashes
    /// its rank.
    pub fn run_with_faults<R, F>(m: usize, plan: &FaultPlan, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(ChaosComm<ThreadComm>) -> R + Sync,
    {
        let comms = ThreadComm::make_cluster(m);
        thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| s.spawn(|| f(ChaosComm::new(comm, plan.clone()))))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        })
    }

    /// [`LocalCluster::run_with_faults`] with telemetry attached: the
    /// underlying endpoints count real wire traffic (post-fault), and
    /// the chaos/reliable wrappers stacked above record their own
    /// counters into the same per-rank shards.
    pub fn run_with_faults_telemetry<R, F>(
        m: usize,
        plan: &FaultPlan,
        tel: &Telemetry,
        f: F,
    ) -> Vec<R>
    where
        R: Send,
        F: Fn(ChaosComm<ThreadComm>) -> R + Sync,
    {
        let comms = ThreadComm::make_cluster_with_telemetry(m, tel);
        thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| s.spawn(|| f(ChaosComm::new(comm, plan.clone()))))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        })
    }

    /// Run with the given ranks dead from the start. Dead ranks yield
    /// `None`; their endpoints are dropped so messages to them vanish.
    pub fn run_with_failures<R, F>(m: usize, dead: &[usize], f: F) -> Vec<Option<R>>
    where
        R: Send,
        F: Fn(ThreadComm) -> R + Sync,
    {
        let comms = ThreadComm::make_cluster(m);
        thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .enumerate()
                .map(|(rank, comm)| {
                    if dead.contains(&rank) {
                        None
                    } else {
                        Some(s.spawn(|| f(comm)))
                    }
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.map(|h| h.join().expect("node thread panicked")))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use crate::tag::{Phase, Tag};
    use bytes::Bytes;

    #[test]
    fn run_returns_results_in_rank_order() {
        let out = LocalCluster::run(6, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn ring_pass_sums_ranks() {
        // Each rank sends its rank to the next; sums received value.
        let m = 5;
        let out = LocalCluster::run(m, |mut c| {
            let t = Tag::new(Phase::App, 0, 0);
            let next = (c.rank() + 1) % m;
            let prev = (c.rank() + m - 1) % m;
            c.send(next, t, Bytes::from(vec![c.rank() as u8]));
            c.recv(prev, t).unwrap()[0] as usize
        });
        let total: usize = out.iter().sum();
        assert_eq!(total, (0..m).sum());
    }

    #[test]
    fn failures_leave_none_and_alive_proceed() {
        let out = LocalCluster::run_with_failures(4, &[2], |mut c| {
            // Everyone (alive) sends to rank 2; nobody waits on it.
            let t = Tag::new(Phase::App, 0, 0);
            c.send(2, t, Bytes::from_static(b"hello?"));
            c.rank()
        });
        assert_eq!(out[0], Some(0));
        assert_eq!(out[1], Some(1));
        assert_eq!(out[2], None);
        assert_eq!(out[3], Some(3));
    }

    #[test]
    fn single_rank_cluster() {
        let out = LocalCluster::run(1, |c| c.size());
        assert_eq!(out, vec![1]);
    }

    #[test]
    fn run_with_faults_crashes_mid_protocol() {
        use crate::comm::CommError;
        use std::time::Duration;
        // Rank 1 crashes on its second comm operation: its first send
        // lands, its second does not, and every rank keeps running.
        let plan = FaultPlan::new(11).crash_after_ops(1, 2);
        let out = LocalCluster::run_with_faults(3, &plan, |mut c| {
            let t = Tag::new(Phase::App, 0, 0);
            let t2 = Tag::new(Phase::App, 0, 1);
            c.send(2, t, Bytes::from(vec![c.rank() as u8]));
            c.send(2, t2, Bytes::from(vec![c.rank() as u8]));
            if c.rank() == 2 {
                let a = c.recv_timeout(0, t, Duration::from_secs(5)).is_ok();
                let b = c.recv_timeout(1, t, Duration::from_secs(5)).is_ok();
                let c2 = c.recv_timeout(1, t2, Duration::from_millis(100)).is_ok();
                (a, b, c2, false)
            } else {
                // The crashed rank observes its own darkness.
                let dark = matches!(
                    c.recv_timeout(0, t2, Duration::from_millis(1)),
                    Err(CommError::Crashed { .. })
                );
                (true, true, true, dark)
            }
        });
        assert_eq!(out[2], (true, true, false, false));
        assert!(out[1].3, "rank 1 must observe its crash");
        assert!(!out[0].3, "rank 0 never crashes");
    }
}
