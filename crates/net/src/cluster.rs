//! In-process cluster runner: one OS thread per rank.
//!
//! [`LocalCluster::run`] spawns `m` node threads, hands each its
//! [`crate::ThreadComm`] endpoint, and collects per-rank results. The
//! failure-injection variant simply *does not run* the dead ranks — their
//! endpoints are dropped, so traffic addressed to them disappears, which
//! is exactly the failure model of the paper's §V (crashed machines stop
//! talking; they do not babble).

use crate::thread_comm::ThreadComm;
use std::thread;

/// Entry points for running closures as an in-process cluster.
pub struct LocalCluster;

impl LocalCluster {
    /// Run `f(rank's comm)` on `m` concurrent node threads; returns each
    /// rank's result, indexed by rank.
    ///
    /// Panics in any node thread propagate (the run is a test/bench
    /// harness; a panicking protocol is a bug, not a tolerated fault —
    /// tolerated faults are injected with [`LocalCluster::run_with_failures`]).
    pub fn run<R, F>(m: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(ThreadComm) -> R + Sync,
    {
        let comms = ThreadComm::make_cluster(m);
        thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| s.spawn(|| f(comm)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("node thread panicked"))
                .collect()
        })
    }

    /// Run with the given ranks dead from the start. Dead ranks yield
    /// `None`; their endpoints are dropped so messages to them vanish.
    pub fn run_with_failures<R, F>(m: usize, dead: &[usize], f: F) -> Vec<Option<R>>
    where
        R: Send,
        F: Fn(ThreadComm) -> R + Sync,
    {
        let comms = ThreadComm::make_cluster(m);
        thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .enumerate()
                .map(|(rank, comm)| {
                    if dead.contains(&rank) {
                        None
                    } else {
                        Some(s.spawn(|| f(comm)))
                    }
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.map(|h| h.join().expect("node thread panicked")))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::Comm;
    use crate::tag::{Phase, Tag};
    use bytes::Bytes;

    #[test]
    fn run_returns_results_in_rank_order() {
        let out = LocalCluster::run(6, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn ring_pass_sums_ranks() {
        // Each rank sends its rank to the next; sums received value.
        let m = 5;
        let out = LocalCluster::run(m, |mut c| {
            let t = Tag::new(Phase::App, 0, 0);
            let next = (c.rank() + 1) % m;
            let prev = (c.rank() + m - 1) % m;
            c.send(next, t, Bytes::from(vec![c.rank() as u8]));
            c.recv(prev, t).unwrap()[0] as usize
        });
        let total: usize = out.iter().sum();
        assert_eq!(total, (0..m).sum());
    }

    #[test]
    fn failures_leave_none_and_alive_proceed() {
        let out = LocalCluster::run_with_failures(4, &[2], |mut c| {
            // Everyone (alive) sends to rank 2; nobody waits on it.
            let t = Tag::new(Phase::App, 0, 0);
            c.send(2, t, Bytes::from_static(b"hello?"));
            c.rank()
        });
        assert_eq!(out[0], Some(0));
        assert_eq!(out[1], Some(1));
        assert_eq!(out[2], None);
        assert_eq!(out[3], Some(3));
    }

    #[test]
    fn single_rank_cluster() {
        let out = LocalCluster::run(1, |c| c.size());
        assert_eq!(out, vec![1]);
    }
}
