//! Deterministic fault injection: [`FaultPlan`] + [`ChaosComm`].
//!
//! Commodity clusters — the paper's target (§I) — lose packets,
//! duplicate them, deliver them late and out of order, flip their bits,
//! and crash nodes mid-protocol. This module makes all of that a
//! *reproducible input*: a [`FaultPlan`] is a pure function from
//! `(seed, src, dst, per-link message index)` to fault decisions, so
//! the same plan injects the same faults into the same messages on
//! every run, on every substrate. [`ChaosComm`] applies the plan at
//! send time around any [`Comm`], which means every protocol, baseline,
//! and application in the workspace can run under faults unchanged.
//!
//! Faults are applied on the *sender* side of a link (the wire eats the
//! message as it leaves), so wrapping every rank's endpoint covers
//! every link exactly once.

use crate::comm::{Comm, CommError, RawComm, RawMessage};
use crate::tag::Tag;
use bytes::Bytes;
use kylix_telemetry::{Counter, RankTelemetry};
use std::collections::HashMap;
use std::time::Duration;

/// `splitmix64` finaliser: a cheap, high-quality 64-bit bit mixer. All
/// fault decisions derive from chains of this, so they depend only on
/// the plan seed and the message coordinates — never on wall time.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Hash a sequence of words into one well-mixed word.
fn mix_chain(parts: &[u64]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15u64;
    for &p in parts {
        h = mix64(h ^ p).wrapping_add(0x9e37_79b9_7f4a_7c15);
    }
    mix64(h)
}

/// FNV-1a 64-bit checksum. Shared integrity primitive: the codec seals
/// payloads with it and the reliable-delivery frames carry it.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Per-link fault probabilities, each in `[0, 1]`, applied
/// independently per message.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LinkFaults {
    /// Probability a message is silently dropped.
    pub drop_p: f64,
    /// Probability a message is delivered twice.
    pub dup_p: f64,
    /// Probability one payload byte is flipped in flight.
    pub corrupt_p: f64,
    /// Probability a message is held back and delivered after the
    /// link's next message (reordering).
    pub delay_p: f64,
}

impl LinkFaults {
    /// A perfectly healthy link.
    pub fn none() -> Self {
        Self::default()
    }

    /// A link that only drops, with probability `p`.
    pub fn lossy(p: f64) -> Self {
        Self {
            drop_p: p,
            ..Self::default()
        }
    }

    fn validate(&self) {
        for (name, p) in [
            ("drop_p", self.drop_p),
            ("dup_p", self.dup_p),
            ("corrupt_p", self.corrupt_p),
            ("delay_p", self.delay_p),
        ] {
            assert!((0.0..=1.0).contains(&p), "{name} must be in [0,1], got {p}");
        }
    }

    fn is_none(&self) -> bool {
        self.drop_p == 0.0 && self.dup_p == 0.0 && self.corrupt_p == 0.0 && self.delay_p == 0.0
    }
}

/// When a node crashes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Crash {
    /// Crash the first time the node touches its communicator at or
    /// after time `t` (virtual seconds on the simulator, wall seconds
    /// since cluster start on a thread cluster).
    AtTime(f64),
    /// Crash on the node's `n`-th communicator operation (send or
    /// receive; 1-based — the `n`-th and later operations do not
    /// execute). A time-free trigger that is deterministic even under
    /// wall-clock scheduling.
    AfterOps(u64),
}

/// A seeded, fully deterministic description of the faults to inject.
///
/// Link faults can be set for every link at once (the `default_*`
/// builders) or per directed link ([`FaultPlan::link`]). Crashes are
/// per node. Two [`ChaosComm`]s built from equal plans make identical
/// decisions for identical message sequences.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    default_link: LinkFaults,
    links: HashMap<(usize, usize), LinkFaults>,
    crashes: HashMap<usize, Crash>,
}

/// Salts separating the per-fault-type hash streams.
const SALT_DROP: u64 = 0xD20B;
const SALT_DUP: u64 = 0xD0B1;
const SALT_CORRUPT: u64 = 0xC0BB;
const SALT_DELAY: u64 = 0xDE1A;
const SALT_BYTE: u64 = 0xB1FE;

impl FaultPlan {
    /// A plan with the given seed and no faults.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ..Self::default()
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Set the default per-message drop probability for every link.
    pub fn drop_rate(mut self, p: f64) -> Self {
        self.default_link.drop_p = p;
        self.default_link.validate();
        self
    }

    /// Set the default per-message duplication probability.
    pub fn duplicate_rate(mut self, p: f64) -> Self {
        self.default_link.dup_p = p;
        self.default_link.validate();
        self
    }

    /// Set the default per-message corruption probability.
    pub fn corrupt_rate(mut self, p: f64) -> Self {
        self.default_link.corrupt_p = p;
        self.default_link.validate();
        self
    }

    /// Set the default per-message delay/reorder probability.
    pub fn delay_rate(mut self, p: f64) -> Self {
        self.default_link.delay_p = p;
        self.default_link.validate();
        self
    }

    /// Override the faults of one directed link `src -> dst`.
    pub fn link(mut self, src: usize, dst: usize, faults: LinkFaults) -> Self {
        faults.validate();
        self.links.insert((src, dst), faults);
        self
    }

    /// Crash `rank` at time `t` (seconds — virtual on the simulator).
    pub fn crash_at(mut self, rank: usize, t: f64) -> Self {
        self.crashes.insert(rank, Crash::AtTime(t));
        self
    }

    /// Crash `rank` on its `n`-th communicator operation (1-based).
    pub fn crash_after_ops(mut self, rank: usize, n: u64) -> Self {
        self.crashes.insert(rank, Crash::AfterOps(n));
        self
    }

    /// The faults on directed link `src -> dst`.
    pub fn link_faults(&self, src: usize, dst: usize) -> LinkFaults {
        self.links
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_link)
    }

    /// The crash event for `rank`, if any.
    pub fn crash(&self, rank: usize) -> Option<Crash> {
        self.crashes.get(&rank).copied()
    }

    /// All `AtTime` crashes, for simulators that prefer native
    /// virtual-time crashes over wrapper-level ones.
    pub fn time_crashes(&self) -> Vec<(usize, f64)> {
        let mut v: Vec<(usize, f64)> = self
            .crashes
            .iter()
            .filter_map(|(&r, &c)| match c {
                Crash::AtTime(t) => Some((r, t)),
                Crash::AfterOps(_) => None,
            })
            .collect();
        v.sort_by_key(|&(r, _)| r);
        v
    }

    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.default_link.is_none()
            && self.links.values().all(LinkFaults::is_none)
            && self.crashes.is_empty()
    }

    /// Deterministic biased coin: does fault `salt` strike message `k`
    /// on link `src -> dst`?
    fn strikes(&self, p: f64, salt: u64, src: usize, dst: usize, k: u64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let h = mix_chain(&[self.seed, salt, src as u64, dst as u64, k]);
        // Map to [0, 1) with 53 bits of precision.
        let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < p
    }

    /// Deterministic position of the byte to flip in a corrupted
    /// payload of length `len` (> 0).
    fn corrupt_pos(&self, src: usize, dst: usize, k: u64, len: usize) -> usize {
        (mix_chain(&[self.seed, SALT_BYTE, src as u64, dst as u64, k]) % len as u64) as usize
    }
}

/// Counters of the faults a [`ChaosComm`] actually injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages the wrapped protocol asked to send.
    pub sent: u64,
    /// Messages dropped.
    pub dropped: u64,
    /// Messages delivered twice.
    pub duplicated: u64,
    /// Messages with a flipped byte.
    pub corrupted: u64,
    /// Messages held back past the link's next message.
    pub delayed: u64,
    /// Whether this endpoint crashed.
    pub crashed: bool,
}

/// A held-back (delayed) message awaiting release.
struct Held {
    /// Operation count at which it was held; released once a *later*
    /// operation runs, so it lands after at least one newer message.
    op: u64,
    to: usize,
    tag: Tag,
    payload: Bytes,
}

/// Fault-injecting communicator wrapper.
///
/// Applies a [`FaultPlan`] to every outgoing message and crashes the
/// endpoint when the plan says so. After the crash the endpoint is
/// *dark*: sends are swallowed and every receive returns
/// [`CommError::Crashed`] — exactly the fail-stop model of §V ("crashed
/// machines stop talking; they do not babble").
///
/// Injected corruption flips one payload byte; it is up to the layers
/// above (the codec's checksum, `ReliableComm`'s frame CRC) to detect
/// it — `ChaosComm` itself never signals which messages it damaged.
pub struct ChaosComm<C: Comm> {
    /// `None` only transiently inside `into_inner`.
    inner: Option<C>,
    plan: FaultPlan,
    /// Per-destination count of send attempts, the `k` in fault hashes.
    link_seq: Vec<u64>,
    /// Messages being delayed for reordering.
    holdback: Vec<Held>,
    /// Count of communicator operations, for `Crash::AfterOps`.
    ops: u64,
    dark: bool,
    stats: FaultStats,
}

impl<C: Comm> ChaosComm<C> {
    /// Wrap `inner`, injecting the faults `plan` prescribes for this
    /// rank's outgoing links and its crash event (if any).
    pub fn new(inner: C, plan: FaultPlan) -> Self {
        let size = inner.size();
        Self {
            inner: Some(inner),
            plan,
            link_seq: vec![0; size],
            holdback: Vec::new(),
            ops: 0,
            dark: false,
            stats: FaultStats::default(),
        }
    }

    fn inner(&self) -> &C {
        self.inner.as_ref().expect("inner taken")
    }

    fn inner_mut(&mut self) -> &mut C {
        self.inner.as_mut().expect("inner taken")
    }

    /// The fault counters so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Unwrap the inner communicator (releases any held-back messages
    /// first, unless crashed).
    pub fn into_inner(mut self) -> C {
        self.release_holdback(u64::MAX);
        self.inner.take().expect("inner taken")
    }

    /// True once this endpoint's crash event has fired. Checked at
    /// every operation; once dark, always dark.
    fn crashed(&mut self) -> bool {
        if self.dark {
            return true;
        }
        let fire = match self.plan.crash(self.inner().rank()) {
            Some(Crash::AtTime(t)) => self.inner().now() >= t,
            Some(Crash::AfterOps(n)) => self.ops >= n,
            None => false,
        };
        if fire {
            self.dark = true;
            self.stats.crashed = true;
            self.holdback.clear(); // a crashed node's queued packets die with it
        }
        self.dark
    }

    /// Mirror one injected fault into the substrate's telemetry shard
    /// (if any), keyed by the protocol tag it struck.
    #[inline]
    fn tel_bump(&self, tag: Tag, kind: Counter) {
        if let Some(t) = self.inner.as_ref().and_then(|c| c.telemetry()) {
            t.add(tag.phase(), tag.layer(), kind, 1);
        }
    }

    /// Release held-back messages captured before operation `before`.
    fn release_holdback(&mut self, before: u64) {
        if self.holdback.is_empty() || self.dark || self.inner.is_none() {
            return;
        }
        let mut released = Vec::new();
        self.holdback.retain_mut(|h| {
            if h.op < before {
                released.push((h.to, h.tag, std::mem::take(&mut h.payload)));
                false
            } else {
                true
            }
        });
        for (to, tag, payload) in released {
            self.inner_mut().send(to, tag, payload);
        }
    }
}

impl<C: Comm> Drop for ChaosComm<C> {
    fn drop(&mut self) {
        // Whatever is still held back has now "arrived late": release
        // it so peers retrying against a live-but-slow link see it.
        self.release_holdback(u64::MAX);
    }
}

impl<C: Comm> Comm for ChaosComm<C> {
    fn rank(&self) -> usize {
        self.inner().rank()
    }

    fn size(&self) -> usize {
        self.inner().size()
    }

    fn send(&mut self, to: usize, tag: Tag, payload: Bytes) {
        self.ops += 1;
        if self.crashed() {
            return;
        }
        let src = self.inner().rank();
        let k = self.link_seq[to];
        self.link_seq[to] += 1;
        let lf = self.plan.link_faults(src, to);
        self.stats.sent += 1;

        if self.plan.strikes(lf.drop_p, SALT_DROP, src, to, k) {
            self.stats.dropped += 1;
            self.tel_bump(tag, Counter::FaultsDropped);
        } else {
            let payload = if !payload.is_empty()
                && self.plan.strikes(lf.corrupt_p, SALT_CORRUPT, src, to, k)
            {
                self.stats.corrupted += 1;
                self.tel_bump(tag, Counter::FaultsCorrupted);
                let mut buf = payload.to_vec();
                let pos = self.plan.corrupt_pos(src, to, k, buf.len());
                buf[pos] ^= 0x55;
                Bytes::from(buf)
            } else {
                payload
            };
            if self.plan.strikes(lf.delay_p, SALT_DELAY, src, to, k) {
                self.stats.delayed += 1;
                self.tel_bump(tag, Counter::FaultsDelayed);
                self.holdback.push(Held {
                    op: self.ops,
                    to,
                    tag,
                    payload,
                });
            } else {
                if self.plan.strikes(lf.dup_p, SALT_DUP, src, to, k) {
                    self.stats.duplicated += 1;
                    self.tel_bump(tag, Counter::FaultsDuplicated);
                    self.inner_mut().send(to, tag, payload.clone());
                }
                self.inner_mut().send(to, tag, payload);
            }
        }
        // Release messages held at *earlier* operations only now, after
        // this send — so a delayed message genuinely lands behind newer
        // traffic on its link (reordering, not just latency).
        self.release_holdback(self.ops);
    }

    fn recv_timeout(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Bytes, CommError> {
        self.ops += 1;
        if self.crashed() {
            return Err(CommError::Crashed {
                rank: self.inner().rank(),
            });
        }
        self.release_holdback(self.ops);
        self.inner_mut().recv_timeout(from, tag, timeout)
    }

    fn recv_any_timeout(
        &mut self,
        sources: &[usize],
        tag: Tag,
        timeout: Duration,
    ) -> Result<(usize, Bytes), CommError> {
        self.ops += 1;
        if self.crashed() {
            return Err(CommError::Crashed {
                rank: self.inner().rank(),
            });
        }
        self.release_holdback(self.ops);
        self.inner_mut().recv_any_timeout(sources, tag, timeout)
    }

    fn discard(&mut self, sources: &[usize], tag: Tag) {
        if self.dark {
            return;
        }
        self.inner_mut().discard(sources, tag);
    }

    fn now(&self) -> f64 {
        self.inner().now()
    }

    fn charge_compute(&mut self, seconds: f64) {
        self.inner_mut().charge_compute(seconds);
    }

    fn note_traffic(&mut self, layer: u16, bytes: usize) {
        self.inner_mut().note_traffic(layer, bytes);
    }

    fn telemetry(&self) -> Option<&RankTelemetry> {
        self.inner.as_ref().and_then(|c| c.telemetry())
    }
}

impl<C: RawComm> RawComm for ChaosComm<C> {
    fn recv_raw_timeout(&mut self, timeout: Duration) -> Result<Option<RawMessage>, CommError> {
        self.ops += 1;
        if self.crashed() {
            return Err(CommError::Crashed {
                rank: self.inner().rank(),
            });
        }
        self.release_holdback(self.ops);
        self.inner_mut().recv_raw_timeout(timeout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::Phase;
    use crate::thread_comm::ThreadComm;

    fn tag(seq: u32) -> Tag {
        Tag::new(Phase::App, 0, seq)
    }

    fn pair() -> (ThreadComm, ThreadComm) {
        let mut v = ThreadComm::make_cluster(2);
        let b = v.pop().unwrap();
        let a = v.pop().unwrap();
        (a, b)
    }

    #[test]
    fn empty_plan_is_transparent() {
        let (a, mut b) = pair();
        let mut a = ChaosComm::new(a, FaultPlan::new(1));
        for i in 0..10 {
            a.send(1, tag(i), Bytes::from(vec![i as u8]));
        }
        for i in 0..10 {
            assert_eq!(b.recv(0, tag(i)).unwrap()[0], i as u8);
        }
        assert_eq!(a.stats().dropped, 0);
        assert_eq!(a.stats().sent, 10);
    }

    #[test]
    fn drop_rate_one_drops_everything() {
        let (a, mut b) = pair();
        let mut a = ChaosComm::new(a, FaultPlan::new(1).drop_rate(1.0));
        a.send(1, tag(0), Bytes::from_static(b"gone"));
        assert!(b
            .recv_timeout(0, tag(0), Duration::from_millis(30))
            .is_err());
        assert_eq!(a.stats().dropped, 1);
    }

    #[test]
    fn fault_decisions_are_deterministic() {
        let run = |seed: u64| -> (Vec<u32>, FaultStats) {
            let (a, mut b) = pair();
            let mut a = ChaosComm::new(a, FaultPlan::new(seed).drop_rate(0.4));
            for i in 0..64 {
                a.send(1, tag(i), Bytes::from(vec![i as u8]));
            }
            let mut got = Vec::new();
            for i in 0..64 {
                if b.recv_timeout(0, tag(i), Duration::from_millis(5)).is_ok() {
                    got.push(i);
                }
            }
            (got, a.stats())
        };
        let (g1, s1) = run(42);
        let (g2, s2) = run(42);
        assert_eq!(g1, g2);
        assert_eq!(s1, s2);
        assert!(s1.dropped > 0, "40% of 64 sends should drop some");
        assert!(g1.len() > 10, "most messages should survive");
        // A different seed picks different victims.
        let (g3, _) = run(43);
        assert_ne!(g1, g3);
    }

    #[test]
    fn corruption_flips_exactly_one_byte() {
        let (a, mut b) = pair();
        let mut a = ChaosComm::new(a, FaultPlan::new(9).corrupt_rate(1.0));
        let original = vec![0u8; 32];
        a.send(1, tag(0), Bytes::from(original.clone()));
        let got = b.recv(0, tag(0)).unwrap();
        let diffs: Vec<usize> = (0..32).filter(|&i| got[i] != original[i]).collect();
        assert_eq!(diffs.len(), 1, "exactly one byte flipped");
        assert_eq!(a.stats().corrupted, 1);
    }

    #[test]
    fn duplicates_deliver_twice() {
        let (a, mut b) = pair();
        let mut a = ChaosComm::new(a, FaultPlan::new(9).duplicate_rate(1.0));
        a.send(1, tag(0), Bytes::from_static(b"twin"));
        assert_eq!(&b.recv(0, tag(0)).unwrap()[..], b"twin");
        assert_eq!(&b.recv(0, tag(0)).unwrap()[..], b"twin");
        assert_eq!(a.stats().duplicated, 1);
    }

    #[test]
    fn delay_reorders_behind_next_message() {
        let (a, mut b) = pair();
        // Delay every message: each send holds its message and releases
        // the previously held one, so arrival order is shifted by one.
        let mut a = ChaosComm::new(a, FaultPlan::new(9).delay_rate(1.0));
        let t = tag(0);
        a.send(1, t, Bytes::from_static(b"first"));
        a.send(1, t, Bytes::from_static(b"second"));
        drop(a); // releases the still-held "second"
        assert_eq!(&b.recv(0, t).unwrap()[..], b"first");
        assert_eq!(&b.recv(0, t).unwrap()[..], b"second");
    }

    #[test]
    fn crash_after_ops_goes_dark() {
        let (a, mut b) = pair();
        let mut a = ChaosComm::new(a, FaultPlan::new(9).crash_after_ops(0, 2));
        a.send(1, tag(0), Bytes::from_static(b"alive"));
        a.send(1, tag(1), Bytes::from_static(b"never sent")); // op 2: crash fires
        assert!(a.stats().crashed);
        let err = a.recv_timeout(1, tag(9), Duration::from_millis(5));
        assert!(matches!(err, Err(CommError::Crashed { rank: 0 })));
        assert_eq!(&b.recv(0, tag(0)).unwrap()[..], b"alive");
        assert!(b
            .recv_timeout(0, tag(1), Duration::from_millis(30))
            .is_err());
    }

    #[test]
    fn crash_at_time_zero_is_dark_immediately() {
        let (a, _b) = pair();
        let mut a = ChaosComm::new(a, FaultPlan::new(9).crash_at(0, 0.0));
        let err = a.recv_timeout(1, tag(0), Duration::from_millis(5));
        assert!(matches!(err, Err(CommError::Crashed { rank: 0 })));
    }

    #[test]
    fn per_link_override_beats_default() {
        let plan = FaultPlan::new(5)
            .drop_rate(1.0)
            .link(0, 1, LinkFaults::none());
        assert_eq!(plan.link_faults(0, 1), LinkFaults::none());
        assert_eq!(plan.link_faults(1, 0).drop_p, 1.0);
    }

    #[test]
    fn checksum_detects_single_byte_flip() {
        let mut data = vec![7u8; 100];
        let c0 = checksum(&data);
        data[63] ^= 0x55;
        assert_ne!(c0, checksum(&data));
    }

    #[test]
    fn into_inner_releases_holdback() {
        let (a, mut b) = pair();
        let mut a = ChaosComm::new(a, FaultPlan::new(9).delay_rate(1.0));
        a.send(1, tag(0), Bytes::from_static(b"held"));
        let _inner = a.into_inner();
        assert_eq!(&b.recv(0, tag(0)).unwrap()[..], b"held");
    }
}
