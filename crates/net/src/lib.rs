#![warn(missing_docs)]

//! # kylix-net
//!
//! Message-passing substrate for the Kylix reproduction.
//!
//! The original Kylix is "modular and can be run self-contained … it does
//! not require an underlying distributed middleware like Hadoop or MPI"
//! (paper §I.B) — it talks plain Java sockets. This crate plays that
//! role: a deliberately small, MPI-free communicator abstraction
//! ([`comm::Comm`]) with *selective receive* (receive by source and tag,
//! buffering whatever else arrives), plus a real in-process cluster
//! ([`cluster::LocalCluster`]) that runs one OS thread per node over
//! crossbeam channels.
//!
//! Two implementations of [`comm::Comm`] exist in the workspace:
//!
//! * [`thread_comm::ThreadComm`] (here) — real concurrent execution,
//!   wall-clock time; used for correctness tests and real benches.
//! * `kylix-netsim`'s `SimComm` — the same protocol code running over a
//!   virtual-time NIC cost model of a commodity 10 Gb/s cluster; used to
//!   reproduce the paper's timing figures.
//!
//! Because every protocol in the workspace is written against the trait,
//! the *identical* code path is exercised both ways.

pub mod cluster;
pub mod comm;
pub mod tag;
pub mod thread_comm;

pub use cluster::LocalCluster;
pub use comm::{Comm, CommError, PatienceComm};
pub use tag::{Phase, Tag};
pub use thread_comm::ThreadComm;
