#![warn(missing_docs)]

//! # kylix-net
//!
//! Message-passing substrate for the Kylix reproduction.
//!
//! The original Kylix is "modular and can be run self-contained … it does
//! not require an underlying distributed middleware like Hadoop or MPI"
//! (paper §I.B) — it talks plain Java sockets. This crate plays that
//! role: a deliberately small, MPI-free communicator abstraction
//! ([`comm::Comm`]) with *selective receive* (receive by source and tag,
//! buffering whatever else arrives), plus a real in-process cluster
//! ([`cluster::LocalCluster`]) that runs one OS thread per node over
//! crossbeam channels.
//!
//! Three implementations of [`comm::Comm`] exist in the workspace:
//!
//! * [`thread_comm::ThreadComm`] (here) — real concurrent execution over
//!   in-process channels, wall-clock time; used for correctness tests
//!   and real benches.
//! * [`tcp_comm::TcpComm`] (here) — real concurrent execution over
//!   loopback TCP sockets with length-prefixed frames ([`frame`]),
//!   exercising the OS network stack: kernel buffering, torn reads,
//!   connection teardown.
//! * `kylix-netsim`'s `SimComm` — the same protocol code running over a
//!   virtual-time NIC cost model of a commodity 10 Gb/s cluster; used to
//!   reproduce the paper's timing figures.
//!
//! Because every protocol in the workspace is written against the trait,
//! the *identical* code path is exercised all three ways, and the
//! differential test suite demands identical reduction results and
//! send-side telemetry from each substrate.
//!
//! ## Faults and reliability
//!
//! Commodity clusters misbehave, and this crate makes that misbehaviour
//! an injectable, reproducible input:
//!
//! * [`fault::FaultPlan`] — a seeded, fully deterministic description
//!   of per-link drop/duplicate/corrupt/delay probabilities and
//!   per-node mid-run crashes;
//! * [`fault::ChaosComm`] — a wrapper applying a plan to any `Comm`;
//! * [`reliable::ReliableComm`] — acked, checksummed, retransmitting
//!   delivery that makes protocols complete over lossy links.
//!
//! The wrappers compose: `ReplicatedComm<ReliableComm<ChaosComm<…>>>`
//! survives node crashes *and* message loss at once.

pub mod cluster;
pub mod comm;
pub mod fault;
pub mod frame;
pub mod reliable;
pub mod tag;
pub mod tcp_comm;
pub mod thread_comm;

pub use cluster::LocalCluster;
pub use comm::{Comm, CommError, PatienceComm, RawComm, RawMessage};
pub use fault::{checksum, ChaosComm, Crash, FaultPlan, FaultStats, LinkFaults};
pub use frame::{encode_frame, FrameDecoder, FrameError, FRAME_HEADER, MAX_FRAME_BYTES};
pub use reliable::{ReliableComm, ReliableStats, RetryConfig};
pub use tag::{Phase, Tag};
pub use tcp_comm::{TcpCluster, TcpComm};
pub use thread_comm::ThreadComm;

/// Re-export of the cross-substrate telemetry facility, so protocol
/// crates written against [`Comm`] can name counter kinds and build
/// [`telemetry::Telemetry`] instances without a separate dependency.
pub use kylix_telemetry as telemetry;
