//! Stress and edge-case tests for the thread cluster: many tags, many
//! messages, interleaved selective receives, patience wrappers.

use bytes::Bytes;
use kylix_net::{Comm, LocalCluster, PatienceComm, Phase, Tag};
use kylix_sparse::Xoshiro256;
use std::time::Duration;

fn t(layer: u16, seq: u32) -> Tag {
    Tag::new(Phase::App, layer, seq)
}

/// Every pair exchanges hundreds of messages over interleaved tags in a
/// random receive order; nothing is lost, nothing is misdelivered.
#[test]
fn interleaved_tags_random_receive_order() {
    let m = 4;
    let per_pair = 64u32;
    let results = LocalCluster::run(m, |mut comm| {
        let me = comm.rank();
        // Send: payload encodes (src, dst, seq).
        for dst in 0..m {
            if dst == me {
                continue;
            }
            for seq in 0..per_pair {
                let payload = vec![me as u8, dst as u8, seq as u8];
                comm.send(dst, t((seq % 4) as u16, seq), Bytes::from(payload));
            }
        }
        // Receive in a per-node shuffled order of (src, seq).
        let mut order: Vec<(usize, u32)> = (0..m)
            .filter(|&s| s != me)
            .flat_map(|s| (0..per_pair).map(move |q| (s, q)))
            .collect();
        let mut rng = Xoshiro256::new(me as u64 + 100);
        rng.shuffle(&mut order);
        let mut ok = 0usize;
        for (src, seq) in order {
            let payload = comm.recv(src, t((seq % 4) as u16, seq)).unwrap();
            assert_eq!(payload.as_ref(), &[src as u8, me as u8, seq as u8]);
            ok += 1;
        }
        ok
    });
    assert!(results.iter().all(|&ok| ok == 3 * 64));
}

/// Zero-length payloads work.
#[test]
fn empty_payloads_round_trip() {
    let out = LocalCluster::run(2, |mut comm| {
        if comm.rank() == 0 {
            comm.send(1, t(0, 0), Bytes::new());
            0
        } else {
            comm.recv(0, t(0, 0)).unwrap().len()
        }
    });
    assert_eq!(out[1], 0);
}

/// Sending to self works through the mailbox.
#[test]
fn self_send_is_received() {
    let out = LocalCluster::run(1, |mut comm| {
        comm.send(0, t(0, 0), Bytes::from_static(b"loop"));
        comm.recv(0, t(0, 0)).unwrap().to_vec()
    });
    assert_eq!(out[0], b"loop");
}

/// PatienceComm bounds receives and is transparent otherwise.
#[test]
fn patience_comm_bounds_and_forwards() {
    let out = LocalCluster::run(2, |comm| {
        let mut pc = PatienceComm::new(comm, Duration::from_millis(40));
        if pc.rank() == 0 {
            pc.send(1, t(0, 0), Bytes::from_static(b"hi"));
            // Waiting on a message that never comes: bounded.
            let start = std::time::Instant::now();
            let err = pc.recv(1, t(9, 9)).unwrap_err();
            (start.elapsed() < Duration::from_secs(5), format!("{err}"))
        } else {
            let got = pc.recv(0, t(0, 0)).unwrap();
            (got.as_ref() == b"hi", String::new())
        }
    });
    assert!(out[0].0, "patience was not honoured: {}", out[0].1);
    assert!(out[1].0);
}

/// Large payloads (multi-megabyte) survive intact.
#[test]
fn large_payload_integrity() {
    let n = 4 << 20; // 4 MiB
    let out = LocalCluster::run(2, |mut comm| {
        if comm.rank() == 0 {
            let data: Vec<u8> = (0..n).map(|i| (i * 31 % 251) as u8).collect();
            comm.send(1, t(0, 0), Bytes::from(data));
            true
        } else {
            let got = comm.recv(0, t(0, 0)).unwrap();
            got.len() == n
                && got
                    .iter()
                    .enumerate()
                    .all(|(i, &b)| b == (i * 31 % 251) as u8)
        }
    });
    assert!(out[1]);
}

/// recv_any across many senders drains every copy exactly once.
#[test]
fn recv_any_drains_all_copies() {
    let m = 5;
    let out = LocalCluster::run(m, |mut comm| {
        let me = comm.rank();
        if me == 0 {
            let sources: Vec<usize> = (1..m).collect();
            let mut seen = Vec::new();
            for _ in 1..m {
                let (src, payload) = comm.recv_any(&sources, t(0, 0)).unwrap();
                assert_eq!(payload[0] as usize, src);
                seen.push(src);
            }
            seen.sort_unstable();
            seen
        } else {
            comm.send(0, t(0, 0), Bytes::from(vec![me as u8]));
            Vec::new()
        }
    });
    assert_eq!(out[0], vec![1, 2, 3, 4]);
}
