//! Property tests on the simulator's physics: serialization, worker
//! pools, jitter, and the relationships between them.

use bytes::Bytes;
use kylix_net::{Comm, Phase, Tag};
use kylix_netsim::{NicModel, SimCluster};
use proptest::prelude::*;

fn t(seq: u32) -> Tag {
    Tag::new(Phase::App, 0, seq)
}

/// Stream `count` messages of `bytes` from 0 to 1; return receiver's
/// final clock.
fn stream_time(nic: NicModel, count: u32, bytes: usize, seed: u64) -> f64 {
    let cluster = SimCluster::new(2, nic).seed(seed);
    cluster.run_all(|mut c| {
        if c.rank() == 0 {
            for i in 0..count {
                c.send(1, t(i), Bytes::from(vec![0u8; bytes]));
            }
            0.0
        } else {
            for i in 0..count {
                c.recv(0, t(i)).unwrap();
            }
            c.now()
        }
    })[1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// More messages can never finish earlier.
    #[test]
    fn monotone_in_message_count(count in 1u32..20, bytes in 1usize..50_000) {
        let nic = NicModel::ec2_10g_nojitter();
        let a = stream_time(nic, count, bytes, 1);
        let b = stream_time(nic, count + 1, bytes, 1);
        prop_assert!(b >= a, "{count} msgs: {a} vs {}: {b}", count + 1);
    }

    /// Bigger payloads can never finish earlier.
    #[test]
    fn monotone_in_bytes(count in 1u32..10, bytes in 1usize..50_000) {
        let nic = NicModel::ec2_10g_nojitter();
        let a = stream_time(nic, count, bytes, 1);
        let b = stream_time(nic, count, bytes * 2, 1);
        prop_assert!(b >= a);
    }

    /// More workers can never hurt.
    #[test]
    fn monotone_in_workers(count in 2u32..16, workers in 1usize..8) {
        let mut nic = NicModel::ideal(1e9);
        nic.cpu_per_msg = 1e-3;
        let slow = stream_time(nic.with_workers(workers), count, 1000, 1);
        let fast = stream_time(nic.with_workers(workers * 2), count, 1000, 1);
        prop_assert!(fast <= slow + 1e-12);
    }

    /// Virtual time equals the closed form for a single message.
    #[test]
    fn single_message_closed_form(bytes in 1usize..10_000_000) {
        let nic = NicModel::ec2_10g_nojitter();
        let got = stream_time(nic, 1, bytes, 1);
        let want = nic.xfer_time(bytes) + nic.latency + nic.proc_time(bytes);
        prop_assert!((got - want).abs() < 1e-12, "{got} vs {want}");
    }

    /// Jitter is always a positive multiplier: payload delivery still
    /// happens and results stay deterministic per seed.
    #[test]
    fn jitter_keeps_time_finite_and_deterministic(seed in 0u64..1000) {
        let nic = NicModel::ec2_10g().with_jitter(2.0);
        let a = stream_time(nic, 5, 10_000, seed);
        let b = stream_time(nic, 5, 10_000, seed);
        prop_assert!(a.is_finite() && a > 0.0);
        prop_assert_eq!(a, b);
    }
}

/// The NIC serialises sends: the receiver cannot drain `k` messages
/// faster than the sender's NIC can emit them.
#[test]
fn sender_nic_is_the_floor() {
    let nic = NicModel::ec2_10g_nojitter();
    let k = 16u32;
    let bytes = 250_000;
    let total = stream_time(nic, k, bytes, 1);
    let emit_floor = k as f64 * nic.xfer_time(bytes);
    assert!(
        total >= emit_floor,
        "drained in {total}, but emission takes {emit_floor}"
    );
    // And with plentiful workers it is within one latency+proc of it.
    assert!(total <= emit_floor + nic.latency + nic.proc_time(bytes) + 1e-9);
}

/// Two independent sender pairs do not interact: times match a single
/// pair run (no false sharing between unrelated flows).
#[test]
fn independent_flows_do_not_interfere() {
    let nic = NicModel::ec2_10g_nojitter();
    let single = stream_time(nic, 8, 100_000, 3);
    let cluster = SimCluster::new(4, nic).seed(3);
    let times = cluster.run_all(|mut c| match c.rank() {
        0 => {
            for i in 0..8 {
                c.send(1, t(i), Bytes::from(vec![0u8; 100_000]));
            }
            0.0
        }
        2 => {
            for i in 0..8 {
                c.send(3, t(i), Bytes::from(vec![0u8; 100_000]));
            }
            0.0
        }
        r => {
            let from = r - 1;
            for i in 0..8 {
                c.recv(from, t(i)).unwrap();
            }
            c.now()
        }
    });
    assert!((times[1] - single).abs() < 1e-12);
    assert!((times[3] - single).abs() < 1e-12);
}

/// Tracing records every simulated message with coherent timestamps.
#[test]
fn trace_records_all_messages() {
    let nic = NicModel::ec2_10g_nojitter();
    let cluster = SimCluster::new(3, nic).traced();
    cluster.run_all(|mut c| {
        let me = c.rank();
        for to in 0..3 {
            if to != me {
                c.send(to, t(me as u32), Bytes::from(vec![0u8; 1000]));
            }
        }
        for from in 0..3 {
            if from != me {
                c.recv(from, t(from as u32)).unwrap();
            }
        }
    });
    let trace = cluster.trace().expect("tracing enabled");
    let events = trace.events();
    assert_eq!(events.len(), 6, "3 nodes x 2 peers");
    for e in &events {
        assert!(e.deliver_t > e.emit_t, "delivery after emission");
        assert_eq!(e.bytes, 1000);
        assert_ne!(e.src, e.dst);
    }
    let summary = trace.layer_summary();
    assert_eq!(summary.len(), 1);
    assert_eq!(summary[0].messages, 6);
    assert_eq!(summary[0].mean_packet(), 1000.0);
}

/// A straggler slows its own path proportionally and cannot speed
/// anything up.
#[test]
fn stragglers_slow_their_paths() {
    let nic = NicModel::ec2_10g_nojitter();
    let nominal = {
        let cluster = SimCluster::new(2, nic);
        cluster.run_all(|mut c| {
            if c.rank() == 0 {
                c.send(1, t(0), Bytes::from(vec![0u8; 100_000]));
                0.0
            } else {
                c.recv(0, t(0)).unwrap();
                c.now()
            }
        })[1]
    };
    let slowed = {
        let cluster = SimCluster::new(2, nic).stragglers(&[(0, 3.0)]);
        cluster.run_all(|mut c| {
            if c.rank() == 0 {
                c.send(1, t(0), Bytes::from(vec![0u8; 100_000]));
                0.0
            } else {
                c.recv(0, t(0)).unwrap();
                c.now()
            }
        })[1]
    };
    assert!(slowed > nominal * 1.5, "{nominal} -> {slowed}");
    // Sender emission tripled; receive path unchanged.
    let expect = 3.0 * nic.xfer_time(100_000) + nic.latency + nic.proc_time(100_000);
    assert!((slowed - expect).abs() < 1e-12, "{slowed} vs {expect}");
}
