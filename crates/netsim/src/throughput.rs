//! Effective-throughput curves (paper Fig. 2).
//!
//! The paper measures, on its EC2 testbed, the achieved throughput of a
//! message stream as a function of packet size: small packets waste the
//! link on per-message overhead, and ≈5 MB is the smallest size that
//! masks it. We regenerate the curve two ways — in closed form from the
//! NIC model and *measured* through the simulator by streaming packets
//! between two simulated nodes — and the tests pin them to each other.

use crate::nic::NicModel;
use crate::simcomm::SimCluster;
use bytes::Bytes;
use kylix_net::{Comm, Phase, Tag};

/// One point of the Fig. 2 curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputPoint {
    /// Packet size, bytes.
    pub packet_bytes: usize,
    /// Achieved throughput, bytes/second.
    pub throughput: f64,
    /// Fraction of the link's peak bandwidth.
    pub utilisation: f64,
}

/// Measure achieved throughput by streaming `count` packets of
/// `packet_bytes` from one simulated node to another and dividing the
/// total payload by the virtual completion time.
pub fn measure_throughput(nic: NicModel, packet_bytes: usize, count: usize) -> ThroughputPoint {
    assert!(count > 0);
    let cluster = SimCluster::new(2, nic);
    let times = cluster.run_all(|mut c| {
        if c.rank() == 0 {
            for i in 0..count {
                c.send(
                    1,
                    Tag::new(Phase::App, 0, i as u32),
                    Bytes::from(vec![0u8; packet_bytes]),
                );
            }
            0.0
        } else {
            for i in 0..count {
                c.recv(0, Tag::new(Phase::App, 0, i as u32)).unwrap();
            }
            c.now()
        }
    });
    let total = (packet_bytes * count) as f64;
    let throughput = total / times[1];
    ThroughputPoint {
        packet_bytes,
        throughput,
        utilisation: throughput / nic.bandwidth,
    }
}

/// The standard Fig. 2 sweep: packet sizes from 64 KB to 32 MB.
pub fn fig2_packet_sizes() -> Vec<usize> {
    let mut v = Vec::new();
    let mut p = 64 * 1024;
    while p <= 32 * 1024 * 1024 {
        v.push(p);
        p *= 2;
    }
    v
}

/// Regenerate the Fig. 2 series: measured throughput at each packet
/// size, streaming enough packets to amortise warmup and the trailing
/// receive-processing tail.
pub fn fig2_series(nic: NicModel) -> Vec<ThroughputPoint> {
    fig2_packet_sizes()
        .into_iter()
        .map(|p| measure_throughput(nic, p, 64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_matches_closed_form() {
        let nic = NicModel::ec2_10g_nojitter();
        for &p in &[100_000usize, 1_000_000, 8_000_000] {
            let measured = measure_throughput(nic, p, 32);
            let closed = nic.effective_throughput(p);
            // Streaming amortises latency/processing of all but the last
            // packet; allow a few percent of tail effect.
            let rel = (measured.throughput - closed).abs() / closed;
            assert!(
                rel < 0.1,
                "{p}B: measured {} vs model {closed}",
                measured.throughput
            );
        }
    }

    #[test]
    fn fig2_shape_rises_and_saturates() {
        let pts = fig2_series(NicModel::ec2_10g_nojitter());
        for w in pts.windows(2) {
            assert!(
                w[1].throughput >= w[0].throughput * 0.99,
                "throughput should not drop with packet size"
            );
        }
        let first = pts.first().unwrap();
        let last = pts.last().unwrap();
        assert!(first.utilisation < 0.15, "64KB should be inefficient");
        assert!(last.utilisation > 0.9, "32MB should saturate");
    }

    #[test]
    fn five_megabyte_is_minimum_efficient() {
        // The paper's threshold: ≈5 MB packets reach ≥80 % of peak.
        let nic = NicModel::ec2_10g_nojitter();
        let at5 = measure_throughput(nic, 5_000_000, 16);
        assert!(at5.utilisation > 0.75, "5MB: {}", at5.utilisation);
        let at04 = measure_throughput(nic, 400_000, 16);
        assert!(
            (0.2..0.4).contains(&at04.utilisation),
            "0.4MB: {}",
            at04.utilisation
        );
    }
}
