#![warn(missing_docs)]

//! # kylix-netsim
//!
//! A virtual-time simulator of a commodity cluster network — the
//! stand-in for the paper's 64-node Amazon EC2 (cc2.8xlarge, 10 Gb/s
//! Ethernet) testbed.
//!
//! ## Why simulate
//!
//! Every timing result in the paper (Figs. 2, 6, 7, 8, 9 and Table I) is
//! a *communication-cost* phenomenon: fixed per-message overhead makes
//! small packets inefficient (Fig. 2), which penalises direct all-to-all
//! topologies whose packet size shrinks as `1/m²` (Fig. 6), while
//! per-message CPU work divides across receive workers (Fig. 7) and
//! replica "packet racing" absorbs latency outliers (Table I). All of
//! those follow from a small cost model, which this crate implements and
//! the experiment harness calibrates to the paper's published curve.
//!
//! ## How it works
//!
//! The protocol code (written against `kylix_net::Comm`) runs for real on
//! one thread per simulated node; only *time* is virtual. Each node keeps
//! a local virtual clock, a NIC-free time, and a pool of receive-worker
//! free times. A send stamps its message with a delivery time computed
//! from the sender's state and the [`nic::NicModel`]; a receive advances
//! the receiver's clock to the message's processed-at time. Because
//! every timestamp is computed deterministically (jitter is hashed from
//! `(seed, src, dst, seq)`), a run is bit-reproducible regardless of OS
//! scheduling — a property the tests assert.
//!
//! This is the classic "timestamp piggybacking" conservative simulation:
//! no global event queue is needed because a message's delivery time is
//! fully determined at send time, and selective receives impose program
//! order on the receive side.
//!
//! Modules:
//! * [`nic`] — the LogGP-style NIC/link cost model and EC2 presets.
//! * [`simcomm`] — [`simcomm::SimComm`] (implements `Comm`) and
//!   [`simcomm::SimCluster`] (thread-per-node runner with failure
//!   injection).
//! * [`stats`] — shared per-layer traffic accounting (Fig. 5).
//! * [`throughput`] — effective-throughput curves (Fig. 2) both closed
//!   form and measured through the simulator.

pub mod nic;
pub mod simcomm;
pub mod stats;
pub mod throughput;
pub mod trace;

pub use nic::NicModel;
pub use simcomm::{SimCluster, SimComm};
pub use stats::{TrafficReport, TrafficStats};
pub use trace::{LayerSummary, Trace, TraceEvent};
