//! Message-level tracing of simulated runs.
//!
//! When enabled on a [`crate::SimCluster`], every message the simulator
//! carries is recorded as a [`TraceEvent`] (source, destination, tag,
//! payload size, virtual send/delivery times). Traces make the timing
//! experiments auditable — e.g. Fig. 6's claim that the direct topology
//! drowns in small packets can be *read off* the trace — and they feed
//! the per-layer Gantt summaries the `figures` binary can print.

use kylix_net::Tag;
use parking_lot::Mutex;
use std::sync::Arc;

/// One simulated message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Message tag.
    pub tag: Tag,
    /// Payload bytes.
    pub bytes: usize,
    /// Virtual time the sender's NIC started emitting.
    pub emit_t: f64,
    /// Virtual delivery time at the receiver.
    pub deliver_t: f64,
}

/// A shared, append-only trace buffer.
#[derive(Debug, Default)]
pub struct Trace {
    events: Mutex<Vec<TraceEvent>>,
}

impl Trace {
    /// New shared trace.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Append one event (called by the simulator on every send).
    pub fn record(&self, event: TraceEvent) {
        self.events.lock().push(event);
    }

    /// Snapshot all events, ordered by emission time.
    pub fn events(&self) -> Vec<TraceEvent> {
        let mut v = self.events.lock().clone();
        v.sort_by(|a, b| a.emit_t.partial_cmp(&b.emit_t).expect("finite times"));
        v
    }

    /// Number of recorded messages.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    /// Summarise per protocol layer: message count, total bytes, mean
    /// packet size, and the time span from first emission to last
    /// delivery.
    pub fn layer_summary(&self) -> Vec<LayerSummary> {
        use std::collections::BTreeMap;
        let mut by_layer: BTreeMap<u16, LayerSummary> = BTreeMap::new();
        for e in self.events.lock().iter() {
            let s = by_layer.entry(e.tag.layer()).or_insert(LayerSummary {
                layer: e.tag.layer(),
                messages: 0,
                bytes: 0,
                first_emit: f64::INFINITY,
                last_deliver: 0.0,
            });
            s.messages += 1;
            s.bytes += e.bytes as u64;
            s.first_emit = s.first_emit.min(e.emit_t);
            s.last_deliver = s.last_deliver.max(e.deliver_t);
        }
        by_layer.into_values().collect()
    }
}

/// Aggregate of one layer's traced messages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerSummary {
    /// Layer id (from the message tags).
    pub layer: u16,
    /// Messages carried.
    pub messages: u64,
    /// Total payload bytes.
    pub bytes: u64,
    /// Virtual time the first message started emitting.
    pub first_emit: f64,
    /// Virtual time the last message was delivered.
    pub last_deliver: f64,
}

impl LayerSummary {
    /// Mean packet size in bytes.
    pub fn mean_packet(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.bytes as f64 / self.messages as f64
        }
    }

    /// Wall span of the layer in virtual seconds.
    pub fn span(&self) -> f64 {
        (self.last_deliver - self.first_emit).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix_net::Phase;

    fn ev(layer: u16, bytes: usize, emit: f64, deliver: f64) -> TraceEvent {
        TraceEvent {
            src: 0,
            dst: 1,
            tag: Tag::new(Phase::App, layer, 0),
            bytes,
            emit_t: emit,
            deliver_t: deliver,
        }
    }

    #[test]
    fn events_sorted_by_emit() {
        let t = Trace::new_shared();
        t.record(ev(0, 10, 2.0, 3.0));
        t.record(ev(0, 10, 1.0, 2.0));
        let evs = t.events();
        assert_eq!(evs[0].emit_t, 1.0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn layer_summary_aggregates() {
        let t = Trace::new_shared();
        t.record(ev(0, 100, 0.0, 1.0));
        t.record(ev(0, 300, 0.5, 2.0));
        t.record(ev(1, 50, 2.0, 2.5));
        let s = t.layer_summary();
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].messages, 2);
        assert_eq!(s[0].bytes, 400);
        assert_eq!(s[0].mean_packet(), 200.0);
        assert!((s[0].span() - 2.0).abs() < 1e-12);
        assert_eq!(s[1].messages, 1);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new_shared();
        assert!(t.is_empty());
        assert!(t.layer_summary().is_empty());
    }
}
