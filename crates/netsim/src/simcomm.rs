//! The virtual-time communicator and cluster runner.
//!
//! `SimComm` implements `kylix_net::Comm` so that the *same* protocol
//! code that runs on the real thread cluster runs here, but clocks are
//! virtual: each node advances a local clock from the cost model in
//! [`crate::nic::NicModel`] rather than from wall time.
//!
//! ### Timing model
//!
//! * **send** — the message occupies the sender's NIC for
//!   `overhead + bytes/bandwidth` starting at
//!   `max(local_clock, nic_free)`; it is *delivered* one latency (plus
//!   deterministic lognormal jitter) after leaving the NIC. Sends are
//!   asynchronous: the local clock does not advance (the paper's sender
//!   threads fire all messages concurrently, §VI.B).
//! * **recv** — the payload must be processed (deserialised/merged)
//!   before the protocol can use it: processing takes
//!   `cpu_per_msg + bytes·cpu_per_byte` on the first free worker of the
//!   node's pool, starting no earlier than delivery. The receiver's
//!   clock advances to `max(local_clock, processed_at)`. The worker pool
//!   is what reproduces the paper's thread-count effect (Fig. 7).
//! * **recv_any** — models the replicas' *packet race* (§V.B): the race
//!   waits until every live candidate's copy is in (or the candidate is
//!   known dead) and the earliest virtual delivery wins. Only the winner
//!   is consumed and processed; losing copies stay in the stash for the
//!   caller to [`Comm::discard`], like the paper's cancelled listener
//!   threads. Taking the minimum of jittered delivery times is exactly
//!   the latency-variance absorption the paper credits racing with.
//!
//! Jitter is hashed from `(seed, src, dst, per-pair sequence)`, so a
//! simulation is bit-reproducible regardless of OS scheduling.
//!
//! ### Failure model
//!
//! Liveness is dynamic: a shared table of atomic flags, one per rank.
//! Ranks listed as dead from the start never run and never send.
//! Mid-run crashes ([`SimCluster::crash_at`]) let a rank run normally
//! until its virtual clock reaches the crash time, then turn it *dark*:
//! its flag drops, sends are swallowed, and its own receives return
//! `CommError::Crashed`. A crashing rank completes all sends it issued
//! before the crash (fail-stop: it stops talking, it does not babble),
//! and receivers observe the liveness flip only after those sends are
//! visible, so a race never misses a message from a peer it just
//! declared dead. A selective `recv` from a dead rank fails with
//! `Timeout` (promptly once the death is observed) — the unreplicated
//! protocol has no defence, which is the paper's motivation for §V.
//! `recv_any` excludes dead candidates so the race completes as soon as
//! every *live* replica's copy is in.

use crate::nic::NicModel;
use crate::stats::TrafficReport;
use crate::trace::{Trace, TraceEvent};
use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use kylix_net::{Comm, CommError, FaultPlan, RawComm, RawMessage, Tag};
use kylix_sparse::hash::mix_many;
use kylix_telemetry::{Clock, Counter, RankTelemetry, Telemetry};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Cap on remembered not-yet-arrived discards (see `ThreadComm`).
const MAX_PENDING_DISCARDS: usize = 4096;

/// Poll interval for re-checking liveness flags while blocked: a peer
/// crashing mid-run flips a flag but sends nothing to wake us.
const LIVENESS_POLL: Duration = Duration::from_millis(2);

/// A simulated in-flight message: payload plus virtual delivery time.
struct SimEnvelope {
    src: usize,
    tag: Tag,
    deliver_t: f64,
    payload: Bytes,
}

/// Virtual-time communicator endpoint for one simulated node.
pub struct SimComm {
    rank: usize,
    size: usize,
    nic: NicModel,
    seed: u64,
    senders: Arc<Vec<Sender<SimEnvelope>>>,
    rx: Receiver<SimEnvelope>,
    alive: Arc<Vec<AtomicBool>>,
    /// This rank's telemetry shard (always present: the cluster owns a
    /// virtual-clock `Telemetry`, and `traffic()` is a view over it).
    shard: Arc<RankTelemetry>,
    trace: Option<Arc<Trace>>,
    stash: HashMap<(usize, Tag), VecDeque<(f64, Bytes)>>,
    /// Discards registered before the matching message arrived.
    pending_discards: HashMap<(usize, Tag), u32>,
    discard_order: VecDeque<(usize, Tag)>,
    /// Node-local virtual clock (seconds).
    t_local: f64,
    /// Virtual time at which the NIC finishes its queued sends.
    nic_free: f64,
    /// Virtual free times of the receive-processing workers.
    workers: Vec<f64>,
    /// Per-destination message counters feeding the jitter hash.
    seqs: Vec<u64>,
    /// This node's straggler factor: all its NIC/CPU times are
    /// multiplied by it (1.0 = nominal).
    slowdown: f64,
    /// Virtual time at which this node crashes, if ever.
    crash_t: Option<f64>,
    /// Set once the crash has fired: the endpoint is dark.
    dark: bool,
}

impl SimComm {
    fn jitter(&mut self, to: usize) -> f64 {
        if self.nic.jitter_sigma == 0.0 {
            return 1.0;
        }
        let seq = self.seqs[to];
        self.seqs[to] += 1;
        // Two hashed uniforms -> one standard normal (Box–Muller).
        let h1 = mix_many(&[self.seed, self.rank as u64, to as u64, seq, 1]);
        let h2 = mix_many(&[self.seed, self.rank as u64, to as u64, seq, 2]);
        let u1 = ((h1 >> 11) as f64 + 1.0) / (1u64 << 53) as f64; // (0,1]
        let u2 = (h2 >> 11) as f64 / (1u64 << 53) as f64;
        let g = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        (self.nic.jitter_sigma * g).exp()
    }

    /// Process a delivered message through the worker pool; returns the
    /// virtual time at which its contents become usable.
    fn process(&mut self, deliver_t: f64, bytes: usize) -> f64 {
        let proc = self.nic.proc_time(bytes) * self.slowdown;
        // First free worker (ties broken by index — deterministic).
        let (w, &free) = self
            .workers
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
            .expect("at least one worker");
        let done = deliver_t.max(free) + proc;
        self.workers[w] = done;
        done
    }

    /// Whether this node's crash event has fired. Checked on entry to
    /// every communicator operation; once dark, always dark.
    fn crashed(&mut self) -> bool {
        if self.dark {
            return true;
        }
        if let Some(ct) = self.crash_t {
            if self.t_local >= ct {
                self.dark = true;
                // SeqCst: every send this node issued happened-before
                // this store, so a peer that observes the flag down and
                // then drains its channel has seen all our messages.
                self.alive[self.rank].store(false, Ordering::SeqCst);
            }
        }
        self.dark
    }

    fn is_alive(&self, rank: usize) -> bool {
        self.alive[rank].load(Ordering::SeqCst)
    }

    fn take_stashed(&mut self, from: usize, tag: Tag) -> Option<(f64, Bytes)> {
        let q = self.stash.get_mut(&(from, tag))?;
        let item = q.pop_front();
        if q.is_empty() {
            self.stash.remove(&(from, tag));
        }
        if let Some((_, p)) = &item {
            // Every delivery funnels through here (the simulator has no
            // direct-delivery path), so this is the one receive-side
            // accounting point.
            self.shard
                .add(tag.phase(), tag.layer(), Counter::BytesRecv, p.len() as u64);
            self.shard
                .add(tag.phase(), tag.layer(), Counter::MsgsRecv, 1);
        }
        item
    }

    /// Route one arrival: either it satisfies a pending discard and is
    /// dropped, or it joins the stash.
    fn accept(&mut self, env: SimEnvelope) {
        if self.consume_pending_discard(env.src, env.tag) {
            // Consumed on the caller's behalf: counts as a delivery.
            self.shard.add(
                env.tag.phase(),
                env.tag.layer(),
                Counter::BytesRecv,
                env.payload.len() as u64,
            );
            self.shard
                .add(env.tag.phase(), env.tag.layer(), Counter::MsgsRecv, 1);
            return;
        }
        // Note: unlike `ThreadComm` (which counts only out-of-order
        // arrivals), every simulator arrival parks here — the stash is
        // its sole arrival queue — so cross-substrate comparisons should
        // stick to the send-side counters.
        self.shard
            .add(env.tag.phase(), env.tag.layer(), Counter::StashParks, 1);
        self.stash
            .entry((env.src, env.tag))
            .or_default()
            .push_back((env.deliver_t, env.payload));
    }

    fn consume_pending_discard(&mut self, src: usize, tag: Tag) -> bool {
        match self.pending_discards.get_mut(&(src, tag)) {
            Some(n) => {
                *n -= 1;
                if *n == 0 {
                    self.pending_discards.remove(&(src, tag));
                }
                true
            }
            None => false,
        }
    }

    fn drain_channel(&mut self) {
        while let Ok(env) = self.rx.try_recv() {
            self.accept(env);
        }
    }

    /// Number of messages currently held in the out-of-order stash.
    /// Exposed for leak tests.
    pub fn stash_len(&self) -> usize {
        self.stash.values().map(|q| q.len()).sum()
    }

    /// Block (in real time) until a message from `from` with `tag` is
    /// available; returns its virtual delivery time and payload. Fails
    /// promptly (with `Timeout`) once `from` is observed dead with no
    /// matching message left.
    fn await_raw(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<(f64, Bytes), CommError> {
        let deadline = Instant::now() + timeout;
        let mut seen_dead = false;
        loop {
            self.drain_channel();
            if let Some(item) = self.take_stashed(from, tag) {
                return Ok(item);
            }
            if seen_dead {
                // The flag was down on a previous iteration and we have
                // re-drained since: every message the peer ever sent is
                // accounted for, and none matched.
                return Err(CommError::Timeout { from, tag });
            }
            seen_dead = !self.is_alive(from);
            if seen_dead {
                continue; // re-drain once after observing the death
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CommError::Timeout { from, tag });
            }
            match self.rx.recv_timeout(remaining.min(LIVENESS_POLL)) {
                Ok(env) => self.accept(env),
                Err(RecvTimeoutError::Timeout) => {} // poll liveness again
                Err(RecvTimeoutError::Disconnected) => return Err(CommError::Closed),
            }
        }
    }
}

impl Comm for SimComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn send(&mut self, to: usize, tag: Tag, payload: Bytes) {
        debug_assert!(to < self.size, "rank {to} out of range");
        if self.crashed() {
            return;
        }
        // Counted before the receiver-liveness check, like the thread
        // substrate: traffic is charged when the sender commits it.
        self.shard.add(
            tag.phase(),
            tag.layer(),
            Counter::BytesSent,
            payload.len() as u64,
        );
        self.shard
            .add(tag.phase(), tag.layer(), Counter::MsgsSent, 1);
        let start = self.t_local.max(self.nic_free);
        let xfer = self.nic.xfer_time(payload.len()) * self.slowdown;
        self.nic_free = start + xfer;
        let deliver_t = start + xfer + self.nic.latency * self.jitter(to);
        if let Some(trace) = &self.trace {
            trace.record(TraceEvent {
                src: self.rank,
                dst: to,
                tag,
                bytes: payload.len(),
                emit_t: start,
                deliver_t,
            });
        }
        if self.is_alive(to) {
            // Disconnected receiver == dead node: drop silently.
            let _ = self.senders[to].send(SimEnvelope {
                src: self.rank,
                tag,
                deliver_t,
                payload,
            });
        }
    }

    fn recv_timeout(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Bytes, CommError> {
        if self.crashed() {
            return Err(CommError::Crashed { rank: self.rank });
        }
        let (deliver_t, payload) = self.await_raw(from, tag, timeout)?;
        let done = self.process(deliver_t, payload.len());
        self.t_local = self.t_local.max(done);
        Ok(payload)
    }

    fn recv_any_timeout(
        &mut self,
        sources: &[usize],
        tag: Tag,
        timeout: Duration,
    ) -> Result<(usize, Bytes), CommError> {
        if self.crashed() {
            return Err(CommError::Crashed { rank: self.rank });
        }
        // Race (§V.B): wait until every candidate has either delivered a
        // copy or been observed dead *after* a re-drain, then take the
        // earliest virtual delivery. The winner alone is consumed and
        // processed; losers stay stashed for the caller to discard.
        // Waiting for all candidates (not just the first arrival in
        // real time) is what keeps the winner — and therefore every
        // virtual timestamp downstream — deterministic.
        let deadline = Instant::now() + timeout;
        // Two-phase death confirmation per candidate: 0 = presumed
        // live, 1 = flag seen down (re-drain pending), 2 = confirmed
        // dead with no copy.
        let mut death_phase: HashMap<usize, u8> = HashMap::new();
        loop {
            self.drain_channel();
            let mut best: Option<(f64, usize)> = None;
            let mut pending = false;
            for &s in sources {
                if let Some(q) = self.stash.get(&(s, tag)) {
                    if let Some(&(t, _)) = q.front() {
                        match best {
                            Some((bt, bs)) if (bt, bs) <= (t, s) => {}
                            _ => best = Some((t, s)),
                        }
                        continue;
                    }
                }
                let phase = death_phase.entry(s).or_insert(0);
                match *phase {
                    2 => {}
                    1 => *phase = 2, // we re-drained since seeing the flag down
                    _ => {
                        if self.alive[s].load(Ordering::SeqCst) {
                            pending = true;
                        } else {
                            *phase = 1;
                            pending = true; // confirm on the next pass
                        }
                    }
                }
            }
            if !pending {
                return match best {
                    Some((_, src)) => {
                        let (deliver_t, payload) =
                            self.take_stashed(src, tag).expect("winner stashed");
                        let done = self.process(deliver_t, payload.len());
                        self.t_local = self.t_local.max(done);
                        Ok((src, payload))
                    }
                    None => Err(CommError::TimeoutAny {
                        sources: sources.to_vec(),
                        tag,
                    }),
                };
            }
            // Still waiting on at least one live candidate (or on a
            // death-confirming re-drain).
            if death_phase.values().any(|&p| p == 1) {
                continue; // re-drain immediately, no block
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Err(CommError::TimeoutAny {
                    sources: sources.to_vec(),
                    tag,
                });
            }
            match self.rx.recv_timeout(remaining.min(LIVENESS_POLL)) {
                Ok(env) => self.accept(env),
                Err(RecvTimeoutError::Timeout) => {} // poll liveness again
                Err(RecvTimeoutError::Disconnected) => return Err(CommError::Closed),
            }
        }
    }

    fn discard(&mut self, sources: &[usize], tag: Tag) {
        if self.dark {
            return;
        }
        self.drain_channel();
        for &s in sources {
            if self.take_stashed(s, tag).is_some() {
                continue;
            }
            let n = self.pending_discards.entry((s, tag)).or_insert(0);
            if *n == 0 {
                self.discard_order.push_back((s, tag));
            }
            *n += 1;
        }
        while self.pending_discards.len() > MAX_PENDING_DISCARDS {
            match self.discard_order.pop_front() {
                Some(key) => {
                    self.pending_discards.remove(&key);
                }
                None => break,
            }
        }
    }

    fn now(&self) -> f64 {
        self.t_local
    }

    fn charge_compute(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0 && seconds.is_finite());
        self.t_local += seconds * self.slowdown;
    }

    // `note_traffic` uses the trait default, which files self-addressed
    // traffic under the telemetry pseudo-phase of this shard.

    fn telemetry(&self) -> Option<&RankTelemetry> {
        Some(&self.shard)
    }
}

impl RawComm for SimComm {
    fn recv_raw_timeout(&mut self, timeout: Duration) -> Result<Option<RawMessage>, CommError> {
        if self.crashed() {
            return Err(CommError::Crashed { rank: self.rank });
        }
        let deadline = Instant::now() + timeout;
        loop {
            self.drain_channel();
            // Deterministic pick: earliest virtual delivery, ties broken
            // by (src, tag).
            let mut best: Option<(f64, usize, Tag)> = None;
            for (&(src, tag), q) in &self.stash {
                if let Some(&(t, _)) = q.front() {
                    match best {
                        Some((bt, bs, btag)) if (bt, bs, btag.raw()) <= (t, src, tag.raw()) => {}
                        _ => best = Some((t, src, tag)),
                    }
                }
            }
            if let Some((_, src, tag)) = best {
                let (deliver_t, payload) = self.take_stashed(src, tag).expect("nonempty");
                let done = self.process(deliver_t, payload.len());
                self.t_local = self.t_local.max(done);
                return Ok(Some(RawMessage { src, tag, payload }));
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return Ok(None);
            }
            match self.rx.recv_timeout(remaining) {
                Ok(env) => self.accept(env),
                Err(RecvTimeoutError::Timeout) => return Ok(None),
                Err(RecvTimeoutError::Disconnected) => return Err(CommError::Closed),
            }
        }
    }
}

/// Builder/runner for a simulated cluster.
pub struct SimCluster {
    m: usize,
    nic: NicModel,
    seed: u64,
    dead: Vec<usize>,
    crashes: Vec<(usize, f64)>,
    telemetry: Arc<Telemetry>,
    trace: Option<Arc<Trace>>,
    slowdowns: Vec<(usize, f64)>,
}

impl SimCluster {
    /// A cluster of `m` simulated nodes over the given NIC model.
    pub fn new(m: usize, nic: NicModel) -> Self {
        assert!(m > 0);
        Self {
            m,
            nic,
            seed: 0,
            dead: Vec::new(),
            crashes: Vec::new(),
            telemetry: Telemetry::new(m, Clock::Virtual),
            trace: None,
            slowdowns: Vec::new(),
        }
    }

    /// Make specific ranks stragglers: their NIC and CPU times are
    /// multiplied by the given factor (>1 = slower). Models the
    /// "variable compute node performance and external loads" of
    /// commodity clouds (paper §II).
    pub fn stragglers(mut self, slow: &[(usize, f64)]) -> Self {
        for &(rank, f) in slow {
            assert!(f > 0.0 && f.is_finite(), "bad straggler factor {f}");
            self.slowdowns.push((rank, f));
        }
        self
    }

    /// Enable message-level tracing (see [`crate::trace::Trace`]).
    pub fn traced(mut self) -> Self {
        self.trace = Some(Trace::new_shared());
        self
    }

    /// The trace buffer, if tracing is enabled.
    pub fn trace(&self) -> Option<Arc<Trace>> {
        self.trace.clone()
    }

    /// Set the jitter seed (default 0).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Mark ranks dead from the start.
    pub fn failures(mut self, dead: &[usize]) -> Self {
        self.dead = dead.to_vec();
        self
    }

    /// Crash `rank` mid-run, at virtual time `t`: it runs normally
    /// until its local clock reaches `t`, then goes dark (fail-stop).
    /// Because the trigger is virtual time, the crash point — and every
    /// downstream virtual timestamp — is deterministic.
    pub fn crash_at(mut self, rank: usize, t: f64) -> Self {
        assert!(rank < self.m, "rank {rank} out of range");
        assert!(t >= 0.0 && t.is_finite(), "bad crash time {t}");
        self.crashes.push((rank, t));
        self
    }

    /// Adopt every `Crash::AtTime` event of a
    /// [`FaultPlan`](kylix_net::FaultPlan) as a native virtual-time
    /// crash. Prefer this over wrapping `SimComm` in a
    /// `ChaosComm` for crashes: a native crash flips the shared
    /// liveness flag, so racing peers stop waiting for the dead rank.
    /// (Link faults still need the wrapper.)
    pub fn with_faults(mut self, plan: &FaultPlan) -> Self {
        for (rank, t) in plan.time_crashes() {
            self = self.crash_at(rank, t);
        }
        self
    }

    /// Shared traffic statistics (readable after `run`): the per-layer
    /// distillation of [`SimCluster::telemetry`].
    pub fn traffic(&self) -> TrafficReport {
        TrafficReport::from_telemetry(&self.telemetry.report())
    }

    /// Reset traffic counters (between phases of an experiment).
    pub fn reset_traffic(&self) {
        self.telemetry.reset();
    }

    /// The cluster's telemetry instance (virtual-clock flavour): full
    /// per-rank, per-phase counters behind [`SimCluster::traffic`].
    pub fn telemetry(&self) -> &Arc<Telemetry> {
        &self.telemetry
    }

    /// Run `f` on every live rank concurrently. Dead ranks yield `None`.
    pub fn run<R, F>(&self, f: F) -> Vec<Option<R>>
    where
        R: Send,
        F: Fn(SimComm) -> R + Sync,
    {
        let alive: Arc<Vec<AtomicBool>> = Arc::new(
            (0..self.m)
                .map(|r| AtomicBool::new(!self.dead.contains(&r)))
                .collect(),
        );
        let mut txs = Vec::with_capacity(self.m);
        let mut rxs = Vec::with_capacity(self.m);
        for _ in 0..self.m {
            let (tx, rx) = unbounded();
            txs.push(tx);
            rxs.push(rx);
        }
        let senders = Arc::new(txs);
        let comms: Vec<SimComm> = rxs
            .into_iter()
            .enumerate()
            .map(|(rank, rx)| SimComm {
                rank,
                size: self.m,
                nic: self.nic,
                seed: self.seed,
                senders: Arc::clone(&senders),
                rx,
                alive: Arc::clone(&alive),
                shard: Arc::clone(self.telemetry.rank(rank)),
                trace: self.trace.clone(),
                stash: HashMap::new(),
                pending_discards: HashMap::new(),
                discard_order: VecDeque::new(),
                t_local: 0.0,
                nic_free: 0.0,
                workers: vec![0.0; self.nic.workers],
                seqs: vec![0; self.m],
                slowdown: self
                    .slowdowns
                    .iter()
                    .find(|(r, _)| *r == rank)
                    .map_or(1.0, |(_, f)| *f),
                crash_t: self
                    .crashes
                    .iter()
                    .find(|(r, _)| *r == rank)
                    .map(|(_, t)| *t),
                dark: false,
            })
            .collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .enumerate()
                .map(|(rank, comm)| {
                    if !self.dead.contains(&rank) {
                        Some(s.spawn(|| f(comm)))
                    } else {
                        None
                    }
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.map(|h| h.join().expect("sim node panicked")))
                .collect()
        })
    }

    /// Run with no failures and unwrap every result.
    pub fn run_all<R, F>(&self, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(SimComm) -> R + Sync,
    {
        assert!(self.dead.is_empty(), "use run() with failures");
        self.run(f).into_iter().map(|r| r.expect("alive")).collect()
    }

    /// Convenience: the virtual makespan of a run — every rank returns
    /// its final `now()`, and the cluster time is the maximum.
    pub fn makespan<F>(&self, f: F) -> f64
    where
        F: Fn(&mut SimComm) + Sync,
    {
        self.run(|mut c| {
            f(&mut c);
            c.now()
        })
        .into_iter()
        .flatten()
        .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix_net::Phase;

    fn t(layer: u16, seq: u32) -> Tag {
        Tag::new(Phase::App, layer, seq)
    }

    /// One 1 MB message, no jitter: delivery = overhead + size/bw + L,
    /// usable after worker processing.
    #[test]
    fn single_message_timing_matches_model() {
        let nic = NicModel::ec2_10g_nojitter();
        let cluster = SimCluster::new(2, nic);
        let times = cluster.run_all(|mut c| {
            if c.rank() == 0 {
                c.send(1, t(0, 0), Bytes::from(vec![0u8; 1_000_000]));
                0.0
            } else {
                c.recv(0, t(0, 0)).unwrap();
                c.now()
            }
        });
        let expect = nic.xfer_time(1_000_000) + nic.latency + nic.proc_time(1_000_000);
        assert!(
            (times[1] - expect).abs() < 1e-12,
            "got {} want {expect}",
            times[1]
        );
    }

    #[test]
    fn sender_nic_serialises_messages() {
        // Two messages to the same peer: second delivery is one transfer
        // later than the first.
        let nic = NicModel::ec2_10g_nojitter();
        let sz = 500_000;
        let cluster = SimCluster::new(2, nic);
        let times = cluster.run_all(|mut c| {
            if c.rank() == 0 {
                c.send(1, t(0, 0), Bytes::from(vec![0u8; sz]));
                c.send(1, t(0, 1), Bytes::from(vec![0u8; sz]));
                (0.0, 0.0)
            } else {
                c.recv(0, t(0, 0)).unwrap();
                let t1 = c.now();
                c.recv(0, t(0, 1)).unwrap();
                (t1, c.now())
            }
        });
        let (t1, t2) = times[1];
        // Deliveries are xfer apart; with 16 workers processing overlaps,
        // so readiness should also be ≈ xfer apart.
        let gap = t2 - t1;
        assert!(
            (gap - nic.xfer_time(sz)).abs() < 1e-4,
            "gap {gap} vs xfer {}",
            nic.xfer_time(sz)
        );
    }

    #[test]
    fn single_worker_serialises_processing() {
        // CPU-bound NIC: processing dominates the wire, so the worker
        // count is the bottleneck (the regime of the paper's Fig. 7).
        let mut base = NicModel::ideal(1e9);
        base.cpu_per_msg = 1e-3;
        let many = 8u32;
        let sz = 100_000;
        let run = |workers: usize| {
            let cluster = SimCluster::new(2, base.with_workers(workers));
            cluster.run_all(|mut c| {
                if c.rank() == 0 {
                    for i in 0..many {
                        c.send(1, t(0, i), Bytes::from(vec![0u8; sz]));
                    }
                    0.0
                } else {
                    for i in 0..many {
                        c.recv(0, t(0, i)).unwrap();
                    }
                    c.now()
                }
            })[1]
        };
        let done1 = run(1);
        let done8 = run(8);
        assert!(
            done1 > done8 + 3.0 * base.cpu_per_msg,
            "1 worker {done1} should trail 8 workers {done8}"
        );
    }

    #[test]
    fn charge_compute_advances_clock() {
        let cluster = SimCluster::new(1, NicModel::ideal(1e9));
        let out = cluster.run_all(|mut c| {
            c.charge_compute(2.5);
            c.now()
        });
        assert_eq!(out[0], 2.5);
    }

    #[test]
    fn deterministic_with_jitter() {
        let run = || {
            let nic = NicModel::ec2_10g().with_jitter(0.5);
            let cluster = SimCluster::new(4, nic).seed(99);
            cluster.run_all(|mut c| {
                let me = c.rank();
                for to in 0..4 {
                    if to != me {
                        c.send(to, t(0, 0), Bytes::from(vec![0u8; 10_000]));
                    }
                }
                for from in 0..4 {
                    if from != me {
                        c.recv(from, t(0, 0)).unwrap();
                    }
                }
                c.now()
            })
        };
        assert_eq!(run(), run(), "virtual times must be bit-reproducible");
    }

    #[test]
    fn racing_takes_earliest_copy() {
        // Rank 2 receives replicated copies from 0 and 1; with jitter the
        // winner must be the earlier virtual delivery.
        let nic = NicModel::ec2_10g().with_jitter(1.0);
        let cluster = SimCluster::new(3, nic).seed(5);
        let out = cluster.run_all(|mut c| match c.rank() {
            0 | 1 => {
                c.send(2, t(0, 0), Bytes::from(vec![c.rank() as u8; 1000]));
                (0, 0.0)
            }
            _ => {
                let (src, _) = c.recv_any(&[0, 1], t(0, 0)).unwrap();
                (src, c.now())
            }
        });
        let (_, t_any) = out[2];
        // Re-run with selective receive from each and confirm the race is
        // at least as fast as the slower single source.
        let cluster2 = SimCluster::new(3, nic).seed(5);
        let out2 = cluster2.run_all(|mut c| match c.rank() {
            0 | 1 => {
                c.send(2, t(0, 0), Bytes::from(vec![c.rank() as u8; 1000]));
                0.0
            }
            _ => {
                c.recv(0, t(0, 0)).unwrap();
                c.recv(1, t(0, 0)).unwrap();
                c.now()
            }
        });
        assert!(t_any <= out2[2] + 1e-12, "race {t_any} vs both {}", out2[2]);
    }

    #[test]
    fn racing_leaves_loser_for_discard() {
        let cluster = SimCluster::new(3, NicModel::ec2_10g_nojitter());
        let out = cluster.run_all(|mut c| match c.rank() {
            0 | 1 => {
                c.send(2, t(0, 0), Bytes::from(vec![c.rank() as u8; 100]));
                (0, 0)
            }
            _ => {
                let losers: Vec<usize> = {
                    let (src, _) = c.recv_any(&[0, 1], t(0, 0)).unwrap();
                    [0, 1].iter().copied().filter(|&s| s != src).collect()
                };
                let before = c.stash_len();
                c.discard(&losers, t(0, 0));
                (before, c.stash_len())
            }
        });
        let (before, after) = out[2];
        assert_eq!(before, 1, "losing copy stays stashed until discarded");
        assert_eq!(after, 0, "discard collects it");
    }

    #[test]
    fn dead_rank_times_out_selective_recv() {
        let cluster = SimCluster::new(2, NicModel::ideal(1e9)).failures(&[0]);
        let out = cluster.run(|mut c| {
            c.recv_timeout(0, t(0, 0), Duration::from_millis(50))
                .err()
                .map(|e| matches!(e, CommError::Timeout { .. }))
        });
        assert_eq!(out[1], Some(Some(true)));
        assert!(out[0].is_none());
    }

    #[test]
    fn recv_any_skips_dead_replica() {
        let cluster = SimCluster::new(3, NicModel::ideal(1e9)).failures(&[0]);
        let out = cluster.run(|mut c| match c.rank() {
            1 => {
                c.send(2, t(0, 0), Bytes::from_static(b"live"));
                None
            }
            2 => Some(c.recv_any(&[0, 1], t(0, 0)).unwrap().0),
            _ => None,
        });
        assert_eq!(out[2], Some(Some(1)));
    }

    #[test]
    fn recv_any_times_out_when_all_sources_dead() {
        let cluster = SimCluster::new(3, NicModel::ideal(1e9)).failures(&[0, 1]);
        let out = cluster.run(|mut c| {
            if c.rank() == 2 {
                match c.recv_any_timeout(&[0, 1], t(0, 0), Duration::from_secs(5)) {
                    Err(CommError::TimeoutAny { sources, .. }) => Some(sources),
                    other => panic!("expected TimeoutAny, got {other:?}"),
                }
            } else {
                None
            }
        });
        assert_eq!(out[2], Some(Some(vec![0, 1])));
    }

    #[test]
    fn mid_run_crash_goes_dark_at_virtual_time() {
        // Rank 0 sends one message, burns 1.0s of virtual compute, then
        // crashes at t=0.5 (so the second send is swallowed).
        let cluster = SimCluster::new(2, NicModel::ideal(1e9)).crash_at(0, 0.5);
        let out = cluster.run_all(|mut c| {
            if c.rank() == 0 {
                c.send(1, t(0, 0), Bytes::from_static(b"before"));
                c.charge_compute(1.0);
                c.send(1, t(0, 1), Bytes::from_static(b"after")); // dark
                let crashed = matches!(
                    c.recv_timeout(1, t(0, 2), Duration::from_millis(5)),
                    Err(CommError::Crashed { rank: 0 })
                );
                (true, crashed)
            } else {
                let first = c.recv(0, t(0, 0)).is_ok();
                let second = c
                    .recv_timeout(0, t(0, 1), Duration::from_millis(100))
                    .is_ok();
                (first, second)
            }
        });
        assert_eq!(out[1], (true, false), "post-crash send must vanish");
        assert_eq!(out[0], (true, true), "crashed rank observes Crashed");
    }

    #[test]
    fn mid_run_crash_is_observed_by_racers() {
        // Replica pair (0, 1) serves rank 2; replica 1 crashes before
        // sending. The race must complete with 0's copy rather than
        // waiting out the full timeout.
        let cluster = SimCluster::new(3, NicModel::ideal(1e9)).crash_at(1, 0.0);
        let out = cluster.run_all(|mut c| match c.rank() {
            0 => {
                c.send(2, t(0, 0), Bytes::from_static(b"live"));
                None
            }
            1 => {
                // First op fires the crash (t_local = 0 >= 0).
                c.send(2, t(0, 0), Bytes::from_static(b"never"));
                None
            }
            _ => {
                let start = Instant::now();
                let (src, _) = c
                    .recv_any_timeout(&[0, 1], t(0, 0), Duration::from_secs(30))
                    .unwrap();
                assert!(
                    start.elapsed() < Duration::from_secs(5),
                    "race must not wait out the timeout"
                );
                Some(src)
            }
        });
        assert_eq!(out[2], Some(0));
    }

    #[test]
    fn crash_sweep_is_deterministic() {
        let run = || {
            let nic = NicModel::ec2_10g().with_jitter(0.3);
            let cluster = SimCluster::new(4, nic).seed(7).crash_at(3, 0.0);
            cluster.run_all(|mut c| {
                let me = c.rank();
                for to in 0..4 {
                    if to != me {
                        c.send(to, t(0, 0), Bytes::from(vec![0u8; 10_000]));
                    }
                }
                let mut got = 0u32;
                for from in 0..4 {
                    if from != me
                        && c.recv_timeout(from, t(0, 0), Duration::from_millis(200))
                            .is_ok()
                    {
                        got += 1;
                    }
                }
                (got, c.now())
            })
        };
        assert_eq!(run(), run(), "crash runs must be bit-reproducible");
    }

    #[test]
    fn traffic_is_recorded_per_layer() {
        let cluster = SimCluster::new(2, NicModel::ideal(1e9));
        cluster.run_all(|mut c| {
            if c.rank() == 0 {
                c.send(1, t(3, 0), Bytes::from(vec![0u8; 100]));
                c.note_traffic(3, 25); // local (self) part
            } else {
                c.recv(0, t(3, 0)).unwrap();
            }
        });
        let r = cluster.traffic();
        assert_eq!(r.bytes_on(3), 125);
        assert_eq!(r.messages_on(3), 2);
    }

    #[test]
    fn makespan_is_max_over_nodes() {
        let cluster = SimCluster::new(3, NicModel::ideal(1e9));
        let span = cluster.makespan(|c| {
            c.charge_compute(c.rank() as f64);
        });
        assert_eq!(span, 2.0);
    }
}
