//! Shared traffic accounting.
//!
//! The Fig. 5 experiment ("total communication volume across layers" —
//! the Kylix silhouette) needs per-layer byte and message counts summed
//! over all nodes. Protocol code reports its traffic through
//! `Comm::note_traffic(layer, bytes)`; the simulator additionally
//! records every message it carries, keyed by the tag's layer field.
//!
//! Since the cross-substrate telemetry facility landed, this module is
//! a thin per-layer view over `kylix_telemetry`: [`TrafficStats`] is
//! backed by one lock-free telemetry shard (the historical
//! `Mutex<BTreeMap>` is gone), and a [`TrafficReport`] can equally be
//! distilled from a full cluster [`TelemetryReport`] — which is exactly
//! what `SimCluster::traffic()` does.

use kylix_telemetry::{Counter, RankTelemetry, TelemetryReport, MAX_LAYERS, SELF_PHASE};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Aggregate counters for one traffic class (layer).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LayerTraffic {
    /// Total payload bytes.
    pub bytes: u64,
    /// Message count.
    pub messages: u64,
}

/// Cluster-wide traffic statistics, shared between all node endpoints.
///
/// Recording is a pair of atomic adds on a preallocated telemetry
/// shard — safe and allocation-free from any thread.
pub struct TrafficStats {
    shard: RankTelemetry,
}

impl Default for TrafficStats {
    fn default() -> Self {
        TrafficStats {
            shard: RankTelemetry::new_detached(),
        }
    }
}

impl std::fmt::Debug for TrafficStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TrafficStats").finish_non_exhaustive()
    }
}

impl TrafficStats {
    /// New empty stats, ready to share between endpoints.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record one message of `bytes` on `layer`.
    pub fn record(&self, layer: u16, bytes: usize) {
        self.shard
            .add(SELF_PHASE, layer, Counter::BytesSent, bytes as u64);
        self.shard.add(SELF_PHASE, layer, Counter::MsgsSent, 1);
    }

    /// Snapshot the counters.
    pub fn report(&self) -> TrafficReport {
        let mut layers = BTreeMap::new();
        for l in 0..MAX_LAYERS as u16 {
            let t = LayerTraffic {
                bytes: self.shard.on_layer(l, Counter::BytesSent),
                messages: self.shard.on_layer(l, Counter::MsgsSent),
            };
            if t != LayerTraffic::default() {
                layers.insert(l, t);
            }
        }
        TrafficReport { layers }
    }

    /// Reset all counters (between experiment phases).
    pub fn reset(&self) {
        self.shard.reset();
    }
}

/// An immutable snapshot of [`TrafficStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Per-layer counters, ordered by layer id.
    pub layers: BTreeMap<u16, LayerTraffic>,
}

impl TrafficReport {
    /// Distil a per-layer traffic view from a full telemetry snapshot:
    /// sent bytes/messages summed over every rank and phase of each
    /// layer (self-addressed traffic under the pseudo-phase included,
    /// matching what `note_traffic` historically recorded here).
    pub fn from_telemetry(rep: &TelemetryReport) -> Self {
        let mut layers = BTreeMap::new();
        for l in rep.layers() {
            let t = LayerTraffic {
                bytes: rep.on_layer(l, Counter::BytesSent),
                messages: rep.on_layer(l, Counter::MsgsSent),
            };
            if t != LayerTraffic::default() {
                layers.insert(l, t);
            }
        }
        TrafficReport { layers }
    }

    /// Bytes recorded on one layer.
    pub fn bytes_on(&self, layer: u16) -> u64 {
        self.layers.get(&layer).map_or(0, |l| l.bytes)
    }

    /// Messages recorded on one layer.
    pub fn messages_on(&self, layer: u16) -> u64 {
        self.layers.get(&layer).map_or(0, |l| l.messages)
    }

    /// Total bytes across all layers.
    pub fn total_bytes(&self) -> u64 {
        self.layers.values().map(|l| l.bytes).sum()
    }

    /// Total messages across all layers.
    pub fn total_messages(&self) -> u64 {
        self.layers.values().map(|l| l.messages).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_report() {
        let s = TrafficStats::new_shared();
        s.record(1, 100);
        s.record(1, 50);
        s.record(2, 7);
        let r = s.report();
        assert_eq!(r.bytes_on(1), 150);
        assert_eq!(r.messages_on(1), 2);
        assert_eq!(r.bytes_on(2), 7);
        assert_eq!(r.total_bytes(), 157);
        assert_eq!(r.total_messages(), 3);
    }

    #[test]
    fn reset_clears() {
        let s = TrafficStats::new_shared();
        s.record(0, 10);
        s.reset();
        assert_eq!(s.report().total_bytes(), 0);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let s = TrafficStats::new_shared();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record(3, 1);
                    }
                });
            }
        });
        assert_eq!(s.report().bytes_on(3), 8000);
        assert_eq!(s.report().messages_on(3), 8000);
    }

    #[test]
    fn missing_layer_reads_zero() {
        let r = TrafficStats::new_shared().report();
        assert_eq!(r.bytes_on(9), 0);
        assert_eq!(r.messages_on(9), 0);
    }

    #[test]
    fn from_telemetry_matches_direct_recording() {
        use kylix_telemetry::{Clock, Telemetry};
        // The same traffic recorded per-rank through telemetry and
        // globally through TrafficStats must produce identical reports.
        let tel = Telemetry::new(2, Clock::Virtual);
        let direct = TrafficStats::new_shared();
        for (rank, layer, bytes) in [(0usize, 1u16, 100usize), (1, 1, 50), (1, 2, 7)] {
            tel.rank(rank)
                .add(1, layer, Counter::BytesSent, bytes as u64);
            tel.rank(rank).add(1, layer, Counter::MsgsSent, 1);
            direct.record(layer, bytes);
        }
        assert_eq!(
            TrafficReport::from_telemetry(&tel.report()),
            direct.report()
        );
    }
}
