//! Shared traffic accounting.
//!
//! The Fig. 5 experiment ("total communication volume across layers" —
//! the Kylix silhouette) needs per-layer byte and message counts summed
//! over all nodes. Protocol code reports its traffic through
//! `Comm::note_traffic(layer, bytes)`; the simulator additionally
//! records every message it carries, keyed by the tag's layer field.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Aggregate counters for one traffic class (layer).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LayerTraffic {
    /// Total payload bytes.
    pub bytes: u64,
    /// Message count.
    pub messages: u64,
}

/// Cluster-wide traffic statistics, shared between all node endpoints.
#[derive(Debug, Default)]
pub struct TrafficStats {
    layers: Mutex<BTreeMap<u16, LayerTraffic>>,
}

impl TrafficStats {
    /// New empty stats, ready to share between endpoints.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Record one message of `bytes` on `layer`.
    pub fn record(&self, layer: u16, bytes: usize) {
        let mut g = self.layers.lock();
        let e = g.entry(layer).or_default();
        e.bytes += bytes as u64;
        e.messages += 1;
    }

    /// Snapshot the counters.
    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            layers: self.layers.lock().clone(),
        }
    }

    /// Reset all counters (between experiment phases).
    pub fn reset(&self) {
        self.layers.lock().clear();
    }
}

/// An immutable snapshot of [`TrafficStats`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TrafficReport {
    /// Per-layer counters, ordered by layer id.
    pub layers: BTreeMap<u16, LayerTraffic>,
}

impl TrafficReport {
    /// Bytes recorded on one layer.
    pub fn bytes_on(&self, layer: u16) -> u64 {
        self.layers.get(&layer).map_or(0, |l| l.bytes)
    }

    /// Messages recorded on one layer.
    pub fn messages_on(&self, layer: u16) -> u64 {
        self.layers.get(&layer).map_or(0, |l| l.messages)
    }

    /// Total bytes across all layers.
    pub fn total_bytes(&self) -> u64 {
        self.layers.values().map(|l| l.bytes).sum()
    }

    /// Total messages across all layers.
    pub fn total_messages(&self) -> u64 {
        self.layers.values().map(|l| l.messages).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_report() {
        let s = TrafficStats::new_shared();
        s.record(1, 100);
        s.record(1, 50);
        s.record(2, 7);
        let r = s.report();
        assert_eq!(r.bytes_on(1), 150);
        assert_eq!(r.messages_on(1), 2);
        assert_eq!(r.bytes_on(2), 7);
        assert_eq!(r.total_bytes(), 157);
        assert_eq!(r.total_messages(), 3);
    }

    #[test]
    fn reset_clears() {
        let s = TrafficStats::new_shared();
        s.record(0, 10);
        s.reset();
        assert_eq!(s.report().total_bytes(), 0);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let s = TrafficStats::new_shared();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record(3, 1);
                    }
                });
            }
        });
        assert_eq!(s.report().bytes_on(3), 8000);
        assert_eq!(s.report().messages_on(3), 8000);
    }

    #[test]
    fn missing_layer_reads_zero() {
        let r = TrafficStats::new_shared().report();
        assert_eq!(r.bytes_on(9), 0);
        assert_eq!(r.messages_on(9), 0);
    }
}
