//! The NIC / link cost model.
//!
//! A LogGP-flavoured model of one commodity cluster node's network
//! interface:
//!
//! * `overhead` — fixed cost the sender's NIC pays per message (TCP
//!   stack traversal, switch setup; the paper's "message sending
//!   overhead" that makes sub-megabyte packets inefficient, Fig. 2);
//! * `bandwidth` — link bandwidth in bytes/second; a node's sends are
//!   serialised through its NIC at this rate;
//! * `latency` — wire/switch latency added after transmission;
//! * `jitter_sigma` — lognormal spread of the latency term, modelling
//!   the variable, outlier-prone latencies of virtualised clusters
//!   (paper §II: "networks with modest bandwidth and high (and variable)
//!   latency");
//! * `cpu_per_msg` / `cpu_per_byte` — receive-side processing cost
//!   (deserialisation + merge), divisible across `workers` threads
//!   (paper §VI.B and Fig. 7).
//!
//! With this model the effective throughput of a `P`-byte message is
//! `P / (overhead + P/bandwidth)` — rising with `P` and saturating near
//! `bandwidth`, which is exactly the measured shape of the paper's
//! Fig. 2 (~30 % utilisation at 0.4 MB, ≳80 % at 5 MB on their 10 Gb/s
//! fabric).

/// Cost model of one node's NIC and receive path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NicModel {
    /// Per-message fixed send overhead, seconds.
    pub overhead: f64,
    /// Link bandwidth, bytes per second.
    pub bandwidth: f64,
    /// Base one-way wire latency, seconds.
    pub latency: f64,
    /// Lognormal sigma of the latency jitter (0 disables jitter).
    pub jitter_sigma: f64,
    /// Receive-side fixed CPU cost per message, seconds.
    pub cpu_per_msg: f64,
    /// Receive-side CPU cost per payload byte, seconds.
    pub cpu_per_byte: f64,
    /// Number of receive-processing worker threads per node.
    pub workers: usize,
}

impl NicModel {
    /// Calibrated to the paper's EC2 measurements: 10 Gb/s links where
    /// 0.4 MB packets reach ≈30 % of peak and ≈5 MB is the smallest
    /// efficient packet (≥80 % of peak). Receive CPU costs sized so that
    /// a 16-core cc2.8xlarge node benefits from up to ~16 workers
    /// (Fig. 7).
    pub fn ec2_10g() -> Self {
        Self {
            // 0.4 MB / 1.25 GB/s = 0.32 ms on the wire; 30 % utilisation
            // implies overhead ≈ 0.75 ms (0.32/(o+0.32) = 0.3).
            overhead: 0.75e-3,
            bandwidth: 1.25e9, // 10 Gb/s
            latency: 0.2e-3,
            jitter_sigma: 0.3,
            // Socket stack memcpy + merge: the paper observes ~3 Gb/s
            // (0.375 GB/s) achieved per node end-to-end, i.e. the CPU
            // path costs roughly 2x the wire when single-threaded.
            cpu_per_msg: 0.3e-3,
            cpu_per_byte: 1.0 / 0.6e9,
            workers: 16,
        }
    }

    /// The EC2 fabric as experienced by a **many-peer collective**
    /// rather than a warm single-stream microbenchmark: per-message
    /// overhead ×3.
    ///
    /// Fig. 2's streaming benchmark keeps one connection hot; an
    /// all-to-all collective juggles up to 63 peers per node, paying
    /// connection management, thread scheduling and switch-buffer
    /// contention (incast) per message — effects the paper discusses in
    /// §II and §VI.B and which first-order LogGP misses. The factor is
    /// calibrated so the direct-vs-optimal gap of Fig. 6 lands in the
    /// paper's reported 3–5× band at the Twitter operating point;
    /// EXPERIMENTS.md reports results with and without it.
    pub fn ec2_10g_collective() -> Self {
        let base = Self::ec2_10g();
        Self {
            overhead: 3.0 * base.overhead,
            ..base
        }
    }

    /// Same fabric with jitter disabled — used where determinism of the
    /// *model* (not just of the run) keeps assertions tight.
    pub fn ec2_10g_nojitter() -> Self {
        Self {
            jitter_sigma: 0.0,
            ..Self::ec2_10g()
        }
    }

    /// An idealised network with no per-message overhead and no CPU
    /// cost: useful in tests to isolate protocol logic from the model.
    pub fn ideal(bandwidth: f64) -> Self {
        Self {
            overhead: 0.0,
            bandwidth,
            latency: 0.0,
            jitter_sigma: 0.0,
            cpu_per_msg: 0.0,
            cpu_per_byte: 0.0,
            workers: 1,
        }
    }

    /// Override the worker count (Fig. 7 sweeps this).
    pub fn with_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1);
        self.workers = workers;
        self
    }

    /// Override jitter.
    pub fn with_jitter(mut self, sigma: f64) -> Self {
        self.jitter_sigma = sigma;
        self
    }

    /// Pure wire time of a message of `bytes` (no queueing, no jitter).
    pub fn xfer_time(&self, bytes: usize) -> f64 {
        self.overhead + bytes as f64 / self.bandwidth
    }

    /// Receive-side processing time of a message of `bytes` on one worker.
    pub fn proc_time(&self, bytes: usize) -> f64 {
        self.cpu_per_msg + bytes as f64 * self.cpu_per_byte
    }

    /// Closed-form effective throughput (bytes/s) for `bytes`-sized
    /// messages — the Fig. 2 curve.
    pub fn effective_throughput(&self, bytes: usize) -> f64 {
        bytes as f64 / self.xfer_time(bytes)
    }

    /// Fraction of peak bandwidth achieved at this packet size.
    pub fn utilisation(&self, bytes: usize) -> f64 {
        self.effective_throughput(bytes) / self.bandwidth
    }

    /// Smallest packet achieving the given utilisation of peak bandwidth
    /// (the paper's "minimum efficient packet size"; they use ≈5 MB on
    /// EC2). Solved in closed form: `P = u·o·B / (1-u)`.
    pub fn min_efficient_packet(&self, utilisation: f64) -> f64 {
        assert!((0.0..1.0).contains(&utilisation));
        utilisation * self.overhead * self.bandwidth / (1.0 - utilisation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ec2_calibration_matches_paper_fig2() {
        let nic = NicModel::ec2_10g();
        // ≈30 % of peak at 0.4 MB.
        let u_04 = nic.utilisation(400_000);
        assert!((0.25..0.36).contains(&u_04), "0.4MB utilisation {u_04}");
        // ≥80 % at 5 MB.
        let u_5 = nic.utilisation(5_000_000);
        assert!(u_5 >= 0.8, "5MB utilisation {u_5}");
        // Tiny packets are terrible.
        assert!(nic.utilisation(10_000) < 0.05);
    }

    #[test]
    fn throughput_is_monotone_in_packet_size() {
        let nic = NicModel::ec2_10g();
        let mut prev = 0.0;
        let mut p = 1024;
        while p < 64_000_000 {
            let t = nic.effective_throughput(p);
            assert!(t > prev);
            prev = t;
            p *= 2;
        }
    }

    #[test]
    fn min_efficient_packet_inverts_utilisation() {
        let nic = NicModel::ec2_10g();
        for u in [0.3, 0.5, 0.8, 0.9] {
            let p = nic.min_efficient_packet(u);
            let got = nic.utilisation(p.round() as usize);
            assert!((got - u).abs() < 0.01, "u {u}: {got}");
        }
    }

    #[test]
    fn ideal_network_has_no_overhead() {
        let nic = NicModel::ideal(1e9);
        assert_eq!(nic.xfer_time(0), 0.0);
        assert_eq!(nic.xfer_time(1_000_000_000), 1.0);
        assert!((nic.utilisation(1) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn proc_time_scales_with_bytes() {
        let nic = NicModel::ec2_10g();
        assert!(nic.proc_time(1_000_000) > nic.proc_time(1_000));
        assert!(nic.proc_time(0) == nic.cpu_per_msg);
    }
}
