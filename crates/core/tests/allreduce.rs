//! End-to-end correctness of the Kylix sparse allreduce: every topology,
//! both execution substrates (real threads and the virtual-time
//! simulator), replication, failures, and property-based equivalence
//! with the sequential reference semantics.

use kylix::{reference_allreduce, Kylix, NetworkPlan, NodeContribution, ReplicatedComm};
use kylix_net::{Comm, LocalCluster};
use kylix_netsim::{NicModel, SimCluster};
use kylix_powerlaw::{DensityModel, PartitionGenerator};
use kylix_sparse::{BitOrReducer, MinReducer, SumReducer, Xoshiro256};
use proptest::prelude::*;

/// Build node contributions from a deterministic seed: random sparse out
/// sets with values, in sets drawn from the union of all out sets.
fn random_workload(m: usize, n_features: u64, seed: u64) -> Vec<NodeContribution<f64>> {
    let mut rng = Xoshiro256::new(seed);
    // First decide all out sets so in sets can draw from their union.
    let outs: Vec<Vec<u64>> = (0..m)
        .map(|_| {
            let k = 1 + rng.next_index(40);
            let mut v: Vec<u64> = (0..k).map(|_| rng.next_below(n_features)).collect();
            v.sort_unstable();
            v.dedup();
            v
        })
        .collect();
    let union: Vec<u64> = {
        let mut u: Vec<u64> = outs.iter().flatten().copied().collect();
        u.sort_unstable();
        u.dedup();
        u
    };
    (0..m)
        .map(|i| {
            let k = 1 + rng.next_index(30);
            let in_indices: Vec<u64> = (0..k).map(|_| union[rng.next_index(union.len())]).collect();
            let out_values: Vec<f64> = outs[i]
                .iter()
                .map(|_| (rng.next_f64() * 8.0).round() / 4.0)
                .collect();
            NodeContribution {
                in_indices,
                out_indices: outs[i].clone(),
                out_values,
            }
        })
        .collect()
}

/// Run Kylix on the thread cluster and compare against the reference.
fn check_on_threads(plan: &NetworkPlan, nodes: &[NodeContribution<f64>]) {
    let m = plan.size();
    assert_eq!(nodes.len(), m);
    let expected = reference_allreduce(nodes, SumReducer);
    let got: Vec<Vec<f64>> = LocalCluster::run(m, |mut comm| {
        let me = comm.rank();
        let kylix = Kylix::new(plan.clone());
        let mut state = kylix
            .configure(&mut comm, &nodes[me].in_indices, &nodes[me].out_indices, 0)
            .unwrap();
        state
            .reduce(&mut comm, &nodes[me].out_values, SumReducer)
            .unwrap()
    });
    for (rank, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(g.len(), e.len());
        for (a, b) in g.iter().zip(e) {
            assert!(
                (a - b).abs() < 1e-9,
                "rank {rank}: got {a}, want {b} (plan {plan})"
            );
        }
    }
}

#[test]
fn all_topologies_match_reference_threads() {
    for (seed, degrees) in [
        (1u64, vec![4usize]), // direct, 4 nodes
        (2, vec![2, 2]),      // 2x2 butterfly
        (3, vec![8]),         // direct, 8 nodes
        (4, vec![2, 2, 2]),   // binary, 8 nodes
        (5, vec![4, 2]),      // heterogeneous, 8 nodes
        (6, vec![3, 2]),      // non-power-of-two, 6 nodes
        (7, vec![2, 3]),      // increasing degrees still work
        (8, vec![4, 2, 2]),   // 16 nodes
        (9, vec![5]),         // odd direct
        (10, vec![1]),        // single node
    ] {
        let plan = NetworkPlan::new(&degrees);
        let nodes = random_workload(plan.size(), 500, seed);
        check_on_threads(&plan, &nodes);
    }
}

#[test]
fn combined_mode_matches_separate_mode() {
    let plan = NetworkPlan::new(&[4, 2]);
    let nodes = random_workload(8, 300, 42);
    let expected = reference_allreduce(&nodes, SumReducer);
    let got: Vec<Vec<f64>> = LocalCluster::run(8, |mut comm| {
        let me = comm.rank();
        let kylix = Kylix::new(plan.clone());
        let (vals, _state) = kylix
            .allreduce_combined(
                &mut comm,
                &nodes[me].in_indices,
                &nodes[me].out_indices,
                &nodes[me].out_values,
                SumReducer,
                0,
            )
            .unwrap();
        vals
    });
    for (g, e) in got.iter().zip(&expected) {
        for (a, b) in g.iter().zip(e) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

#[test]
fn repeated_reduce_on_one_configuration() {
    // PageRank pattern: one configuration, many reduces with evolving
    // values.
    let plan = NetworkPlan::new(&[2, 2]);
    let nodes = random_workload(4, 200, 7);
    let iters = 5;
    let got: Vec<Vec<f64>> = LocalCluster::run(4, |mut comm| {
        let me = comm.rank();
        let kylix = Kylix::new(plan.clone());
        let mut state = kylix
            .configure(&mut comm, &nodes[me].in_indices, &nodes[me].out_indices, 0)
            .unwrap();
        let mut vals = nodes[me].out_values.clone();
        let mut out = Vec::new();
        for _ in 0..iters {
            out = state.reduce(&mut comm, &vals, SumReducer).unwrap();
            // Evolve values deterministically.
            for v in &mut vals {
                *v += 1.0;
            }
        }
        out
    });
    // After k iterations each node's values were bumped k-1 times; the
    // expected result comes from the bumped contributions.
    let bumped: Vec<NodeContribution<f64>> = nodes
        .iter()
        .map(|n| NodeContribution {
            in_indices: n.in_indices.clone(),
            out_indices: n.out_indices.clone(),
            out_values: n
                .out_values
                .iter()
                .map(|v| v + (iters - 1) as f64)
                .collect(),
        })
        .collect();
    let expected = reference_allreduce(&bumped, SumReducer);
    for (g, e) in got.iter().zip(&expected) {
        for (a, b) in g.iter().zip(e) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

#[test]
fn duplicate_user_indices_are_combined_and_served() {
    // Out list contains the same index twice (values must pre-combine);
    // in list asks for an index twice (value must be duplicated).
    let got: Vec<Vec<f64>> = LocalCluster::run(2, |mut comm| {
        let kylix = Kylix::new(NetworkPlan::direct(2));
        let me = comm.rank();
        let (out_idx, out_val): (Vec<u64>, Vec<f64>) = if me == 0 {
            (vec![5, 5, 9], vec![1.0, 2.0, 4.0])
        } else {
            (vec![9], vec![10.0])
        };
        let mut state = kylix.configure(&mut comm, &[5, 9, 5], &out_idx, 0).unwrap();
        state.reduce(&mut comm, &out_val, SumReducer).unwrap()
    });
    for g in &got {
        assert_eq!(g, &vec![3.0, 14.0, 3.0]);
    }
}

#[test]
fn min_and_bitor_reducers_work_end_to_end() {
    let got_min: Vec<Vec<u64>> = LocalCluster::run(4, |mut comm| {
        let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
        let me = comm.rank() as u64;
        let (vals, _) = kylix
            .allreduce_combined(&mut comm, &[0u64], &[0u64], &[me + 10], MinReducer, 0)
            .unwrap();
        vals
    });
    assert!(got_min.iter().all(|v| v[0] == 10));

    let got_or: Vec<Vec<u64>> = LocalCluster::run(4, |mut comm| {
        let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
        let me = comm.rank();
        let (vals, _) = kylix
            .allreduce_combined(&mut comm, &[3u64], &[3u64], &[1u64 << me], BitOrReducer, 0)
            .unwrap();
        vals
    });
    assert!(got_or.iter().all(|v| v[0] == 0b1111));
}

#[test]
fn simulator_and_threads_agree_on_results() {
    let plan = NetworkPlan::new(&[4, 2]);
    let nodes = random_workload(8, 400, 99);
    let on_threads: Vec<Vec<f64>> = LocalCluster::run(8, |mut comm| {
        let me = comm.rank();
        Kylix::new(plan.clone())
            .allreduce_combined(
                &mut comm,
                &nodes[me].in_indices,
                &nodes[me].out_indices,
                &nodes[me].out_values,
                SumReducer,
                0,
            )
            .unwrap()
            .0
    });
    let cluster = SimCluster::new(8, NicModel::ec2_10g()).seed(1);
    let on_sim: Vec<Vec<f64>> = cluster.run_all(|mut comm| {
        let me = comm.rank();
        Kylix::new(plan.clone())
            .allreduce_combined(
                &mut comm,
                &nodes[me].in_indices,
                &nodes[me].out_indices,
                &nodes[me].out_values,
                SumReducer,
                0,
            )
            .unwrap()
            .0
    });
    assert_eq!(on_threads, on_sim);
}

#[test]
#[allow(clippy::needless_range_loop)] // `phys` is a physical rank
fn replicated_allreduce_is_exact_without_failures() {
    let plan = NetworkPlan::new(&[2, 2]);
    let nodes = random_workload(4, 200, 17);
    let expected = reference_allreduce(&nodes, SumReducer);
    // 8 physical ranks = 4 logical x 2 replicas.
    let got: Vec<Vec<f64>> = LocalCluster::run(8, |comm| {
        let mut rc = ReplicatedComm::new(comm, 2);
        let me = rc.rank();
        Kylix::new(plan.clone())
            .allreduce_combined(
                &mut rc,
                &nodes[me].in_indices,
                &nodes[me].out_indices,
                &nodes[me].out_values,
                SumReducer,
                0,
            )
            .unwrap()
            .0
    });
    // Every physical replica of logical node i must hold i's result.
    for phys in 0..8 {
        let logical = phys % 4;
        for (a, b) in got[phys].iter().zip(&expected[logical]) {
            assert!((a - b).abs() < 1e-9, "phys {phys}");
        }
    }
}

#[test]
#[allow(clippy::needless_range_loop)] // `phys` is a physical rank
fn replicated_allreduce_survives_failures() {
    let plan = NetworkPlan::new(&[2, 2]);
    let nodes = random_workload(4, 200, 23);
    let expected = reference_allreduce(&nodes, SumReducer);
    // Kill one replica of logical 1 and one replica of logical 3 (both
    // groups keep a survivor).
    let dead = [1usize, 7];
    let got = LocalCluster::run_with_failures(8, &dead, |comm| {
        let mut rc = ReplicatedComm::new(comm, 2);
        let me = rc.rank();
        Kylix::new(plan.clone())
            .allreduce_combined(
                &mut rc,
                &nodes[me].in_indices,
                &nodes[me].out_indices,
                &nodes[me].out_values,
                SumReducer,
                0,
            )
            .unwrap()
            .0
    });
    for phys in 0..8 {
        if dead.contains(&phys) {
            assert!(got[phys].is_none());
            continue;
        }
        let logical = phys % 4;
        let g = got[phys].as_ref().expect("alive rank completed");
        for (a, b) in g.iter().zip(&expected[logical]) {
            assert!((a - b).abs() < 1e-9, "phys {phys}");
        }
    }
}

#[test]
fn replicated_on_simulator_with_failures() {
    let plan = NetworkPlan::new(&[2, 2]);
    let nodes = random_workload(4, 300, 31);
    let expected = reference_allreduce(&nodes, SumReducer);
    let cluster = SimCluster::new(8, NicModel::ec2_10g())
        .seed(3)
        .failures(&[5]);
    let got = cluster.run(|comm| {
        let mut rc = ReplicatedComm::new(comm, 2);
        let me = rc.rank();
        Kylix::new(plan.clone())
            .allreduce_combined(
                &mut rc,
                &nodes[me].in_indices,
                &nodes[me].out_indices,
                &nodes[me].out_values,
                SumReducer,
                0,
            )
            .unwrap()
            .0
    });
    for phys in [0usize, 1, 2, 3, 4, 6, 7] {
        let logical = phys % 4;
        let g = got[phys].as_ref().unwrap();
        for (a, b) in g.iter().zip(&expected[logical]) {
            assert!((a - b).abs() < 1e-9);
        }
    }
}

#[test]
fn power_law_partitions_reduce_correctly() {
    // Realistic workload: Prop 4.1 partitions as out sets, in = own out.
    let m = 8;
    let model = DensityModel::new(2000, 1.2);
    let gen = PartitionGenerator::with_density(model, 0.15, 77);
    let nodes: Vec<NodeContribution<f64>> = (0..m)
        .map(|i| {
            let idx = gen.indices(i);
            NodeContribution {
                in_indices: idx.clone(),
                out_indices: idx.clone(),
                out_values: vec![1.0; idx.len()],
            }
        })
        .collect();
    let plan = NetworkPlan::new(&[4, 2]);
    check_on_threads(&plan, &nodes);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary sparse workloads on arbitrary small topologies match
    /// the sequential reference exactly.
    #[test]
    fn prop_allreduce_matches_reference(
        seed in 0u64..1_000_000,
        shape in prop::sample::select(vec![
            vec![2usize], vec![3], vec![4], vec![2, 2], vec![3, 2], vec![2, 2, 2], vec![4, 2],
        ]),
    ) {
        let plan = NetworkPlan::new(&shape);
        let nodes = random_workload(plan.size(), 256, seed);
        check_on_threads(&plan, &nodes);
    }

    /// The up pass returns each node exactly the values it asked for, in
    /// its own request order, for any permutation of the in list.
    #[test]
    fn prop_request_order_is_respected(seed in 0u64..100_000) {
        let mut rng = Xoshiro256::new(seed);
        let mut in_idx: Vec<u64> = (0..20).map(|_| rng.next_below(64)).collect();
        rng.shuffle(&mut in_idx);
        let in0 = in_idx.clone();
        let got: Vec<Vec<f64>> = LocalCluster::run(2, |mut comm| {
            let kylix = Kylix::new(NetworkPlan::direct(2));
            // Both nodes contribute value = index at every index 0..64.
            let out: Vec<u64> = (0..64).collect();
            let vals: Vec<f64> = (0..64).map(|i| i as f64).collect();
            let mut state = kylix.configure(&mut comm, &in0, &out, 0).unwrap();
            state.reduce(&mut comm, &vals, SumReducer).unwrap()
        });
        for g in got {
            for (p, &idx) in in_idx.iter().enumerate() {
                prop_assert!((g[p] - 2.0 * idx as f64).abs() < 1e-9);
            }
        }
    }
}
