//! Counting-allocator harness: the pooled hot path must make a
//! steady-state `reduce()` op at least 90 % cheaper in heap
//! allocations than the legacy allocate-per-message path.
//!
//! The baseline is a faithful reimplementation of the pre-pooling
//! reduce loop (allocate-per-message encode, decode to `Vec`, fresh
//! accumulator/gather/prev buffers per layer), written against the
//! same public routing tables and run in the same environment, so the
//! comparison cancels everything that is not the hot path itself.
//! Both paths are measured *marginally*: allocations at two operation
//! counts, subtracted, so one-time costs (thread spawn, configuration,
//! scratch warm-up) drop out.
//!
//! Everything lives in one `#[test]` — the counter is process-global
//! and concurrent tests would pollute each other's readings.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

use kylix::codec::{decode_values, encode_values};
use kylix::config::MISSING;
use kylix::{Configured, Kylix, NetworkPlan};
use kylix_net::telemetry::{Clock, Telemetry};
use kylix_net::{Comm, LocalCluster, Phase, Tag};
use kylix_sparse::vec::{gather, scatter_combine};
use kylix_sparse::SumReducer;

const M: usize = 4;
const DEGREES: [usize; 2] = [2, 2];

fn indices(rank: usize) -> Vec<u64> {
    // Overlapping sets so every layer carries real traffic.
    (0..24u64).map(|i| (i * 5 + rank as u64 * 3) % 48).collect()
}

/// The legacy reduce path, verbatim semantics: fixed-order receives,
/// one fresh allocation per buffer and per message. Uses only public
/// API so it stays compilable as the library evolves.
fn old_reduce<C: Comm>(state: &mut Configured, comm: &mut C, out_values: &[f64]) -> Vec<f64> {
    state.ops_issued += 1;
    let seq = state.channel.wrapping_add(state.ops_issued);
    let mut vals = vec![0.0f64; state.out0.len()];
    for (x, &sp) in out_values.iter().zip(&state.out_user_map) {
        vals[sp as usize] += *x;
    }
    for (layer, lr) in state.layers.iter().enumerate() {
        let tag = Tag::new(Phase::ReduceDown, layer as u16, seq);
        for (c, &peer) in lr.group.iter().enumerate() {
            if c != lr.my_pos {
                comm.send(peer, tag, encode_values(&vals[lr.out_spans[c].clone()]));
            }
        }
        let mut acc = vec![0.0f64; lr.out_union.len()];
        scatter_combine(
            &mut acc,
            &vals[lr.out_spans[lr.my_pos].clone()],
            &lr.out_maps[lr.my_pos],
            SumReducer,
        );
        for (c, &peer) in lr.group.iter().enumerate() {
            if c == lr.my_pos {
                continue;
            }
            let payload = comm.recv(peer, tag).unwrap();
            let got: Vec<f64> = decode_values(&payload).unwrap();
            scatter_combine(&mut acc, &got, &lr.out_maps[c], SumReducer);
        }
        vals = acc;
    }
    let mut uvals: Vec<f64> = state
        .bottom_in_to_out
        .iter()
        .map(|&p| if p == MISSING { 0.0 } else { vals[p as usize] })
        .collect();
    for (layer, lr) in state.layers.iter().enumerate().rev() {
        let tag = Tag::new(Phase::ReduceUp, layer as u16, seq);
        for (c, &peer) in lr.group.iter().enumerate() {
            if c != lr.my_pos {
                comm.send(peer, tag, encode_values(&gather(&uvals, &lr.in_maps[c])));
            }
        }
        let mut prev = vec![0.0f64; lr.in_prev_len()];
        let own = gather(&uvals, &lr.in_maps[lr.my_pos]);
        prev[lr.in_spans[lr.my_pos].clone()].copy_from_slice(&own);
        for (c, &peer) in lr.group.iter().enumerate() {
            if c == lr.my_pos {
                continue;
            }
            let payload = comm.recv(peer, tag).unwrap();
            let got: Vec<f64> = decode_values(&payload).unwrap();
            prev[lr.in_spans[c].clone()].copy_from_slice(&got);
        }
        uvals = prev;
    }
    state
        .in_user_map
        .iter()
        .map(|&p| uvals[p as usize])
        .collect()
}

/// Run `ops` steady-state reduce ops on a fresh cluster and return the
/// global allocation count consumed, plus rank 0's last result. With
/// `telemetry`, the cluster records full per-rank counters and per-op
/// timings — the claim under test is that this instrumentation is
/// allocation-free in steady state.
fn measure(ops: usize, pooled: bool, telemetry: Option<&Telemetry>) -> (u64, Vec<f64>) {
    let plan = NetworkPlan::new(&DEGREES);
    let before = ALLOCS.load(Ordering::Relaxed);
    let body = |mut comm: kylix_net::ThreadComm| {
        let me = comm.rank();
        let idx = indices(me);
        let vals: Vec<f64> = idx.iter().map(|&i| 1.0 + i as f64 * 0.5).collect();
        let kylix = Kylix::new(plan.clone());
        let mut state = kylix.configure(&mut comm, &idx, &idx, 0).unwrap();
        let mut out = Vec::new();
        for _ in 0..ops {
            if pooled {
                state
                    .reduce_into(&mut comm, &vals, SumReducer, &mut out)
                    .unwrap();
            } else {
                out = old_reduce(&mut state, &mut comm, &vals);
            }
        }
        out
    };
    let results = match telemetry {
        Some(tel) => LocalCluster::run_with_telemetry(M, tel, body),
        None => LocalCluster::run(M, body),
    };
    let spent = ALLOCS.load(Ordering::Relaxed) - before;
    (spent, results.into_iter().next().unwrap())
}

/// One test on purpose: see module docs.
#[test]
fn steady_state_reduce_allocates_90_percent_less() {
    const LO: usize = 8;
    const HI: usize = 56;
    // Marginal allocations per extra op, whole cluster. Order the runs
    // so each path's pair is adjacent (allocator state settles).
    let (old_lo, r_old_lo) = measure(LO, false, None);
    let (old_hi, r_old_hi) = measure(HI, false, None);
    let (new_lo, r_new_lo) = measure(LO, true, None);
    let (new_hi, r_new_hi) = measure(HI, true, None);
    let tel = Telemetry::new(M, Clock::Wall);
    let (tel_lo, r_tel_lo) = measure(LO, true, Some(&tel));
    let (tel_hi, r_tel_hi) = measure(HI, true, Some(&tel));
    // Sanity: both paths compute the same thing, bit for bit (the
    // pooled path defaults to deterministic arrival-order combining,
    // which replays the legacy fixed order).
    for (a, b) in [
        (&r_old_lo, &r_new_lo),
        (&r_old_hi, &r_new_hi),
        (&r_new_lo, &r_tel_lo),
        (&r_new_hi, &r_tel_hi),
    ] {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert_eq!(x.to_bits(), y.to_bits(), "paths must agree: {x} vs {y}");
        }
    }
    let per_op_old = (old_hi.saturating_sub(old_lo)) as f64 / (HI - LO) as f64;
    let per_op_new = (new_hi.saturating_sub(new_lo)) as f64 / (HI - LO) as f64;
    let per_op_tel = (tel_hi.saturating_sub(tel_lo)) as f64 / (HI - LO) as f64;
    eprintln!(
        "marginal allocs/op (whole {M}-rank cluster): \
         legacy {per_op_old:.1}, pooled {per_op_new:.1}, \
         pooled+telemetry {per_op_tel:.2}"
    );
    // The legacy path allocates per message and per layer; make sure
    // the measurement itself is alive before comparing.
    assert!(
        per_op_old >= 10.0,
        "legacy path should allocate heavily per op, got {per_op_old:.1}"
    );
    assert!(
        per_op_new <= per_op_old * 0.10,
        "steady-state pooled reduce must allocate >=90% less: \
         old {per_op_old:.1} allocs/op vs new {per_op_new:.1}"
    );
    // Telemetry is pure atomics on preallocated shards: enabling full
    // counters and per-op timing may not reintroduce steady-state heap
    // traffic to the hot path.
    assert!(
        per_op_tel <= 0.4,
        "telemetry-enabled steady state must stay allocation-free: \
         {per_op_tel:.2} allocs/op"
    );
}
