//! Fuzz-style robustness tests: malformed wire data must error, never
//! panic; random plans must keep their structural invariants; the
//! configuration state must satisfy its internal geometry on arbitrary
//! workloads.

use kylix::codec::{decode_keys, decode_values, put_keys, put_values, seal, Decoder};
use kylix::{Kylix, NetworkPlan};
use kylix_net::{Comm, LocalCluster};
use kylix_sparse::{Key, Xoshiro256};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes through the decoders: always Ok or Err, never a
    /// panic or out-of-bounds.
    #[test]
    fn decoders_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        let _ = decode_keys(&bytes);
        let _ = decode_values::<f64>(&bytes);
        let _ = decode_values::<u32>(&bytes);
        // Random bytes essentially never carry a valid seal, but if they
        // do, the body decoders must still be panic-free.
        if let Ok(mut dec) = Decoder::new(&bytes) {
            let _ = dec.keys();
            let _ = dec.values::<u64>();
        }
    }

    /// Truncations of a VALID message error cleanly.
    #[test]
    fn truncated_valid_messages_error(cut in 0usize..100, n in 1usize..32) {
        let keys: Vec<Key> = (0..n as u64).map(Key::new).collect();
        let enc = kylix::codec::encode_keys(&keys);
        let cut = cut.min(enc.len().saturating_sub(1));
        if cut < enc.len() {
            let sliced = &enc[..cut];
            // Truncation destroys the trailing checksum, so every cut
            // fails seal verification before any field is parsed.
            prop_assert!(decode_keys(sliced).is_err());
        }
    }

    /// A single flipped bit anywhere in a VALID message is caught by the
    /// seal — this is the property that keeps corruption out of the
    /// reduction.
    #[test]
    fn bit_flips_never_decode(n in 1usize..16, byte_sel in any::<prop::sample::Index>(), bit in 0u8..8) {
        let keys: Vec<Key> = (0..n as u64).map(Key::new).collect();
        let mut enc = kylix::codec::encode_keys(&keys).to_vec();
        let byte = byte_sel.index(enc.len());
        enc[byte] ^= 1 << bit;
        prop_assert!(decode_keys(&enc).is_err());
    }

    /// Multi-section (combined) frames: any truncation destroys the
    /// trailing seal and fails before a single section is parsed.
    #[test]
    fn combined_truncations_error(
        nk in 0usize..12,
        nv in 0usize..12,
        cut_sel in any::<prop::sample::Index>(),
    ) {
        let keys: Vec<Key> = (0..nk as u64).map(Key::new).collect();
        let vals: Vec<f64> = (0..nv).map(|i| i as f64 * 0.5).collect();
        let mut buf = Vec::new();
        put_keys(&mut buf, &keys);
        put_values(&mut buf, &vals);
        put_keys(&mut buf, &keys);
        let enc = seal(buf);
        let cut = cut_sel.index(enc.len()); // strictly shorter prefix
        prop_assert!(Decoder::new(&enc[..cut]).is_err());
    }

    /// Multi-section frames: a single flipped bit anywhere — headers,
    /// either section, the seal itself — is caught at verification.
    #[test]
    fn combined_bit_flips_never_decode(
        nk in 1usize..8,
        nv in 1usize..8,
        byte_sel in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let keys: Vec<Key> = (0..nk as u64).map(Key::new).collect();
        let vals: Vec<f64> = (0..nv).map(|i| i as f64 + 0.25).collect();
        let mut buf = Vec::new();
        put_keys(&mut buf, &keys);
        put_values(&mut buf, &vals);
        let mut enc = seal(buf).to_vec();
        let byte = byte_sel.index(enc.len());
        enc[byte] ^= 1 << bit;
        prop_assert!(Decoder::new(&enc).is_err());
    }

    /// Garbage bodies wearing a VALID seal: the multi-section decode
    /// chain must return errors (or benign successes), never panic or
    /// read past the body.
    #[test]
    fn sealed_garbage_sections_error_cleanly(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let sealed = seal(bytes);
        let mut dec = Decoder::new(&sealed).expect("a fresh seal always verifies");
        let _ = dec.keys();
        let _ = dec.values::<f64>();
        let _ = dec.keys();
        let _ = dec.finished();
    }

    /// Regression, generalised: `Decoder::count` bounds a section by
    /// the bytes *remaining*, not the whole body. A later section
    /// claiming more elements than what follows it — but fewer than the
    /// full body length, which the old whole-body bound accepted — must
    /// be rejected at the count for every section shape.
    #[test]
    fn later_section_counts_bounded_by_remaining(nk in 0usize..8, extra in 0usize..8) {
        let keys: Vec<Key> = (0..nk as u64).map(Key::new).collect();
        let mut buf = Vec::new();
        put_keys(&mut buf, &keys);
        // claim > `extra` bytes remaining, yet ≤ total body length.
        let claim = (extra + 1 + 4 * nk) as u64;
        buf.extend_from_slice(&claim.to_le_bytes());
        buf.extend_from_slice(&vec![0u8; extra]);
        let sealed = seal(buf);
        let mut dec = Decoder::new(&sealed).unwrap();
        prop_assert!(dec.keys().is_ok());
        prop_assert!(dec.values::<u64>().is_err(), "oversized later section must fail");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random degree lists: plans keep group/coordinate/range coherence.
    #[test]
    fn random_plans_are_coherent(degrees in prop::collection::vec(1usize..6, 1..5)) {
        let plan = NetworkPlan::new(&degrees);
        let m = plan.size();
        prop_assert!(m >= 1);
        for j in 0..m {
            for layer in 0..plan.layers() {
                let g = plan.group(j, layer);
                let c = plan.coordinate(j, layer);
                prop_assert_eq!(g[c], j);
                for &k in &g {
                    prop_assert_eq!(plan.group(k, layer), g.clone());
                }
            }
            // Bottom ranges tile disjointly: total length matches.
            let r = plan.range_at(j, plan.layers());
            prop_assert!(!r.is_empty() || m as u128 > (1u128 << 64));
        }
        let total: u128 = (0..m).map(|j| plan.range_at(j, plan.layers()).len()).sum();
        prop_assert_eq!(total, 1u128 << 64);
    }

    /// Configuration geometry on random workloads: spans tile each
    /// node's set, unions contain every shipped key, maps are in range.
    #[test]
    fn configuration_geometry_invariants(seed in 0u64..100_000) {
        let plan = NetworkPlan::new(&[2, 2]);
        let m = plan.size();
        let mut rng = Xoshiro256::new(seed);
        let idx: Vec<Vec<u64>> = (0..m)
            .map(|_| {
                let k = 1 + rng.next_index(50);
                (0..k).map(|_| rng.next_below(512)).collect()
            })
            .collect();
        let states = LocalCluster::run(m, |mut comm| {
            let me = comm.rank();
            Kylix::new(plan.clone())
                .configure(&mut comm, &idx[me], &idx[me], 0)
                .unwrap()
        });
        for state in &states {
            let mut prev_len = state.out0.len();
            for lr in &state.layers {
                // Spans tile [0, prev_len).
                prop_assert_eq!(lr.out_spans.first().unwrap().start, 0);
                prop_assert_eq!(lr.out_spans.last().unwrap().end, prev_len);
                for w in lr.out_spans.windows(2) {
                    prop_assert_eq!(w[0].end, w[1].start);
                }
                // Maps index into the union.
                for map in &lr.out_maps {
                    for &p in map {
                        prop_assert!((p as usize) < lr.out_union.len());
                    }
                }
                for map in &lr.in_maps {
                    for &p in map {
                        prop_assert!((p as usize) < lr.in_union.len());
                    }
                }
                prev_len = lr.out_union.len();
            }
            // Bottom lookup entries are positions or MISSING.
            let bottom = state.layers.last().unwrap();
            for &p in &state.bottom_in_to_out {
                prop_assert!(
                    p == kylix::config::MISSING || (p as usize) < bottom.out_union.len()
                );
            }
        }
    }
}
