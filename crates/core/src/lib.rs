#![warn(missing_docs)]

//! # kylix
//!
//! A from-scratch Rust implementation of **Kylix** — the sparse
//! allreduce for commodity clusters of Zhao & Canny (ICPP 2014).
//!
//! A *sparse allreduce* lets every node of a cluster contribute values
//! at a sparse set of indices of a huge logical vector and receive the
//! reduced values at a (different) sparse set of indices — the
//! communication primitive behind distributed PageRank, mini-batch SGD,
//! label propagation, and friends on power-law ("natural graph") data.
//!
//! Kylix runs the reduction over a **nested, heterogeneous-degree
//! butterfly**: layer `i` partitions each node's data into `dᵢ` hash
//! ranges and exchanges them within groups of `dᵢ` nodes; values flow
//! *down* the layers (scatter-reduce), collapse at shared indices, and
//! flow back *up* along the same routes (allgather). Heterogeneous
//! degrees let the packet size per layer stay above a commodity
//! network's minimum efficient size; nesting makes the return routing
//! free. On power-law data, per-layer volume *shrinks* going down —
//! plotted, it looks like a kylix, hence the name.
//!
//! ## Crate map
//!
//! * [`plan`] — the butterfly topology ([`NetworkPlan`]): degrees,
//!   groups, nested hash ranges. `NetworkPlan::direct(m)` and
//!   `NetworkPlan::binary(m)` are the paper's two comparators.
//! * [`allreduce`] — the public API ([`Kylix`]): configure-once /
//!   reduce-many, and combined single-pass mode for minibatches.
//! * [`config`] / [`reduce`] — the two protocol passes (§III).
//! * [`replicate`] — fault tolerance by replication + packet racing
//!   (§V): wrap any communicator in [`ReplicatedComm`] and run the
//!   identical protocol.
//! * [`design`] — the §IV workflow choosing optimal degrees from
//!   power-law statistics, plus an analytic cost model.
//! * [`codec`] — raw little-endian message framing, checksum-sealed so
//!   in-flight corruption is detected instead of silently reduced.
//! * <code>reference</code> — the sequential semantics used by the test suite.
//!
//! ## Example
//!
//! ```
//! use kylix::{Kylix, NetworkPlan};
//! use kylix_net::LocalCluster;
//! use kylix_sparse::SumReducer;
//!
//! // 8 threads stand in for 8 cluster nodes. Everyone contributes 1.0
//! // at index (rank mod 4) and asks for index 0.
//! let results = LocalCluster::run(8, |mut comm| {
//!     let kylix = Kylix::new(NetworkPlan::new(&[4, 2]));
//!     let me = kylix_net::Comm::rank(&comm) as u64 % 4;
//!     let (got, _) = kylix
//!         .allreduce_combined(&mut comm, &[0u64], &[me], &[1.0f64], SumReducer, 0)
//!         .unwrap();
//!     got[0]
//! });
//! // Index 0 was contributed by ranks 0 and 4.
//! assert!(results.iter().all(|&v| v == 2.0));
//! ```

pub mod allreduce;
pub mod codec;
pub mod config;
pub mod design;
pub mod error;
pub mod plan;
pub mod reduce;
pub mod reference;
pub mod replicate;
pub mod scalar;

pub use allreduce::Kylix;
pub use config::{Configured, LayerRouting, RecvOrder};
pub use design::{optimal_degrees, predict_reduce_time, DesignInput};
pub use error::{KylixError, Result};
pub use plan::NetworkPlan;
pub use reference::{reference_allreduce, NodeContribution};
pub use replicate::ReplicatedComm;
pub use scalar::ScalarCollective;
