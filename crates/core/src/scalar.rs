//! Scalar collectives over the sparse allreduce.
//!
//! Iterative algorithms need tiny control-plane reductions — "how many
//! labels changed anywhere this round?", "what is the global norm?" —
//! alongside their data-plane traffic. Rather than a separate
//! mechanism, these ride the same primitive: a one-index sparse
//! allreduce where every node contributes at, and requests, a single
//! sentinel index. [`ScalarCollective`] configures that once and then
//! reduces one scalar per call.

use crate::allreduce::Kylix;
use crate::config::Configured;
use crate::error::Result;
use crate::plan::NetworkPlan;
use kylix_net::Comm;
use kylix_sparse::{Reducer, Scalar};

/// A reusable one-value collective over a butterfly plan.
pub struct ScalarCollective {
    state: Configured,
}

impl ScalarCollective {
    /// Configure the collective. `channel` must be disjoint from other
    /// collectives on the communicator (spaced past the number of
    /// `reduce` calls, as with [`Kylix::configure`]).
    pub fn new<C: Comm>(comm: &mut C, plan: &NetworkPlan, channel: u32) -> Result<Self> {
        let kylix = Kylix::new(plan.clone());
        let state = kylix.configure(comm, &[0u64], &[0u64], channel)?;
        Ok(Self { state })
    }

    /// Reduce one value across all nodes with the given operator.
    pub fn reduce<C, V, R>(&mut self, comm: &mut C, value: V, reducer: R) -> Result<V>
    where
        C: Comm,
        V: Scalar,
        R: Reducer<V>,
    {
        Ok(self.state.reduce(comm, &[value], reducer)?[0])
    }

    /// Sum convenience.
    pub fn sum<C: Comm>(&mut self, comm: &mut C, value: f64) -> Result<f64> {
        self.reduce(comm, value, kylix_sparse::SumReducer)
    }

    /// Logical-or across nodes (any node true ⇒ all true), encoded as
    /// a `u64` sum being nonzero.
    pub fn any<C: Comm>(&mut self, comm: &mut C, flag: bool) -> Result<bool> {
        Ok(self.reduce(comm, flag as u64, kylix_sparse::SumReducer)? != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix_net::LocalCluster;
    use kylix_sparse::{MaxReducer, MinReducer};

    #[test]
    fn sum_across_nodes() {
        let out = LocalCluster::run(6, |mut comm| {
            let me = kylix_net::Comm::rank(&comm) as f64;
            let plan = NetworkPlan::new(&[3, 2]);
            let mut coll = ScalarCollective::new(&mut comm, &plan, 0).unwrap();
            coll.sum(&mut comm, me).unwrap()
        });
        assert!(out.iter().all(|&s| s == 15.0));
    }

    #[test]
    fn repeated_reductions_with_min_max() {
        let out = LocalCluster::run(4, |mut comm| {
            let plan = NetworkPlan::new(&[2, 2]);
            let mut coll = ScalarCollective::new(&mut comm, &plan, 0).unwrap();
            let me = kylix_net::Comm::rank(&comm) as u64 + 10;
            let mn = coll.reduce(&mut comm, me, MinReducer).unwrap();
            let mx = coll.reduce(&mut comm, me, MaxReducer).unwrap();
            (mn, mx)
        });
        assert!(out.iter().all(|&(mn, mx)| mn == 10 && mx == 13));
    }

    #[test]
    fn any_flags_propagate() {
        let out = LocalCluster::run(4, |mut comm| {
            let plan = NetworkPlan::direct(4);
            let mut coll = ScalarCollective::new(&mut comm, &plan, 0).unwrap();
            let me = kylix_net::Comm::rank(&comm);
            let some = coll.any(&mut comm, me == 2).unwrap();
            let none = coll.any(&mut comm, false).unwrap();
            (some, none)
        });
        assert!(out.iter().all(|&(s, n)| s && !n));
    }
}
