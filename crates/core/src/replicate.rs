//! Replication-based fault tolerance (paper §V).
//!
//! The scheme: pick a replication factor `s`; physical node `p` plays
//! *logical* node `p mod m` (with `m = physical/s` logical nodes), every
//! replica holds the same data and runs the same protocol, every message
//! to logical node `j` is fanned out to all of `j`'s replicas, and every
//! receive becomes a **packet race** over the sender's replica set — the
//! first copy wins, the rest are discarded (§V.B). The protocol
//! completes unless *all* replicas of some node are dead; by the
//! birthday argument the expected number of random failures a 2×
//! replicated m-node network absorbs is ≈ √m.
//!
//! Implementation: [`ReplicatedComm`] wraps any physical communicator
//! and presents the *logical* cluster through the same `Comm` trait —
//! the entire Kylix stack (and the baselines, and the applications) run
//! replicated without a single code change. Racing inherits the
//! underlying communicator's `recv_any`: on the simulator the earliest
//! virtual delivery wins (absorbing latency jitter exactly as the paper
//! describes); on the thread cluster the first real arrival wins.

use bytes::Bytes;
use kylix_net::telemetry::RankTelemetry;
use kylix_net::{Comm, CommError, Tag};
use std::time::Duration;

/// A logical view of a replicated physical cluster.
pub struct ReplicatedComm<C: Comm> {
    inner: C,
    logical_size: usize,
    replication: usize,
}

impl<C: Comm> ReplicatedComm<C> {
    /// Wrap a physical communicator; the physical size must be an exact
    /// multiple of `replication`.
    pub fn new(inner: C, replication: usize) -> Self {
        assert!(replication >= 1, "replication factor must be >= 1");
        assert_eq!(
            inner.size() % replication,
            0,
            "physical size {} not divisible by replication {replication}",
            inner.size()
        );
        let logical_size = inner.size() / replication;
        Self {
            inner,
            logical_size,
            replication,
        }
    }

    /// The replication factor `s`.
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// Which replica of its logical node this physical rank is (0-based).
    pub fn replica_index(&self) -> usize {
        self.inner.rank() / self.logical_size
    }

    /// Physical ranks hosting a logical node.
    pub fn replicas_of(&self, logical: usize) -> Vec<usize> {
        (0..self.replication)
            .map(|r| logical + r * self.logical_size)
            .collect()
    }

    /// Unwrap the physical communicator.
    pub fn into_inner(self) -> C {
        self.inner
    }

    /// Borrow the physical communicator.
    pub fn inner(&self) -> &C {
        &self.inner
    }
}

impl<C: Comm> Comm for ReplicatedComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank() % self.logical_size
    }

    fn size(&self) -> usize {
        self.logical_size
    }

    fn send(&mut self, to: usize, tag: Tag, payload: Bytes) {
        debug_assert!(to < self.logical_size);
        // Fan out to every replica; `Bytes` clones are refcounted, not
        // copied.
        for r in 0..self.replication {
            self.inner
                .send(to + r * self.logical_size, tag, payload.clone());
        }
    }

    fn recv_timeout(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Bytes, CommError> {
        let replicas = self.replicas_of(from);
        let (winner, payload) = self
            .inner
            .recv_any_timeout(&replicas, tag, timeout)
            .map_err(|e| match e {
                // The logical view asked for one source; report it so.
                CommError::TimeoutAny { .. } => CommError::Timeout { from, tag },
                other => other,
            })?;
        // Cancel the losing replicas' copies (the paper's cancelled
        // listener threads, §V.B) — without this every race leaks
        // `s - 1` payloads into the receive stash for the rest of the
        // run.
        let losers: Vec<usize> = replicas.into_iter().filter(|&r| r != winner).collect();
        self.inner.discard(&losers, tag);
        Ok(payload)
    }

    fn recv_any_timeout(
        &mut self,
        sources: &[usize],
        tag: Tag,
        timeout: Duration,
    ) -> Result<(usize, Bytes), CommError> {
        let physical: Vec<usize> = sources.iter().flat_map(|&s| self.replicas_of(s)).collect();
        let (winner, payload) = self
            .inner
            .recv_any_timeout(&physical, tag, timeout)
            .map_err(|e| match e {
                CommError::TimeoutAny { tag, .. } => CommError::TimeoutAny {
                    sources: sources.to_vec(),
                    tag,
                },
                other => other,
            })?;
        let logical = winner % self.logical_size;
        // Only the winner's own sibling copies are cancelled: the other
        // logical sources may still be claimed by a later receive.
        let losers: Vec<usize> = self
            .replicas_of(logical)
            .into_iter()
            .filter(|&r| r != winner)
            .collect();
        self.inner.discard(&losers, tag);
        Ok((logical, payload))
    }

    fn discard(&mut self, sources: &[usize], tag: Tag) {
        let physical: Vec<usize> = sources.iter().flat_map(|&s| self.replicas_of(s)).collect();
        self.inner.discard(&physical, tag);
    }

    fn now(&self) -> f64 {
        self.inner.now()
    }

    fn charge_compute(&mut self, seconds: f64) {
        self.inner.charge_compute(seconds);
    }

    fn note_traffic(&mut self, layer: u16, bytes: usize) {
        self.inner.note_traffic(layer, bytes);
    }

    fn telemetry(&self) -> Option<&RankTelemetry> {
        self.inner.telemetry()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix_net::{LocalCluster, Phase};

    fn t(seq: u32) -> Tag {
        Tag::new(Phase::App, 0, seq)
    }

    #[test]
    fn logical_addressing() {
        // 6 physical ranks, s=2 -> 3 logical nodes.
        let out = LocalCluster::run(6, |comm| {
            let rc = ReplicatedComm::new(comm, 2);
            (rc.rank(), rc.size(), rc.replica_index())
        });
        assert_eq!(out[0], (0, 3, 0));
        assert_eq!(out[4], (1, 3, 1));
        assert_eq!(out[5], (2, 3, 1));
    }

    #[test]
    fn replicated_ping_reaches_all_replicas() {
        let out = LocalCluster::run(4, |comm| {
            let mut rc = ReplicatedComm::new(comm, 2);
            match rc.inner().rank() {
                0 => {
                    rc.send(1, t(0), Bytes::from_static(b"hi"));
                    None
                }
                1 | 3 => Some(rc.recv(0, t(0)).unwrap().to_vec()),
                _ => None,
            }
        });
        // Both replicas of logical 1 (physical 1 and 3) got the copy.
        assert_eq!(out[1].as_deref(), Some(b"hi".as_ref()));
        assert_eq!(out[3].as_deref(), Some(b"hi".as_ref()));
    }

    #[test]
    fn racing_survives_dead_sender_replica() {
        // Physical 0 (replica 0 of logical 0) is dead; replica 1
        // (physical 2) still serves logical 0's message.
        let out = LocalCluster::run_with_failures(4, &[0], |comm| {
            let mut rc = ReplicatedComm::new(comm, 2);
            match rc.inner().rank() {
                2 => {
                    // Replica of logical 0 sends on its behalf.
                    rc.send(1, t(1), Bytes::from_static(b"alive"));
                    None
                }
                1 | 3 => Some(rc.recv(0, t(1)).unwrap().to_vec()),
                _ => None,
            }
        });
        assert_eq!(out[1].as_ref().unwrap().as_deref(), Some(b"alive".as_ref()));
        assert_eq!(out[3].as_ref().unwrap().as_deref(), Some(b"alive".as_ref()));
    }

    #[test]
    fn races_do_not_leak_stash() {
        // Regression: before discard GC, every replicated receive left
        // the losing replica's copy in the stash forever — O(rounds)
        // growth. Now the stash must stay empty and every registered
        // discard must be matched once the slower replica's copies all
        // arrive.
        const ROUNDS: u32 = 50;
        let out = LocalCluster::run(4, |comm| {
            let mut rc = ReplicatedComm::new(comm, 2);
            let phys = rc.inner().rank();
            for round in 0..ROUNDS {
                match phys {
                    0 | 2 => rc.send(1, t(round), Bytes::from_static(b"ping")),
                    _ => {
                        rc.recv(0, t(round)).unwrap();
                    }
                }
            }
            let mut c = rc.into_inner();
            // Losing copies from the slower replica may still be in
            // flight; keep draining (via a receive that cannot match)
            // until each pending discard has consumed its arrival.
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while c.pending_discard_len() > 0 && std::time::Instant::now() < deadline {
                let _ = c.recv_timeout(0, t(u32::MAX), Duration::from_millis(1));
            }
            (c.stash_len(), c.pending_discard_len())
        });
        for &rank in &[1usize, 3] {
            let (stash, pending) = out[rank];
            assert_eq!(stash, 0, "rank {rank}: losing copies must be collected");
            assert_eq!(pending, 0, "rank {rank}: every discard must be matched");
        }
    }

    #[test]
    fn replicas_of_is_consistent() {
        let comms = kylix_net::ThreadComm::make_cluster(8);
        let rc = ReplicatedComm::new(comms.into_iter().next().unwrap(), 4);
        assert_eq!(rc.size(), 2);
        assert_eq!(rc.replicas_of(0), vec![0, 2, 4, 6]);
        assert_eq!(rc.replicas_of(1), vec![1, 3, 5, 7]);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_replication_panics() {
        let comms = kylix_net::ThreadComm::make_cluster(5);
        let _ = ReplicatedComm::new(comms.into_iter().next().unwrap(), 2);
    }
}
