//! The network-design workflow (paper §IV).
//!
//! Given the measurable properties of a workload — the number of
//! features `n`, the power-law exponent `α`, and the density `D₀` of one
//! node's partition — plus the network's minimum efficient packet size
//! (read off its Fig. 2 curve), pick the butterfly degrees:
//!
//! 1. invert the density curve to get the top-layer scaling factor `λ₀`;
//! 2. at each layer, compute the expected per-node data volume
//!    `P = (n / K) · f(K λ₀) · elem_bytes` (Prop. 4.1);
//! 3. choose the **largest** degree `d` (dividing the remaining node
//!    count) such that the per-neighbour packet `P / d` stays at or
//!    above the minimum efficient size — big degrees mean few layers
//!    (low latency), so we take the biggest the packet budget allows;
//! 4. descend (`K ← K·d`) and repeat until the degrees multiply to `m`.
//!
//! When even a 2-way split would fall below the packet floor, the
//! workflow takes the *smallest* available divisor instead — packets
//! stay as large as possible, conceding an extra layer. Because
//! per-node volume shrinks monotonically down a power-law reduction,
//! degrees come out non-increasing — the paper's observation that "for
//! optimum performance, the butterfly degrees also decrease down the
//! layers".
//!
//! The module also provides a closed-form time estimate for any plan
//! (an analytic LogGP-style cost model), used to sanity-check the
//! simulator and to rank candidate plans in the ablation benches.

use crate::plan::NetworkPlan;
use kylix_powerlaw::DensityModel;
use nic_like::NicLike;

/// Minimal view of a NIC cost model, so `kylix` does not depend on the
/// simulator crate (which depends back on `kylix-net`). Any type with
/// per-message overhead and bandwidth can drive the design workflow;
/// `kylix-netsim`'s `NicModel` satisfies it through a tiny adapter in
/// the bench harness.
pub mod nic_like {
    /// Overhead/bandwidth view of a NIC.
    pub trait NicLike {
        /// Fixed per-message cost, seconds.
        fn overhead_s(&self) -> f64;
        /// Link bandwidth, bytes/second.
        fn bandwidth_bps(&self) -> f64;
    }

    /// A bare (overhead, bandwidth) pair.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct SimpleNic {
        /// Fixed per-message cost, seconds.
        pub overhead: f64,
        /// Bandwidth, bytes/second.
        pub bandwidth: f64,
    }

    impl NicLike for SimpleNic {
        fn overhead_s(&self) -> f64 {
            self.overhead
        }
        fn bandwidth_bps(&self) -> f64 {
            self.bandwidth
        }
    }
}

/// Workload + network inputs to the design workflow.
#[derive(Debug, Clone, Copy)]
pub struct DesignInput {
    /// Cluster size (the degrees will multiply to this).
    pub m: usize,
    /// The data's density model (n features, exponent α).
    pub model: DensityModel,
    /// Top-layer scaling factor (invert the measured density to get it:
    /// `model.lambda_for_density(d0)`).
    pub lambda0: f64,
    /// Bytes per vector element on the wire.
    pub elem_bytes: usize,
    /// Minimum efficient packet size in bytes (paper: ≈5 MB on EC2).
    pub min_packet_bytes: f64,
}

/// Divisors of `x` that are ≥ 2, ascending.
fn divisors(x: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= x {
        if x.is_multiple_of(d) {
            out.push(d);
            if d != x / d {
                out.push(x / d);
            }
        }
        d += 1;
    }
    if x >= 2 {
        out.push(x);
    }
    out.sort_unstable();
    out
}

/// The §IV workflow: choose optimal layer degrees for a workload.
pub fn optimal_degrees(input: &DesignInput) -> NetworkPlan {
    assert!(input.m >= 1);
    let mut remaining = input.m;
    let mut agg = 1u64;
    let mut degrees = Vec::new();
    while remaining > 1 {
        let density = input.model.density(agg as f64 * input.lambda0);
        let per_node_bytes =
            (input.model.n as f64 / agg as f64) * density * input.elem_bytes as f64;
        let divs = divisors(remaining);
        // Largest degree whose per-neighbour packet clears the floor;
        // fall back to the smallest divisor (maximise packet size at the
        // cost of a layer) when nothing clears it.
        let d = divs
            .iter()
            .copied()
            .filter(|&d| per_node_bytes / d as f64 >= input.min_packet_bytes)
            .max()
            .unwrap_or(divs[0]);
        degrees.push(d);
        agg *= d as u64;
        remaining /= d;
    }
    if degrees.is_empty() {
        degrees.push(1);
    }
    NetworkPlan::new(&degrees)
}

/// Closed-form estimate of one reduce pass (down + up) over a plan:
/// per layer every node sends `d−1` packets of `P/d` bytes through one
/// NIC, so the layer costs `(d−1)·(o + P/(d·B))`, and the up pass
/// mirrors the down pass with the in-set volumes ≈ out-set volumes.
///
/// The estimate deliberately ignores receive CPU and jitter — it is a
/// *ranking* model (which plan is better), validated against the full
/// simulator in the integration tests, not a clock.
pub fn predict_reduce_time<N: NicLike>(
    plan: &NetworkPlan,
    model: &DensityModel,
    lambda0: f64,
    elem_bytes: usize,
    nic: &N,
) -> f64 {
    let preds = model.layer_predictions(lambda0, plan.degrees());
    let mut total = 0.0;
    for (i, &d) in plan.degrees().iter().enumerate() {
        let per_node_bytes = preds[i].elems_per_node * elem_bytes as f64;
        let packet = per_node_bytes / d as f64;
        let layer = (d as f64 - 1.0) * (nic.overhead_s() + packet / nic.bandwidth_bps());
        total += 2.0 * layer; // down + up
    }
    total
}

#[cfg(test)]
mod tests {
    use super::nic_like::SimpleNic;
    use super::*;

    fn twitterish() -> (DensityModel, f64) {
        let model = DensityModel::new(1 << 20, 1.1);
        let lambda0 = model.lambda_for_density(0.21);
        (model, lambda0)
    }

    #[test]
    fn divisors_are_correct() {
        assert_eq!(divisors(64), vec![2, 4, 8, 16, 32, 64]);
        assert_eq!(divisors(12), vec![2, 3, 4, 6, 12]);
        assert_eq!(divisors(7), vec![7]);
        assert_eq!(divisors(1), Vec::<usize>::new());
    }

    #[test]
    fn degrees_multiply_to_m_and_decrease() {
        let (model, lambda0) = twitterish();
        for m in [4usize, 8, 16, 32, 64, 128] {
            let plan = optimal_degrees(&DesignInput {
                m,
                model,
                lambda0,
                elem_bytes: 8,
                min_packet_bytes: 150_000.0,
            });
            assert_eq!(plan.size(), m, "m={m}");
            let ds = plan.degrees();
            assert!(
                ds.windows(2).all(|w| w[0] >= w[1]),
                "degrees must not increase down the layers: {ds:?}"
            );
        }
    }

    #[test]
    fn large_packets_choose_direct() {
        // If the data is huge relative to the packet floor, one direct
        // layer is optimal (packets stay efficient at d = m).
        let (model, lambda0) = twitterish();
        let plan = optimal_degrees(&DesignInput {
            m: 16,
            model,
            lambda0,
            elem_bytes: 8,
            min_packet_bytes: 1.0,
        });
        assert_eq!(plan.degrees(), &[16]);
    }

    #[test]
    fn tiny_data_falls_back_to_binary() {
        // Packet floor unreachable: every layer takes the smallest
        // divisor, i.e. the binary butterfly for power-of-two m.
        let (model, lambda0) = twitterish();
        let plan = optimal_degrees(&DesignInput {
            m: 16,
            model,
            lambda0,
            elem_bytes: 8,
            min_packet_bytes: 1e12,
        });
        assert_eq!(plan.degrees(), &[2, 2, 2, 2]);
    }

    #[test]
    fn moderate_floor_yields_heterogeneous_plan() {
        let (model, lambda0) = twitterish();
        let plan = optimal_degrees(&DesignInput {
            m: 64,
            model,
            lambda0,
            elem_bytes: 8,
            min_packet_bytes: 150_000.0,
        });
        // Heterogeneous: more than one layer, not all binary.
        assert!(plan.layers() >= 2, "{plan}");
        assert!(plan.degrees()[0] > 2, "{plan}");
        assert_eq!(plan.size(), 64);
    }

    #[test]
    fn predictor_prefers_optimal_over_direct_small_packets() {
        // Sparse data on a big cluster: direct all-to-all pays m−1
        // overheads on tiny packets; a nested plan must predict faster.
        let model = DensityModel::new(1 << 20, 1.3);
        let lambda0 = model.lambda_for_density(0.035);
        let nic = SimpleNic {
            overhead: 0.75e-3,
            bandwidth: 1.25e9,
        };
        let direct = predict_reduce_time(&NetworkPlan::direct(64), &model, lambda0, 8, &nic);
        let nested = predict_reduce_time(&NetworkPlan::new(&[8, 4, 2]), &model, lambda0, 8, &nic);
        assert!(
            nested < direct,
            "nested {nested} should beat direct {direct}"
        );
    }

    /// The paper's full-scale Twitter operating point: 60 M features,
    /// 64-way partition density 0.21, 10 Gb/s NIC with ≈1 ms message
    /// overhead (≈5 MB minimum efficient packet). This is the regime of
    /// Figs. 5/6, where the direct topology's packets fall well below
    /// the efficient floor.
    fn paper_scale() -> (DensityModel, f64, SimpleNic) {
        let model = DensityModel::new(60_000_000, 1.1);
        let lambda0 = model.lambda_for_density(0.21);
        let nic = SimpleNic {
            overhead: 1.0e-3,
            bandwidth: 1.25e9,
        };
        (model, lambda0, nic)
    }

    #[test]
    fn predictor_prefers_fewer_layers_than_binary_when_data_large() {
        let (model, lambda0, nic) = paper_scale();
        let binary = predict_reduce_time(&NetworkPlan::binary(64), &model, lambda0, 8, &nic);
        let nested = predict_reduce_time(&NetworkPlan::new(&[8, 4, 2]), &model, lambda0, 8, &nic);
        assert!(
            nested < binary,
            "8x4x2 {nested} should beat binary {binary}"
        );
    }

    #[test]
    fn predictor_prefers_nested_over_direct_at_paper_scale() {
        let (model, lambda0, nic) = paper_scale();
        let direct = predict_reduce_time(&NetworkPlan::direct(64), &model, lambda0, 8, &nic);
        let nested = predict_reduce_time(&NetworkPlan::new(&[8, 4, 2]), &model, lambda0, 8, &nic);
        assert!(
            nested < direct,
            "8x4x2 {nested} should beat direct {direct}"
        );
    }

    #[test]
    fn designed_plan_predicts_no_worse_than_standard_topologies() {
        let (model, lambda0, nic) = paper_scale();
        // Packet floor: 80 % utilisation on this NIC ≈ 5 MB, as in §IV.
        let input = DesignInput {
            m: 64,
            model,
            lambda0,
            elem_bytes: 8,
            min_packet_bytes: 5_000_000.0,
        };
        let designed = optimal_degrees(&input);
        let t_designed = predict_reduce_time(&designed, &model, lambda0, 8, &nic);
        for other in [NetworkPlan::direct(64), NetworkPlan::binary(64)] {
            let t_other = predict_reduce_time(&other, &model, lambda0, 8, &nic);
            assert!(
                t_designed <= t_other * 1.05,
                "designed {designed} ({t_designed}) vs {other} ({t_other})"
            );
        }
    }
}
