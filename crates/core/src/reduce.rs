//! The reduction passes (paper §III.B).
//!
//! Reduction reuses the routing state built by configuration:
//!
//! * **Down pass** — at layer `i` a node sends each group neighbour the
//!   contiguous slice of its value vector matching the neighbour's hash
//!   sub-range (no gather needed: the partition spans *are* slices of
//!   the sorted layout), then scatter-adds the `dᵢ` incoming slices into
//!   the union layout through map `f`. After `l` layers every node holds
//!   a fully reduced share of the global vector.
//! * **Up pass** — starting from the reduced bottom values projected
//!   onto the bottom in-union, each layer (bottom to top) gathers, via
//!   map `g`, the values each neighbour requested during configuration
//!   and sends them back; the receiver writes the returned slices into
//!   its original partition spans, rebuilding the previous layer's
//!   in-vector ("simply concatenates them").
//!
//! ### The hot path (paper §VI.B)
//!
//! The paper credits *multi-threaded opportunistic communication* —
//! processing slices in arrival order rather than a fixed peer order —
//! for saturating commodity NICs. Receives here therefore default to
//! `recv_any` over the group ([`RecvOrder::Arrival`]): one slow peer no
//! longer stalls the slices that already landed. Because floating-point
//! addition is not associative, a `deterministic` mode (default for
//! float scalars) parks out-of-order arrivals and combines them in
//! coordinate order — bit-identical to the fixed-order schedule — while
//! exact integer reducers combine immediately on arrival. The up pass
//! writes disjoint spans, so its arrival order never affects results.
//!
//! Steady-state operations are also **allocation-free**: a
//! [`ReduceScratch`] slot kept on [`Configured`] pools the send arena
//! (split-and-frozen per message, reclaimed when receivers drop their
//! handles), ping-pong accumulator buffers, and the gather staging
//! buffer; received slices are scatter-combined straight from the
//! verified wire body (`Decoder::raw_values` +
//! `scatter_combine_le`/`copy_from_le`) without an intermediate
//! `Vec<V>`.
//!
//! A [`crate::config::Configured`] can issue any number of reductions —
//! the per-iteration path of PageRank-style workloads where the vertex
//! sets are fixed and only values change.

use crate::codec::{encode_values_into, Decoder, SEAL_LEN};
use crate::config::{values_wire_len, Configured, RecvOrder};
use crate::error::{comm_err, surface_corrupt, KylixError, Result};
use bytes::{Bytes, BytesMut};
use kylix_net::telemetry::Counter;
use kylix_net::{Comm, Phase, Tag};
use kylix_sparse::vec::{copy_from_le, gather_into, scatter_combine, scatter_combine_le};
use kylix_sparse::{Reducer, Scalar};

/// Pooled per-op buffers for one value type, kept on [`Configured`]
/// between reduce calls (see `ScratchStore`). Everything here is a
/// cache: dropping it (`Configured::reset_scratch`) only costs the next
/// op a warm-up.
#[derive(Debug, Default)]
pub(crate) struct ReduceScratch<V> {
    /// Send-buffer arena: each message is written in place, split off as
    /// `Bytes`, and the backing storage reclaimed once receivers drop it.
    arena: BytesMut,
    /// Ping-pong value buffers: `a` holds the current layer's input,
    /// `b` the accumulator being built; swapped per layer.
    a: Vec<V>,
    b: Vec<V>,
    /// Up-pass gather staging.
    gathered: Vec<V>,
    /// Deterministic-mode parking: out-of-order down-pass arrivals per
    /// coordinate, held until their turn in the combine order.
    parked: Vec<Option<Bytes>>,
    /// Peers still outstanding in the current arrival-order loop.
    pending: Vec<usize>,
}

impl Configured {
    /// Run one sparse allreduce over previously configured index sets.
    ///
    /// `out_values` is aligned with the caller's original `out_indices`
    /// order (duplicates are combined); the returned vector is aligned
    /// with the original `in_indices` order.
    pub fn reduce<C, V, R>(&mut self, comm: &mut C, out_values: &[V], reducer: R) -> Result<Vec<V>>
    where
        C: Comm,
        V: Scalar,
        R: Reducer<V>,
    {
        let mut out = Vec::with_capacity(self.in_user_map.len());
        self.reduce_into(comm, out_values, reducer, &mut out)?;
        Ok(out)
    }

    /// [`Self::reduce`] into a caller-provided buffer. With the pooled
    /// scratch this makes steady-state iterations allocation-free end to
    /// end — the per-iteration path of PageRank-style workloads.
    pub fn reduce_into<C, V, R>(
        &mut self,
        comm: &mut C,
        out_values: &[V],
        reducer: R,
        out: &mut Vec<V>,
    ) -> Result<()>
    where
        C: Comm,
        V: Scalar,
        R: Reducer<V>,
    {
        if out_values.len() != self.out_user_map.len() {
            return Err(KylixError::Usage {
                what: "out_values length != out_indices length",
            });
        }
        // Fresh tag sequence for this operation: the channel id is the
        // namespace, ops_issued the operation counter. Collisions with a
        // concurrently configured instance require the caller to space
        // channel ids (documented on `Kylix::configure`).
        self.ops_issued += 1;
        let seq = self.channel.wrapping_add(self.ops_issued);
        // Take the scratch slot out of `self` so the routing tables stay
        // freely borrowable; put it back whatever the outcome.
        let mut scratch: Box<ReduceScratch<V>> = self.scratch.take();
        let t0 = comm.now();
        let result = self.reduce_op(comm, out_values, reducer, seq, &mut scratch, out);
        self.scratch.put(scratch);
        if result.is_ok() {
            // Histogram the whole collective through the substrate's own
            // clock: virtual seconds on the simulator, wall seconds on
            // real clusters. Two atomic adds — nothing here allocates.
            let nanos = ((comm.now() - t0) * 1e9).round() as u64;
            if let Some(tel) = comm.telemetry() {
                tel.record_op(nanos);
                if tel.tracing() {
                    tel.trace_event(comm.now(), Phase::App as u8, 0, "reduce_op", nanos);
                }
            }
        }
        result
    }

    fn reduce_op<C, V, R>(
        &self,
        comm: &mut C,
        out_values: &[V],
        reducer: R,
        seq: u32,
        s: &mut ReduceScratch<V>,
        out: &mut Vec<V>,
    ) -> Result<()>
    where
        C: Comm,
        V: Scalar,
        R: Reducer<V>,
    {
        // User order -> sorted layout, combining duplicate indices.
        s.a.clear();
        s.a.resize(self.out0.len(), reducer.identity());
        for (x, &sp) in out_values.iter().zip(&self.out_user_map) {
            reducer.combine(&mut s.a[sp as usize], *x);
        }

        self.down_values(comm, reducer, seq, s)?;

        // Project fully reduced bottom values onto the bottom in-union:
        // requested indices nobody contributed to read as the identity.
        s.b.clear();
        s.b.reserve(self.bottom_in_to_out.len());
        for &p in &self.bottom_in_to_out {
            s.b.push(if p == crate::config::MISSING {
                reducer.identity()
            } else {
                s.a[p as usize]
            });
        }
        std::mem::swap(&mut s.a, &mut s.b);

        self.up_values_pooled(comm, seq, s)?;

        // Sorted layout -> user order.
        out.clear();
        out.reserve(self.in_user_map.len());
        for &p in &self.in_user_map {
            out.push(s.a[p as usize]);
        }
        Ok(())
    }

    /// Project fully reduced bottom values onto the bottom in-union
    /// (allocating variant used by the combined config+reduce pass).
    pub(crate) fn project_bottom<V, R>(&self, bottom: &[V], reducer: R) -> Vec<V>
    where
        V: Scalar,
        R: Reducer<V>,
    {
        self.bottom_in_to_out
            .iter()
            .map(|&p| {
                if p == crate::config::MISSING {
                    reducer.identity()
                } else {
                    bottom[p as usize]
                }
            })
            .collect()
    }

    /// Down pass: scatter-reduce `s.a` (aligned with `out0`) to the
    /// bottom layer; leaves values aligned with the bottom out-union in
    /// `s.a`.
    fn down_values<C, V, R>(
        &self,
        comm: &mut C,
        reducer: R,
        seq: u32,
        s: &mut ReduceScratch<V>,
    ) -> Result<()>
    where
        C: Comm,
        V: Scalar,
        R: Reducer<V>,
    {
        let deterministic = self.deterministic.unwrap_or(V::ORDER_SENSITIVE);
        let ReduceScratch {
            arena,
            a,
            b,
            parked,
            pending,
            ..
        } = &mut *s;
        for (layer, lr) in self.layers.iter().enumerate() {
            let tag = Tag::new(Phase::ReduceDown, layer as u16, seq);
            for (c, &peer) in lr.group.iter().enumerate() {
                if c == lr.my_pos {
                    let bytes = values_wire_len::<V>(lr.out_spans[c].len()) + SEAL_LEN;
                    comm.note_traffic(layer as u16, bytes);
                    // `note_traffic` files under the pseudo-phase so the
                    // traffic report stays whole; the dedicated self
                    // kinds carry the true phase for per-pass figures.
                    if let Some(tel) = comm.telemetry() {
                        let (p, l) = (Phase::ReduceDown as u8, layer as u16);
                        tel.add(p, l, Counter::SelfBytes, bytes as u64);
                        tel.add(p, l, Counter::SelfMsgs, 1);
                    }
                    continue;
                }
                let msg = encode_values_into(arena, &a[lr.out_spans[c].clone()]);
                comm.send(peer, tag, msg);
            }
            b.clear();
            b.resize(lr.out_union.len(), reducer.identity());
            // Own slice first — the head of the deterministic combine
            // order (and free: it never crosses the network).
            scatter_combine(
                b,
                &a[lr.out_spans[lr.my_pos].clone()],
                &lr.out_maps[lr.my_pos],
                reducer,
            );
            match self.recv_order {
                RecvOrder::Fixed => {
                    for (c, &peer) in lr.group.iter().enumerate() {
                        if c == lr.my_pos {
                            continue;
                        }
                        let payload = comm.recv(peer, tag).map_err(comm_err("reduce down"))?;
                        combine_slice(b, &payload, &lr.out_maps[c], reducer, peer, tag)?;
                    }
                }
                RecvOrder::Arrival => {
                    pending.clear();
                    pending.extend(
                        lr.group
                            .iter()
                            .enumerate()
                            .filter(|&(c, _)| c != lr.my_pos)
                            .map(|(_, &peer)| peer),
                    );
                    if deterministic {
                        // Opportunistic receive, fixed combine: park each
                        // arrival at its coordinate and fold the prefix
                        // that is ready. Results stay bit-identical to
                        // the fixed-order schedule while the waiting
                        // still overlaps with whoever arrives first.
                        parked.clear();
                        parked.resize(lr.group.len(), None);
                        let mut next = 0usize;
                        while !pending.is_empty() {
                            let (src, payload) = comm
                                .recv_any(pending, tag)
                                .map_err(comm_err("reduce down"))?;
                            retire_pending(pending, src);
                            parked[coord_of(&lr.group, src)] = Some(payload);
                            while next < parked.len() {
                                if next == lr.my_pos {
                                    next += 1;
                                    continue;
                                }
                                let Some(payload) = parked[next].take() else {
                                    break;
                                };
                                combine_slice(
                                    b,
                                    &payload,
                                    &lr.out_maps[next],
                                    reducer,
                                    lr.group[next],
                                    tag,
                                )?;
                                next += 1;
                            }
                        }
                    } else {
                        // Exact reducers: combine in arrival order.
                        while !pending.is_empty() {
                            let (src, payload) = comm
                                .recv_any(pending, tag)
                                .map_err(comm_err("reduce down"))?;
                            retire_pending(pending, src);
                            let c = coord_of(&lr.group, src);
                            combine_slice(b, &payload, &lr.out_maps[c], reducer, src, tag)?;
                        }
                    }
                }
            }
            std::mem::swap(a, b);
        }
        Ok(())
    }

    /// Up pass: carry `uvals` (aligned with the bottom in-union) back to
    /// the top; returns values aligned with `in0`. One-shot entry point
    /// for the combined config+reduce pass.
    pub(crate) fn up_values<C, V>(&self, comm: &mut C, uvals: Vec<V>, seq: u32) -> Result<Vec<V>>
    where
        C: Comm,
        V: Scalar,
    {
        let mut s = ReduceScratch::<V> {
            a: uvals,
            ..Default::default()
        };
        self.up_values_pooled(comm, seq, &mut s)?;
        Ok(s.a)
    }

    /// Up pass over pooled scratch: `s.a` in (bottom in-union), `s.a`
    /// out (aligned with `in0`). Returned slices land in disjoint spans,
    /// so arrival order never changes the result — no parking needed.
    fn up_values_pooled<C, V>(&self, comm: &mut C, seq: u32, s: &mut ReduceScratch<V>) -> Result<()>
    where
        C: Comm,
        V: Scalar,
    {
        let ReduceScratch {
            arena,
            a,
            b,
            gathered,
            pending,
            ..
        } = &mut *s;
        for (layer, lr) in self.layers.iter().enumerate().rev() {
            let tag = Tag::new(Phase::ReduceUp, layer as u16, seq);
            for (c, &peer) in lr.group.iter().enumerate() {
                if c == lr.my_pos {
                    let bytes = values_wire_len::<V>(lr.in_maps[c].len()) + SEAL_LEN;
                    comm.note_traffic(layer as u16, bytes);
                    if let Some(tel) = comm.telemetry() {
                        let (p, l) = (Phase::ReduceUp as u8, layer as u16);
                        tel.add(p, l, Counter::SelfBytes, bytes as u64);
                        tel.add(p, l, Counter::SelfMsgs, 1);
                    }
                    continue;
                }
                gather_into(a, &lr.in_maps[c], gathered);
                comm.send(peer, tag, encode_values_into(arena, gathered));
            }
            // Every position is overwritten by a returned slice; the
            // default is just an initialiser.
            b.clear();
            b.resize(lr.in_prev_len(), V::default());
            // Own requested part comes straight from local memory.
            gather_into(a, &lr.in_maps[lr.my_pos], gathered);
            b[lr.in_spans[lr.my_pos].clone()].copy_from_slice(gathered);
            match self.recv_order {
                RecvOrder::Fixed => {
                    for (c, &peer) in lr.group.iter().enumerate() {
                        if c == lr.my_pos {
                            continue;
                        }
                        let payload = comm.recv(peer, tag).map_err(comm_err("reduce up"))?;
                        fill_span(&mut b[lr.in_spans[c].clone()], &payload, peer, tag)?;
                    }
                }
                RecvOrder::Arrival => {
                    pending.clear();
                    pending.extend(
                        lr.group
                            .iter()
                            .enumerate()
                            .filter(|&(c, _)| c != lr.my_pos)
                            .map(|(_, &peer)| peer),
                    );
                    while !pending.is_empty() {
                        let (src, payload) =
                            comm.recv_any(pending, tag).map_err(comm_err("reduce up"))?;
                        retire_pending(pending, src);
                        let c = coord_of(&lr.group, src);
                        fill_span(&mut b[lr.in_spans[c].clone()], &payload, src, tag)?;
                    }
                }
            }
            std::mem::swap(a, b);
        }
        Ok(())
    }
}

/// Coordinate of `src` in a layer group (groups are small: linear scan).
#[inline]
fn coord_of(group: &[usize], src: usize) -> usize {
    group
        .iter()
        .position(|&r| r == src)
        .expect("recv_any winner is in the group")
}

/// Drop `src` from the outstanding-peer list (order is irrelevant).
#[inline]
fn retire_pending(pending: &mut Vec<usize>, src: usize) {
    let i = pending
        .iter()
        .position(|&r| r == src)
        .expect("recv_any winner was pending");
    pending.swap_remove(i);
}

/// Verify one down-pass slice and scatter-combine it straight from the
/// wire body into the accumulator (no intermediate `Vec<V>`).
fn combine_slice<V, R>(
    acc: &mut [V],
    payload: &[u8],
    map: &[u32],
    reducer: R,
    peer: usize,
    tag: Tag,
) -> Result<()>
where
    V: Scalar,
    R: Reducer<V>,
{
    let mut dec = Decoder::new(payload).map_err(surface_corrupt("reduce down", peer, tag))?;
    let (n, raw) = dec
        .raw_values::<V>()
        .map_err(surface_corrupt("reduce down", peer, tag))?;
    if n != map.len() || !dec.finished() {
        return Err(KylixError::Codec {
            what: "down-pass values misaligned with configuration",
        });
    }
    scatter_combine_le(acc, raw, map, reducer);
    Ok(())
}

/// Verify one up-pass slice and decode it straight into its partition
/// span.
fn fill_span<V: Scalar>(dst: &mut [V], payload: &[u8], peer: usize, tag: Tag) -> Result<()> {
    let mut dec = Decoder::new(payload).map_err(surface_corrupt("reduce up", peer, tag))?;
    let (n, raw) = dec
        .raw_values::<V>()
        .map_err(surface_corrupt("reduce up", peer, tag))?;
    if n != dst.len() || !dec.finished() {
        return Err(KylixError::Codec {
            what: "up-pass values misaligned with configuration",
        });
    }
    copy_from_le(dst, raw);
    Ok(())
}
