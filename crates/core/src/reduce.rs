//! The reduction passes (paper §III.B).
//!
//! Reduction reuses the routing state built by configuration:
//!
//! * **Down pass** — at layer `i` a node sends each group neighbour the
//!   contiguous slice of its value vector matching the neighbour's hash
//!   sub-range (no gather needed: the partition spans *are* slices of
//!   the sorted layout), then scatter-adds the `dᵢ` incoming slices into
//!   the union layout through map `f`. After `l` layers every node holds
//!   a fully reduced share of the global vector.
//! * **Up pass** — starting from the reduced bottom values projected
//!   onto the bottom in-union, each layer (bottom to top) gathers, via
//!   map `g`, the values each neighbour requested during configuration
//!   and sends them back; the receiver writes the returned slices into
//!   its original partition spans, rebuilding the previous layer's
//!   in-vector ("simply concatenates them").
//!
//! A [`crate::config::Configured`] can issue any number of reductions —
//! the per-iteration path of PageRank-style workloads where the vertex
//! sets are fixed and only values change.

use crate::codec::{decode_values, encode_values, SEAL_LEN};
use crate::config::{values_wire_len, Configured};
use crate::error::{comm_err, surface_corrupt, KylixError, Result};
use kylix_net::{Comm, Phase, Tag};
use kylix_sparse::vec::{gather, scatter_combine};
use kylix_sparse::{Reducer, Scalar};

impl Configured {
    /// Run one sparse allreduce over previously configured index sets.
    ///
    /// `out_values` is aligned with the caller's original `out_indices`
    /// order (duplicates are combined); the returned vector is aligned
    /// with the original `in_indices` order.
    pub fn reduce<C, V, R>(&mut self, comm: &mut C, out_values: &[V], reducer: R) -> Result<Vec<V>>
    where
        C: Comm,
        V: Scalar,
        R: Reducer<V>,
    {
        if out_values.len() != self.out_user_map.len() {
            return Err(KylixError::Usage {
                what: "out_values length != out_indices length",
            });
        }
        // Fresh tag sequence for this operation: the channel id is the
        // namespace, ops_issued the operation counter. Collisions with a
        // concurrently configured instance require the caller to space
        // channel ids (documented on `Kylix::configure`).
        self.ops_issued += 1;
        let seq = self.channel.wrapping_add(self.ops_issued);

        // User order -> sorted layout, combining duplicate indices.
        let mut vals = vec![reducer.identity(); self.out0.len()];
        for (x, &sp) in out_values.iter().zip(&self.out_user_map) {
            reducer.combine(&mut vals[sp as usize], *x);
        }

        let bottom = self.down_values(comm, vals, reducer, seq)?;
        let uvals = self.project_bottom(&bottom, reducer);
        let top = self.up_values(comm, uvals, seq)?;

        // Sorted layout -> user order.
        Ok(self.in_user_map.iter().map(|&p| top[p as usize]).collect())
    }

    /// Project fully reduced bottom values onto the bottom in-union:
    /// requested indices nobody contributed to read as the identity.
    pub(crate) fn project_bottom<V, R>(&self, bottom: &[V], reducer: R) -> Vec<V>
    where
        V: Scalar,
        R: Reducer<V>,
    {
        self.bottom_in_to_out
            .iter()
            .map(|&p| {
                if p == crate::config::MISSING {
                    reducer.identity()
                } else {
                    bottom[p as usize]
                }
            })
            .collect()
    }

    /// Down pass: scatter-reduce `vals` (aligned with `out0`) to the
    /// bottom layer; returns values aligned with the bottom out-union.
    pub(crate) fn down_values<C, V, R>(
        &self,
        comm: &mut C,
        mut vals: Vec<V>,
        reducer: R,
        seq: u32,
    ) -> Result<Vec<V>>
    where
        C: Comm,
        V: Scalar,
        R: Reducer<V>,
    {
        for (layer, lr) in self.layers.iter().enumerate() {
            let tag = Tag::new(Phase::ReduceDown, layer as u16, seq);
            for (c, &peer) in lr.group.iter().enumerate() {
                if c == lr.my_pos {
                    comm.note_traffic(
                        layer as u16,
                        values_wire_len::<V>(lr.out_spans[c].len()) + SEAL_LEN,
                    );
                    continue;
                }
                comm.send(peer, tag, encode_values(&vals[lr.out_spans[c].clone()]));
            }
            let mut acc = vec![reducer.identity(); lr.out_union.len()];
            scatter_combine(
                &mut acc,
                &vals[lr.out_spans[lr.my_pos].clone()],
                &lr.out_maps[lr.my_pos],
                reducer,
            );
            for (c, &peer) in lr.group.iter().enumerate() {
                if c == lr.my_pos {
                    continue;
                }
                let payload = comm.recv(peer, tag).map_err(comm_err("reduce down"))?;
                let part: Vec<V> =
                    decode_values(&payload).map_err(surface_corrupt("reduce down", peer, tag))?;
                if part.len() != lr.out_maps[c].len() {
                    return Err(KylixError::Codec {
                        what: "down-pass values misaligned with configuration",
                    });
                }
                scatter_combine(&mut acc, &part, &lr.out_maps[c], reducer);
            }
            vals = acc;
        }
        Ok(vals)
    }

    /// Up pass: carry `uvals` (aligned with the bottom in-union) back to
    /// the top; returns values aligned with `in0`.
    pub(crate) fn up_values<C, V>(
        &self,
        comm: &mut C,
        mut uvals: Vec<V>,
        seq: u32,
    ) -> Result<Vec<V>>
    where
        C: Comm,
        V: Scalar,
    {
        for (layer, lr) in self.layers.iter().enumerate().rev() {
            let tag = Tag::new(Phase::ReduceUp, layer as u16, seq);
            for (c, &peer) in lr.group.iter().enumerate() {
                if c == lr.my_pos {
                    comm.note_traffic(
                        layer as u16,
                        values_wire_len::<V>(lr.in_maps[c].len()) + SEAL_LEN,
                    );
                    continue;
                }
                comm.send(peer, tag, encode_values(&gather(&uvals, &lr.in_maps[c])));
            }
            // Every position is overwritten by a returned slice; the
            // default is just an initialiser.
            let mut prev = vec![V::default(); lr.in_prev_len()];
            // Own requested part comes straight from local memory.
            let own = gather(&uvals, &lr.in_maps[lr.my_pos]);
            prev[lr.in_spans[lr.my_pos].clone()].copy_from_slice(&own);
            for (c, &peer) in lr.group.iter().enumerate() {
                if c == lr.my_pos {
                    continue;
                }
                let payload = comm.recv(peer, tag).map_err(comm_err("reduce up"))?;
                let part: Vec<V> =
                    decode_values(&payload).map_err(surface_corrupt("reduce up", peer, tag))?;
                if part.len() != lr.in_spans[c].len() {
                    return Err(KylixError::Codec {
                        what: "up-pass values misaligned with configuration",
                    });
                }
                prev[lr.in_spans[c].clone()].copy_from_slice(&part);
            }
            uvals = prev;
        }
        Ok(uvals)
    }
}
