//! The public sparse-allreduce API.
//!
//! A [`Kylix`] value is a topology (a [`NetworkPlan`]) ready to run
//! collectives over any communicator. Two usage styles mirror the
//! paper's §III:
//!
//! * **configure once, reduce many** — graph workloads (PageRank,
//!   components, …) whose in/out vertex sets are fixed across
//!   iterations: call [`Kylix::configure`] once, then
//!   [`crate::Configured::reduce`] every iteration.
//! * **combined** — minibatch workloads whose feature sets change every
//!   step: [`Kylix::allreduce_combined`] carries values with the
//!   configuration messages in a single down pass.
//!
//! ```
//! use kylix::{Kylix, NetworkPlan};
//! use kylix_net::{Comm, LocalCluster};
//! use kylix_sparse::SumReducer;
//!
//! // 4 nodes, 2x2 butterfly; node i contributes 1.0 at indices {i, i+1}
//! // and asks for index {i}.
//! let results = LocalCluster::run(4, |mut comm| {
//!     let me = comm.rank() as u64;
//!     let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
//!     let out = [me, me + 1];
//!     let vals = [1.0f64, 1.0];
//!     let (got, _state) = kylix
//!         .allreduce_combined(&mut comm, &[me], &out, &vals, SumReducer, 0)
//!         .unwrap();
//!     got[0]
//! });
//! // Index i is contributed by node i and node i-1 (except index 0).
//! assert_eq!(results, vec![1.0, 2.0, 2.0, 2.0]);
//! ```

use crate::config::{run_down_pass, Configured};
use crate::error::Result;
use crate::plan::NetworkPlan;
use kylix_net::Comm;
use kylix_sparse::{Reducer, Scalar, SumReducer};

/// A sparse allreduce over a nested heterogeneous-degree butterfly.
#[derive(Debug, Clone)]
pub struct Kylix {
    plan: NetworkPlan,
}

impl Kylix {
    /// Create an allreduce instance over the given topology.
    pub fn new(plan: NetworkPlan) -> Self {
        Self { plan }
    }

    /// The topology.
    pub fn plan(&self) -> &NetworkPlan {
        &self.plan
    }

    /// Run the configuration pass (paper §III.A): every rank declares
    /// the indices it wants to receive (`in_indices`) and the indices it
    /// will contribute (`out_indices`); the returned state can issue any
    /// number of [`Configured::reduce`] calls.
    ///
    /// `channel` namespaces this collective's message tags: concurrent
    /// or back-to-back instances on the same communicator must use
    /// channel ids spaced by more than the number of reduce operations
    /// they will issue (each reduce consumes one sequence number).
    pub fn configure<C: Comm>(
        &self,
        comm: &mut C,
        in_indices: &[u64],
        out_indices: &[u64],
        channel: u32,
    ) -> Result<Configured> {
        run_down_pass::<C, f64, _>(
            comm,
            &self.plan,
            channel,
            in_indices,
            out_indices,
            None,
            SumReducer,
        )
        .map(|r| r.configured)
    }

    /// Configuration and reduction in one combined down pass plus an up
    /// pass (paper §III: minibatch mode). Returns the reduced values
    /// aligned with `in_indices`, and the configured state (reusable if
    /// the same sets recur).
    pub fn allreduce_combined<C, V, R>(
        &self,
        comm: &mut C,
        in_indices: &[u64],
        out_indices: &[u64],
        out_values: &[V],
        reducer: R,
        channel: u32,
    ) -> Result<(Vec<V>, Configured)>
    where
        C: Comm,
        V: Scalar,
        R: Reducer<V>,
    {
        let down = run_down_pass(
            comm,
            &self.plan,
            channel,
            in_indices,
            out_indices,
            Some(out_values),
            reducer,
        )?;
        let configured = down.configured;
        let bottom = down.bottom_values.expect("combined mode carries values");
        let uvals = configured.project_bottom(&bottom, reducer);
        let top = configured.up_values(comm, uvals, channel)?;
        let result = configured
            .in_user_map
            .iter()
            .map(|&p| top[p as usize])
            .collect();
        Ok((result, configured))
    }
}
