//! The nested heterogeneous-degree butterfly topology.
//!
//! A [`NetworkPlan`] is a list of layer degrees `d_1 × d_2 × … × d_l`
//! whose product is the cluster size `m` (paper §II.A.3: "the ∏ dᵢ nodes
//! can be laid out on a unit grid within a hyper-rectangle"). Node `j`'s
//! coordinate along layer `i` is the mixed-radix digit
//! `cᵢ(j) = (j / strideᵢ) mod dᵢ` with `stride₁ = 1` and
//! `strideᵢ₊₁ = strideᵢ · dᵢ`; its *group* at layer `i` is the set of
//! nodes differing from it only in that digit. Configuration and
//! reduction run one communication round per layer within these groups.
//!
//! Two degenerate plans recover the paper's comparators:
//! * `[m]` — **direct all-to-all** allreduce (one layer, everyone in one
//!   group);
//! * `[2, 2, …, 2]` — the **binary butterfly**.
//!
//! The plan also carries the *hash-range nesting*: after `t` layers node
//! `j` is responsible for the hash range obtained by recursively taking
//! part `cᵢ(j)` of its previous range, for `i = 1..t`. Groups at layer
//! `i` share their layer-`(i−1)` range (they agree on all earlier
//! digits), which is what makes the partition parts of group members
//! align and merge cleanly.

use kylix_sparse::HashRange;

/// A nested butterfly topology: layer degrees and node addressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetworkPlan {
    degrees: Vec<usize>,
    /// `strides[i]` = product of degrees before layer `i` (0-based).
    strides: Vec<usize>,
    m: usize,
}

impl NetworkPlan {
    /// Build a plan from layer degrees (top first). Every degree must be
    /// ≥ 1; degree-1 layers are allowed but pointless and are stripped.
    pub fn new(degrees: &[usize]) -> Self {
        assert!(!degrees.is_empty(), "need at least one layer");
        assert!(degrees.iter().all(|&d| d >= 1), "degrees must be >= 1");
        let degrees: Vec<usize> = degrees.iter().copied().filter(|&d| d > 1).collect();
        let degrees = if degrees.is_empty() { vec![1] } else { degrees };
        let mut strides = Vec::with_capacity(degrees.len());
        let mut s = 1usize;
        for &d in &degrees {
            strides.push(s);
            s = s.checked_mul(d).expect("cluster size overflow");
        }
        Self {
            degrees,
            strides,
            m: s,
        }
    }

    /// The direct all-to-all plan over `m` nodes (single layer).
    pub fn direct(m: usize) -> Self {
        Self::new(&[m])
    }

    /// The binary butterfly over `m = 2^k` nodes.
    pub fn binary(m: usize) -> Self {
        assert!(m.is_power_of_two(), "binary butterfly needs a power of two");
        let k = m.trailing_zeros() as usize;
        Self::new(&vec![2; k.max(1)])
    }

    /// Cluster size `m = ∏ dᵢ`.
    pub fn size(&self) -> usize {
        self.m
    }

    /// Number of communication layers.
    pub fn layers(&self) -> usize {
        self.degrees.len()
    }

    /// The layer degrees, top first.
    pub fn degrees(&self) -> &[usize] {
        &self.degrees
    }

    /// Node `j`'s coordinate (digit) along layer `i` (0-based layer).
    pub fn coordinate(&self, j: usize, layer: usize) -> usize {
        debug_assert!(j < self.m);
        (j / self.strides[layer]) % self.degrees[layer]
    }

    /// The ranks in node `j`'s group at `layer`, ordered by coordinate;
    /// `group[c]` has coordinate `c`, and `j` itself sits at position
    /// [`Self::coordinate`]`(j, layer)`.
    pub fn group(&self, j: usize, layer: usize) -> Vec<usize> {
        let stride = self.strides[layer];
        let d = self.degrees[layer];
        let base = j - self.coordinate(j, layer) * stride;
        (0..d).map(|c| base + c * stride).collect()
    }

    /// The hash range node `j` is responsible for after `t` communication
    /// layers (`t = 0` is the full space).
    pub fn range_at(&self, j: usize, t: usize) -> HashRange {
        debug_assert!(t <= self.layers());
        let mut r = HashRange::full();
        for layer in 0..t {
            r = r.split(self.degrees[layer])[self.coordinate(j, layer)];
        }
        r
    }

    /// Total messages one node sends across all layers (the latency /
    /// message-count tradeoff of §II): `Σ (dᵢ − 1)`.
    pub fn messages_per_node(&self) -> usize {
        self.degrees.iter().map(|&d| d - 1).sum()
    }
}

impl std::fmt::Display for NetworkPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let parts: Vec<String> = self.degrees.iter().map(|d| d.to_string()).collect();
        write!(f, "{}", parts.join("x"))
    }
}

/// Error parsing a plan string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanParseError {
    /// The offending token.
    pub token: String,
}

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid degree token {:?} (expected e.g. \"8x4x2\")",
            self.token
        )
    }
}

impl std::error::Error for PlanParseError {}

impl std::str::FromStr for NetworkPlan {
    type Err = PlanParseError;

    /// Parse `"8x4x2"`-style degree lists (the notation used throughout
    /// the paper and this workspace's CLI output).
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        let degrees: Vec<usize> = s
            .split(['x', 'X'])
            .map(|tok| {
                tok.trim().parse::<usize>().map_err(|_| PlanParseError {
                    token: tok.to_string(),
                })
            })
            .collect::<std::result::Result<_, _>>()?;
        if degrees.is_empty() || degrees.contains(&0) {
            return Err(PlanParseError {
                token: s.to_string(),
            });
        }
        Ok(NetworkPlan::new(&degrees))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_fig3_structure_3x2() {
        // Fig. 3 of the paper: a 3×2 network over 6 nodes.
        let p = NetworkPlan::new(&[3, 2]);
        assert_eq!(p.size(), 6);
        assert_eq!(p.layers(), 2);
        // Layer 0: consecutive triples.
        assert_eq!(p.group(0, 0), vec![0, 1, 2]);
        assert_eq!(p.group(4, 0), vec![3, 4, 5]);
        // Layer 1: stride-3 pairs.
        assert_eq!(p.group(0, 1), vec![0, 3]);
        assert_eq!(p.group(4, 1), vec![1, 4]);
    }

    #[test]
    fn groups_are_consistent_and_contain_self() {
        let p = NetworkPlan::new(&[8, 4, 2]);
        assert_eq!(p.size(), 64);
        for j in 0..64 {
            for layer in 0..3 {
                let g = p.group(j, layer);
                assert_eq!(g.len(), p.degrees()[layer]);
                let c = p.coordinate(j, layer);
                assert_eq!(g[c], j, "self must sit at own coordinate");
                // Group membership is symmetric.
                for &k in &g {
                    assert_eq!(p.group(k, layer), g);
                }
            }
        }
    }

    #[test]
    fn group_members_share_previous_range() {
        let p = NetworkPlan::new(&[4, 2, 2]);
        for j in 0..p.size() {
            for layer in 0..p.layers() {
                let r = p.range_at(j, layer);
                for &k in &p.group(j, layer) {
                    assert_eq!(p.range_at(k, layer), r);
                }
            }
        }
    }

    #[test]
    fn ranges_nest_and_tile() {
        let p = NetworkPlan::new(&[2, 3]);
        // At the bottom, the 6 nodes' ranges tile the full space.
        let mut ranges: Vec<HashRange> = (0..6).map(|j| p.range_at(j, 2)).collect();
        ranges.sort_by_key(|r| r.lo());
        let total: u128 = ranges.iter().map(|r| r.len()).sum();
        assert_eq!(total, HashRange::full().len());
        for w in ranges.windows(2) {
            assert!(w[0].hi() <= w[1].lo() as u128 + w[1].len());
        }
        // Bottom range is inside the layer-1 range.
        for j in 0..6 {
            let outer = p.range_at(j, 1);
            let inner = p.range_at(j, 2);
            assert!(outer.lo() <= inner.lo());
            assert!(inner.hi() <= outer.hi());
        }
    }

    #[test]
    fn direct_and_binary_plans() {
        let d = NetworkPlan::direct(16);
        assert_eq!(d.layers(), 1);
        assert_eq!(d.size(), 16);
        assert_eq!(d.messages_per_node(), 15);
        let b = NetworkPlan::binary(16);
        assert_eq!(b.layers(), 4);
        assert_eq!(b.size(), 16);
        assert_eq!(b.messages_per_node(), 4);
    }

    #[test]
    fn degree_one_layers_are_stripped() {
        let p = NetworkPlan::new(&[1, 4, 1, 2]);
        assert_eq!(p.degrees(), &[4, 2]);
        assert_eq!(p.size(), 8);
        let trivial = NetworkPlan::new(&[1]);
        assert_eq!(trivial.size(), 1);
        assert_eq!(trivial.layers(), 1); // single degree-1 "layer"
    }

    #[test]
    fn display_formats_degrees() {
        assert_eq!(NetworkPlan::new(&[8, 4, 2]).to_string(), "8x4x2");
    }

    #[test]
    fn parse_round_trips_display() {
        for s in ["8x4x2", "64", "2x2x2", "16X4"] {
            let plan: NetworkPlan = s.parse().unwrap();
            let back: NetworkPlan = plan.to_string().parse().unwrap();
            assert_eq!(plan, back, "{s}");
        }
        assert_eq!("8x4x2".parse::<NetworkPlan>().unwrap().size(), 64);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<NetworkPlan>().is_err());
        assert!("8x0x2".parse::<NetworkPlan>().is_err());
        assert!("8xbanana".parse::<NetworkPlan>().is_err());
    }

    #[test]
    fn single_node_plan_works() {
        let p = NetworkPlan::new(&[1]);
        assert_eq!(p.size(), 1);
        assert_eq!(p.group(0, 0), vec![0]);
        assert_eq!(p.range_at(0, 1), HashRange::full());
    }
}
