//! Sequential reference semantics of a sparse allreduce.
//!
//! The specification every distributed implementation in this workspace
//! is tested against: gather all nodes' `(out_indices, out_values)`
//! contributions into one global map, reduce duplicates with the
//! operator, then answer each node's `in_indices` from the global
//! result. O(total nonzeros) with a hash map — fine for tests, not a
//! production path.

use kylix_sparse::Reducer;
use std::collections::HashMap;

/// One node's inputs to a sparse allreduce.
#[derive(Debug, Clone)]
pub struct NodeContribution<V> {
    /// Indices the node wants back.
    pub in_indices: Vec<u64>,
    /// Indices the node contributes to.
    pub out_indices: Vec<u64>,
    /// Values aligned with `out_indices`.
    pub out_values: Vec<V>,
}

/// Compute the expected per-node results of a sparse allreduce.
///
/// A requested index no node contributed to reads as the reducer
/// identity (the reduction of an empty set) — matching the distributed
/// implementation's semantics for uncovered requests.
pub fn reference_allreduce<V: Copy, R: Reducer<V>>(
    nodes: &[NodeContribution<V>],
    reducer: R,
) -> Vec<Vec<V>> {
    let mut global: HashMap<u64, V> = HashMap::new();
    for node in nodes {
        assert_eq!(node.out_indices.len(), node.out_values.len());
        for (&i, &v) in node.out_indices.iter().zip(&node.out_values) {
            global
                .entry(i)
                .and_modify(|acc| reducer.combine(acc, v))
                .or_insert(v);
        }
    }
    nodes
        .iter()
        .map(|node| {
            node.in_indices
                .iter()
                .map(|i| global.get(i).copied().unwrap_or_else(|| reducer.identity()))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix_sparse::{MinReducer, SumReducer};

    #[test]
    fn sums_across_nodes() {
        let nodes = vec![
            NodeContribution {
                in_indices: vec![1, 2],
                out_indices: vec![1, 2],
                out_values: vec![1.0, 2.0],
            },
            NodeContribution {
                in_indices: vec![2],
                out_indices: vec![2, 3],
                out_values: vec![10.0, 5.0],
            },
        ];
        let r = reference_allreduce(&nodes, SumReducer);
        assert_eq!(r[0], vec![1.0, 12.0]);
        assert_eq!(r[1], vec![12.0]);
    }

    #[test]
    fn min_reducer_takes_minimum() {
        let nodes = vec![
            NodeContribution {
                in_indices: vec![7],
                out_indices: vec![7],
                out_values: vec![9u64],
            },
            NodeContribution {
                in_indices: vec![7],
                out_indices: vec![7],
                out_values: vec![4u64],
            },
        ];
        let r = reference_allreduce(&nodes, MinReducer);
        assert_eq!(r[0], vec![4]);
        assert_eq!(r[1], vec![4]);
    }

    #[test]
    fn uncovered_in_index_reads_identity() {
        let nodes = vec![NodeContribution {
            in_indices: vec![99, 1],
            out_indices: vec![1],
            out_values: vec![1.5],
        }];
        let r = reference_allreduce(&nodes, SumReducer);
        assert_eq!(r[0], vec![0.0, 1.5]);
    }
}
