//! Wire encoding of protocol messages.
//!
//! Kylix messages are flat little-endian buffers — no serialisation
//! framework, mirroring the paper's "raw sockets, no reflection"
//! implementation stance (§VI.C, and its criticism of Hadoop's
//! serialisation overhead in §VIII). Three payload shapes exist:
//!
//! * **index lists** (configuration): `u64 count` then `count` raw `u64`
//!   feature indices in key order. Hashes are *not* shipped — the
//!   receiver recomputes `mix64(idx)` locally, trading a few ALU ops for
//!   halving config bandwidth.
//! * **value vectors** (reduction): `u64 count` then `count` fixed-width
//!   scalars, positionally aligned with an index list both sides already
//!   agree on.
//! * **combined records** (minibatch mode, §III: "configuration and
//!   reduction concurrently with combined network messages"): an index
//!   list, its values, and the in-request index list, concatenated.
//!
//! Every payload is **sealed**: an 8-byte FNV-1a checksum of the body is
//! appended by [`seal`] (and by the `encode_*` helpers) and verified by
//! [`Decoder::new`] before any field is parsed. A flipped bit in a value
//! vector would otherwise be *silently reduced* into every downstream
//! node's result — an allreduce amplifies corruption — so detection must
//! sit below the protocol, where every message passes through. A
//! mismatch decodes to [`KylixError::Codec`] with
//! [`CHECKSUM_MISMATCH`], which the protocol layers re-surface as
//! `CommError::Corrupt` with the sender's identity attached.

use crate::error::{KylixError, Result};
use bytes::{Bytes, BytesMut};
use kylix_net::checksum;
use kylix_sparse::{Key, Scalar};

/// Bytes the seal appends to every payload.
pub const SEAL_LEN: usize = 8;

/// `what` string of the [`KylixError::Codec`] raised when a payload
/// fails checksum verification. Protocol layers match on it to convert
/// decode failures into `CommError::Corrupt`.
pub const CHECKSUM_MISMATCH: &str = "payload checksum mismatch";

/// Finalise a wire buffer: append the FNV-1a checksum of its contents.
/// Every `comm.send` payload built with `put_*` must go through this.
pub fn seal(mut buf: Vec<u8>) -> Bytes {
    let sum = checksum(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    Bytes::from(buf)
}

/// Encode a key slice as a sealed index list.
pub fn encode_keys(keys: &[Key]) -> Bytes {
    let mut buf = Vec::with_capacity(8 + keys.len() * 8 + SEAL_LEN);
    put_keys(&mut buf, keys);
    seal(buf)
}

/// Append an index list to an existing buffer (combined messages).
pub fn put_keys(buf: &mut Vec<u8>, keys: &[Key]) {
    buf.extend_from_slice(&(keys.len() as u64).to_le_bytes());
    for k in keys {
        buf.extend_from_slice(&k.index.to_le_bytes());
    }
}

/// Append a value vector.
pub fn put_values<V: Scalar>(buf: &mut Vec<u8>, vals: &[V]) {
    buf.extend_from_slice(&(vals.len() as u64).to_le_bytes());
    for v in vals {
        v.write_le(buf);
    }
}

/// A cursor over the body of a received (and verified) buffer.
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Verify a sealed payload and start decoding its body. Fails with
    /// [`CHECKSUM_MISMATCH`] if the trailing checksum does not match the
    /// body (corruption in flight) or the buffer is too short to carry
    /// one (truncation).
    pub fn new(buf: &'a [u8]) -> Result<Self> {
        if buf.len() < SEAL_LEN {
            return Err(KylixError::Codec {
                what: CHECKSUM_MISMATCH,
            });
        }
        let (body, tail) = buf.split_at(buf.len() - SEAL_LEN);
        let want = u64::from_le_bytes(tail.try_into().expect("8 bytes"));
        if checksum(body) != want {
            return Err(KylixError::Codec {
                what: CHECKSUM_MISMATCH,
            });
        }
        Ok(Self { buf: body, pos: 0 })
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).ok_or(KylixError::Codec { what })?;
        if end > self.buf.len() {
            return Err(KylixError::Codec { what });
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn count(&mut self, what: &'static str) -> Result<usize> {
        let raw = self.take(8, what)?;
        let n = u64::from_le_bytes(raw.try_into().expect("8 bytes"));
        // Sanity: a count can never exceed the bytes *remaining* in the
        // body even at one byte per element. Bounding against the whole
        // body would let a later section of a combined message claim
        // bytes already consumed by earlier sections.
        if n as usize > self.buf.len() - self.pos {
            return Err(KylixError::Codec { what });
        }
        Ok(n as usize)
    }

    /// Read an index list, rebuilding keys (hash recomputed locally).
    pub fn keys(&mut self) -> Result<Vec<Key>> {
        let n = self.count("key count")?;
        let raw = self.take(n * 8, "key data")?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| Key::new(u64::from_le_bytes(c.try_into().expect("8 bytes"))))
            .collect())
    }

    /// Read a value vector of scalars.
    pub fn values<V: Scalar>(&mut self) -> Result<Vec<V>> {
        let (_, raw) = self.raw_values::<V>()?;
        Ok(raw.chunks_exact(V::WIDTH).map(V::read_le).collect())
    }

    /// Read a value section *without* materialising a `Vec`: returns the
    /// element count and the packed little-endian body. Pair with
    /// `kylix_sparse::vec::scatter_combine_le` / `copy_from_le` to fuse
    /// decoding with the combine, the reduction hot path.
    pub fn raw_values<V: Scalar>(&mut self) -> Result<(usize, &'a [u8])> {
        let n = self.count("value count")?;
        let raw = self.take(n * V::WIDTH, "value data")?;
        Ok((n, raw))
    }

    /// All body bytes consumed?
    pub fn finished(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// Decode a standalone index list.
pub fn decode_keys(buf: &[u8]) -> Result<Vec<Key>> {
    let mut d = Decoder::new(buf)?;
    let keys = d.keys()?;
    if !d.finished() {
        return Err(KylixError::Codec {
            what: "trailing bytes after key list",
        });
    }
    Ok(keys)
}

/// Encode a standalone value vector (sealed).
pub fn encode_values<V: Scalar>(vals: &[V]) -> Bytes {
    let mut buf = Vec::with_capacity(8 + vals.len() * V::WIDTH + SEAL_LEN);
    put_values(&mut buf, vals);
    seal(buf)
}

/// Encode a sealed value vector into a pooled send arena.
///
/// The arena must be empty on entry (it always is after the previous
/// `split`); the message is written in place and split off as an
/// immutable [`Bytes`]. Once every receiver drops its handle the arena's
/// `reserve` reclaims the backing storage, so a steady-state reduce loop
/// stops allocating per message — the zero-copy half of the paper's
/// §VI.B "multi-threaded opportunistic communication" hot path.
pub fn encode_values_into<V: Scalar>(arena: &mut BytesMut, vals: &[V]) -> Bytes {
    debug_assert!(arena.is_empty(), "send arena must start empty");
    let body = 8 + vals.len() * V::WIDTH;
    arena.reserve(body + SEAL_LEN);
    arena.extend_from_slice(&(vals.len() as u64).to_le_bytes());
    let start = arena.len();
    arena.resize(start + vals.len() * V::WIDTH, 0);
    for (v, chunk) in vals.iter().zip(arena[start..].chunks_exact_mut(V::WIDTH)) {
        v.write_le_slice(chunk);
    }
    let sum = checksum(&arena[..]);
    arena.extend_from_slice(&sum.to_le_bytes());
    arena.split().freeze()
}

/// Decode a standalone value vector.
pub fn decode_values<V: Scalar>(buf: &[u8]) -> Result<Vec<V>> {
    let mut d = Decoder::new(buf)?;
    let vals = d.values()?;
    if !d.finished() {
        return Err(KylixError::Codec {
            what: "trailing bytes after value list",
        });
    }
    Ok(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix_sparse::IndexSet;

    #[test]
    fn keys_round_trip() {
        let set = IndexSet::from_indices([42u64, 7, 1 << 40, 0]);
        let enc = encode_keys(set.keys());
        let dec = decode_keys(&enc).unwrap();
        assert_eq!(dec, set.keys());
    }

    #[test]
    fn empty_keys_round_trip() {
        let enc = encode_keys(&[]);
        assert_eq!(decode_keys(&enc).unwrap(), Vec::<Key>::new());
    }

    #[test]
    fn values_round_trip() {
        let vals = vec![1.5f64, -2.25, 1e300];
        let enc = encode_values(&vals);
        assert_eq!(decode_values::<f64>(&enc).unwrap(), vals);
        let ints = vec![u32::MAX, 0, 7];
        let enc = encode_values(&ints);
        assert_eq!(decode_values::<u32>(&enc).unwrap(), ints);
    }

    #[test]
    fn combined_sections_round_trip() {
        let out = IndexSet::from_indices([1u64, 2, 3]);
        let vals = vec![0.5f64, 1.5, 2.5];
        let inn = IndexSet::from_indices([9u64, 10]);
        let mut buf = Vec::new();
        put_keys(&mut buf, out.keys());
        put_values(&mut buf, &vals);
        put_keys(&mut buf, inn.keys());
        let sealed = seal(buf);
        let mut d = Decoder::new(&sealed).unwrap();
        assert_eq!(d.keys().unwrap(), out.keys());
        assert_eq!(d.values::<f64>().unwrap(), vals);
        assert_eq!(d.keys().unwrap(), inn.keys());
        assert!(d.finished());
    }

    #[test]
    fn encode_values_into_matches_encode_values() {
        let vals = vec![1.5f64, -2.25, 1e300];
        let mut arena = BytesMut::new();
        for _ in 0..3 {
            // Repeated use of the same arena must keep producing
            // byte-identical frames to the allocating encoder.
            let pooled = encode_values_into(&mut arena, &vals);
            assert_eq!(&pooled[..], &encode_values(&vals)[..]);
            assert_eq!(decode_values::<f64>(&pooled).unwrap(), vals);
        }
        let empty = encode_values_into(&mut arena, &[] as &[u32]);
        assert_eq!(&empty[..], &encode_values::<u32>(&[])[..]);
    }

    #[test]
    fn raw_values_exposes_the_packed_body() {
        let vals = vec![0.5f64, 1.5];
        let enc = encode_values(&vals);
        let mut d = Decoder::new(&enc).unwrap();
        let (n, raw) = d.raw_values::<f64>().unwrap();
        assert_eq!(n, 2);
        let expect: Vec<u8> = vals.iter().flat_map(|v| v.to_le_bytes()).collect();
        assert_eq!(raw, &expect[..]);
        assert!(d.finished());
    }

    #[test]
    fn count_is_bounded_by_remaining_bytes() {
        // A combined message whose *second* section claims more elements
        // than the bytes left after the first — but fewer than the whole
        // body. The old whole-body bound let this through to `take`,
        // which rejected it only by luck of widths; the count check must
        // catch it outright.
        let mut buf = Vec::new();
        put_keys(&mut buf, IndexSet::from_indices([1u64, 2, 3, 4]).keys());
        buf.extend_from_slice(&10u64.to_le_bytes()); // claims 10 values
        buf.extend_from_slice(&[0u8; 8]); // only 1 u64 of data follows
        let sealed = seal(buf);
        let mut d = Decoder::new(&sealed).unwrap();
        d.keys().unwrap();
        assert!(d.values::<u64>().is_err(), "oversized section must fail");
    }

    #[test]
    fn truncated_buffer_errors() {
        let enc = encode_keys(IndexSet::from_indices([1u64, 2, 3]).keys());
        let cut = &enc[..enc.len() - 4];
        assert!(decode_keys(cut).is_err());
    }

    #[test]
    fn oversized_count_errors() {
        let mut buf = u64::MAX.to_le_bytes().to_vec();
        buf.extend_from_slice(&[0u8; 16]);
        assert!(decode_keys(&seal(buf)).is_err());
    }

    #[test]
    fn trailing_garbage_errors() {
        let mut buf = Vec::new();
        put_keys(&mut buf, &[]);
        buf.push(0xFF);
        assert!(decode_keys(&seal(buf)).is_err());
    }

    #[test]
    fn single_bit_flip_is_detected_anywhere() {
        let vals = vec![1.0f64, 2.0, 3.0, 4.0];
        let enc = encode_values(&vals).to_vec();
        for byte in 0..enc.len() {
            for bit in 0..8 {
                let mut bad = enc.clone();
                bad[byte] ^= 1 << bit;
                let err = decode_values::<f64>(&bad).unwrap_err();
                assert_eq!(
                    err,
                    KylixError::Codec {
                        what: CHECKSUM_MISMATCH
                    },
                    "flip at byte {byte} bit {bit} must fail the checksum"
                );
            }
        }
    }

    #[test]
    fn short_buffer_reports_checksum_failure() {
        for n in 0..SEAL_LEN {
            assert!(Decoder::new(&vec![0u8; n]).is_err());
        }
    }
}
