//! The configuration pass (paper §III.A).
//!
//! Configuration runs **down** the nested butterfly only. At layer `i`
//! every node partitions its current `in` and `out` index sets into `dᵢ`
//! equal hash ranges, ships part `c` to the group member with coordinate
//! `c`, and unions the `dᵢ` parts it receives (own part included) with a
//! tree merge. The merge's position maps are retained:
//!
//! * `out_maps[c]` — the paper's map `f`: positions in the part sent by
//!   coordinate `c` → positions in the out-union. The reduction down
//!   pass scatter-adds value vectors through it in constant time per
//!   element.
//! * `in_maps[c]` — the paper's map `g`: positions in the in-part sent
//!   by coordinate `c` → positions in the in-union. The up pass gathers
//!   a neighbour's requested values through it.
//!
//! Because the partition is by *contiguous hash range* and group members
//! share their previous range, a node's own split spans are contiguous
//! slices of its sorted set — so the up pass can rebuild the previous
//! layer's vector by writing the returned slices back into those spans,
//! the "simply concatenates them" of §III.B.
//!
//! The same down pass optionally carries reduction values along with the
//! out-index parts (*combined mode*, used by minibatch workloads where
//! in/out sets change every operation — §III: "it is more efficient to
//! do configuration and reduction concurrently with combined network
//! messages"). `run_down_pass` therefore takes an optional value
//! rider and is shared by `configure` and `allreduce_combined`.

use crate::codec::{put_keys, put_values, seal, Decoder, SEAL_LEN};
use crate::error::{comm_err, surface_corrupt, KylixError, Result};
use crate::plan::NetworkPlan;
use kylix_net::{Comm, Phase, Tag};
use kylix_sparse::vec::scatter_combine;
use kylix_sparse::{tree_merge, IndexSet, Key, Reducer, Scalar};
use std::any::{Any, TypeId};
use std::collections::HashMap;
use std::ops::Range;

/// Routing state for one communication layer of one node.
#[derive(Debug, Clone)]
pub struct LayerRouting {
    /// Ranks in this node's group, ordered by coordinate.
    pub group: Vec<usize>,
    /// This node's coordinate (= its position in `group`).
    pub my_pos: usize,
    /// Split spans of the node's previous-layer **out** set, per
    /// coordinate (contiguous, in range order; they tile the set).
    pub out_spans: Vec<Range<usize>>,
    /// Union of the received out-parts — the node's out set below.
    pub out_union: IndexSet,
    /// Map `f`: per sender coordinate, part positions → union positions.
    pub out_maps: Vec<Vec<u32>>,
    /// Split spans of the previous-layer **in** set, per coordinate.
    pub in_spans: Vec<Range<usize>>,
    /// Union of the received in-parts — the node's in set below.
    pub in_union: IndexSet,
    /// Map `g`: per sender coordinate, part positions → union positions.
    pub in_maps: Vec<Vec<u32>>,
}

impl LayerRouting {
    /// Length of the previous layer's in set (what the up pass rebuilds).
    pub fn in_prev_len(&self) -> usize {
        self.in_spans.last().map_or(0, |s| s.end)
    }
}

/// Receive scheduling of the reduction passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecvOrder {
    /// Block on group members in coordinate order. One slow peer stalls
    /// the whole layer; kept to benchmark the opportunistic win (and as
    /// the reference schedule deterministic mode reproduces).
    Fixed,
    /// Take slices as they land (`recv_any` over the group) — the
    /// paper's §VI.B multi-threaded opportunistic communication.
    #[default]
    Arrival,
}

/// Per-value-type scratch slots kept on [`Configured`] between reduce
/// operations (send arena, accumulators, parked arrivals). The store is
/// type-erased because `Configured` itself is not generic over the
/// value type; each `V` gets one slot.
///
/// Cloning a `Configured` starts the clone with an empty store —
/// scratch is a cache, not state.
#[derive(Default)]
pub(crate) struct ScratchStore {
    slots: HashMap<TypeId, Box<dyn Any + Send>>,
}

impl ScratchStore {
    /// Remove and return the slot for `T`, or a fresh default. The
    /// caller puts it back when done — taking it out keeps the borrow
    /// checker happy while the rest of `self` is read.
    pub(crate) fn take<T: Default + Send + 'static>(&mut self) -> Box<T> {
        self.slots
            .remove(&TypeId::of::<T>())
            .and_then(|b| b.downcast().ok())
            .unwrap_or_default()
    }

    pub(crate) fn put<T: Send + 'static>(&mut self, slot: Box<T>) {
        self.slots.insert(TypeId::of::<T>(), slot);
    }
}

impl std::fmt::Debug for ScratchStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchStore")
            .field("slots", &self.slots.len())
            .finish()
    }
}

impl Clone for ScratchStore {
    fn clone(&self) -> Self {
        Self::default()
    }
}

/// Fully configured routing state for one node: everything reduction
/// needs, reusable across any number of reduce calls with the same
/// in/out sets (e.g. every PageRank iteration).
#[derive(Debug, Clone)]
pub struct Configured {
    /// The topology.
    pub plan: NetworkPlan,
    /// This node's rank.
    pub rank: usize,
    /// Channel id the instance was configured on (tag namespace).
    pub channel: u32,
    /// Number of reduce operations already issued on this state (used to
    /// derive fresh tag sequence numbers).
    pub ops_issued: u32,
    /// The node's sorted top-layer in set.
    pub in0: IndexSet,
    /// The node's sorted top-layer out set.
    pub out0: IndexSet,
    /// Per-layer routing, top to bottom.
    pub layers: Vec<LayerRouting>,
    /// Positions of the bottom in-union's keys inside the bottom
    /// out-union (where the fully reduced values live); [`MISSING`] for
    /// requests nobody contributed to (served the reducer identity).
    pub bottom_in_to_out: Vec<u32>,
    /// User in-list position → sorted `in0` position.
    pub in_user_map: Vec<u32>,
    /// User out-list position → sorted `out0` position.
    pub out_user_map: Vec<u32>,
    /// Receive scheduling of the reduction passes (default: arrival
    /// order, §VI.B).
    pub recv_order: RecvOrder,
    /// Deterministic combine order for the down pass: `None` (default)
    /// resolves per value type — on for order-sensitive scalars
    /// (floats), off for exact integer reducers; `Some(_)` forces.
    /// When on, arrival-order receives park out-of-order slices and
    /// combine in coordinate order, so results are bit-identical to the
    /// fixed-order schedule.
    pub deterministic: Option<bool>,
    /// Pooled per-op buffers, reused across reduce calls (reset on
    /// clone).
    pub(crate) scratch: ScratchStore,
}

/// Sentinel in `bottom_in_to_out` for a requested index no node
/// contributed to; the reduction serves the reducer identity there.
pub const MISSING: u32 = u32::MAX;

/// Encoded size bookkeeping for self-"messages" (the paper's Fig. 5
/// counts traffic *including packets to its own*). Section sizes only —
/// add [`SEAL_LEN`] once per message for the checksum frame.
pub(crate) fn keys_wire_len(n: usize) -> usize {
    8 + 8 * n
}

pub(crate) fn values_wire_len<V: Scalar>(n: usize) -> usize {
    8 + V::WIDTH * n
}

/// Outcome of the shared down pass.
pub(crate) struct DownResult<V> {
    pub configured: Configured,
    /// In combined mode, the node's fully reduced bottom values (aligned
    /// with the bottom out-union).
    pub bottom_values: Option<Vec<V>>,
}

/// Run the configuration down pass, optionally carrying reduction
/// values (combined mode).
///
/// `user_out_values`, when provided, is aligned with `out_user_map` /
/// the caller's original out list; the rider is reduced on the way down
/// exactly like a standalone reduce pass would.
pub(crate) fn run_down_pass<C, V, R>(
    comm: &mut C,
    plan: &NetworkPlan,
    channel: u32,
    in_indices: &[u64],
    out_indices: &[u64],
    user_out_values: Option<&[V]>,
    reducer: R,
) -> Result<DownResult<V>>
where
    C: Comm,
    V: Scalar,
    R: Reducer<V>,
{
    let rank = comm.rank();
    assert_eq!(
        comm.size(),
        plan.size(),
        "plan size {} != communicator size {}",
        plan.size(),
        comm.size()
    );
    let in0 = IndexSet::from_indices(in_indices.iter().copied());
    let out0 = IndexSet::from_indices(out_indices.iter().copied());
    let in_user_map: Vec<u32> = in_indices
        .iter()
        .map(|&i| in0.position(Key::new(i)).expect("own index present") as u32)
        .collect();
    let out_user_map: Vec<u32> = out_indices
        .iter()
        .map(|&i| out0.position(Key::new(i)).expect("own index present") as u32)
        .collect();

    // Combined-mode rider: fold the user's values into sorted layout.
    let mut values: Option<Vec<V>> = match user_out_values {
        None => None,
        Some(uv) => {
            if uv.len() != out_user_map.len() {
                return Err(KylixError::Usage {
                    what: "out_values length != out_indices length",
                });
            }
            let mut v = vec![reducer.identity(); out0.len()];
            for (x, &sp) in uv.iter().zip(&out_user_map) {
                reducer.combine(&mut v[sp as usize], *x);
            }
            Some(v)
        }
    };

    let phase = if values.is_some() {
        Phase::Combined
    } else {
        Phase::Config
    };

    let mut cur_in = in0.clone();
    let mut cur_out = out0.clone();
    let mut layers = Vec::with_capacity(plan.layers());

    for layer in 0..plan.layers() {
        let d = plan.degrees()[layer];
        let group = plan.group(rank, layer);
        let my_pos = plan.coordinate(rank, layer);
        let my_range = plan.range_at(rank, layer);
        let sub_ranges = my_range.split(d);
        debug_assert!(cur_out.all_within(&my_range), "out keys escaped range");
        debug_assert!(cur_in.all_within(&my_range), "in keys escaped range");
        let out_spans: Vec<Range<usize>> = sub_ranges.iter().map(|r| cur_out.span_of(r)).collect();
        let in_spans: Vec<Range<usize>> = sub_ranges.iter().map(|r| cur_in.span_of(r)).collect();
        let tag = Tag::new(phase, layer as u16, channel);

        // Fire all sends first (opportunistic communication, §VI.B).
        for (c, &peer) in group.iter().enumerate() {
            let out_part = &cur_out.keys()[out_spans[c].clone()];
            let in_part = &cur_in.keys()[in_spans[c].clone()];
            let mut wire = keys_wire_len(out_part.len()) + keys_wire_len(in_part.len()) + SEAL_LEN;
            if values.is_some() {
                wire += values_wire_len::<V>(out_spans[c].len());
            }
            if c == my_pos {
                // Self part never crosses the network; account it so the
                // per-layer volume matches the paper's definition.
                comm.note_traffic(layer as u16, wire);
                continue;
            }
            let mut buf = Vec::with_capacity(wire);
            put_keys(&mut buf, out_part);
            if let Some(vals) = &values {
                put_values(&mut buf, &vals[out_spans[c].clone()]);
            }
            put_keys(&mut buf, in_part);
            comm.send(peer, tag, seal(buf));
        }

        // Collect every coordinate's parts (own part straight from the
        // local slices).
        let mut out_parts: Vec<Vec<Key>> = vec![Vec::new(); d];
        let mut in_parts: Vec<Vec<Key>> = vec![Vec::new(); d];
        let mut val_parts: Vec<Vec<V>> = vec![Vec::new(); d];
        for (c, &peer) in group.iter().enumerate() {
            if c == my_pos {
                out_parts[c] = cur_out.keys()[out_spans[c].clone()].to_vec();
                in_parts[c] = cur_in.keys()[in_spans[c].clone()].to_vec();
                if let Some(vals) = &values {
                    val_parts[c] = vals[out_spans[c].clone()].to_vec();
                }
                continue;
            }
            let payload = comm.recv(peer, tag).map_err(comm_err("config down"))?;
            let mut dec =
                Decoder::new(&payload).map_err(surface_corrupt("config down", peer, tag))?;
            out_parts[c] = dec.keys()?;
            if values.is_some() {
                val_parts[c] = dec.values::<V>()?;
                if val_parts[c].len() != out_parts[c].len() {
                    return Err(KylixError::Codec {
                        what: "combined values misaligned with keys",
                    });
                }
            }
            in_parts[c] = dec.keys()?;
            if !dec.finished() {
                return Err(KylixError::Codec {
                    what: "trailing bytes in config message",
                });
            }
        }

        // Union with maps (tree merge, §VI.A).
        let out_refs: Vec<&[Key]> = out_parts.iter().map(|p| p.as_slice()).collect();
        let out_merged = tree_merge(&out_refs);
        let in_refs: Vec<&[Key]> = in_parts.iter().map(|p| p.as_slice()).collect();
        let in_merged = tree_merge(&in_refs);

        // Combined mode: reduce the value parts into the new union layout.
        if values.is_some() {
            let mut acc = vec![reducer.identity(); out_merged.union.len()];
            for (c, part) in val_parts.iter().enumerate() {
                scatter_combine(&mut acc, part, &out_merged.maps[c], reducer);
            }
            values = Some(acc);
        }

        let out_union = IndexSet::from_sorted_keys(out_merged.union);
        let in_union = IndexSet::from_sorted_keys(in_merged.union);
        layers.push(LayerRouting {
            group,
            my_pos,
            out_spans,
            out_union: out_union.clone(),
            out_maps: out_merged.maps,
            in_spans,
            in_union: in_union.clone(),
            in_maps: in_merged.maps,
        });
        cur_out = out_union;
        cur_in = in_union;
    }

    // Bottom: locate every requested (in) key inside the reduced (out)
    // layout. A request nobody contributed to is marked MISSING and
    // served the reducer identity — the sum over an empty set — so
    // callers need not zero-pad their out sets for coverage (the paper
    // states the `∪ in ⊆ ∪ out` contract; we weaken it to "uncovered
    // requests read as identity", which subsumes it).
    let bottom_in_to_out = cur_in
        .keys()
        .iter()
        .map(|k| cur_out.position(*k).map_or(MISSING, |p| p as u32))
        .collect();

    Ok(DownResult {
        configured: Configured {
            plan: plan.clone(),
            rank,
            channel,
            ops_issued: 0,
            in0,
            out0,
            layers,
            bottom_in_to_out,
            in_user_map,
            out_user_map,
            recv_order: RecvOrder::default(),
            deterministic: None,
            scratch: ScratchStore::default(),
        },
        bottom_values: values,
    })
}

impl Configured {
    /// Drop every pooled scratch buffer (send arenas, accumulators).
    /// The next reduce op re-grows them; useful to trim memory between
    /// phases, and to measure cold-path allocation in tests.
    pub fn reset_scratch(&mut self) {
        self.scratch = ScratchStore::default();
    }

    /// Elements of fully reduced data this node holds at the bottom
    /// (the last bar of the paper's Fig. 5).
    pub fn bottom_elems(&self) -> usize {
        self.layers
            .last()
            .map_or(self.out0.len(), |l| l.out_union.len())
    }

    /// Per-layer element counts this node *sends or keeps* during a
    /// reduce down pass (self part included) — the measured volume
    /// profile behind Fig. 5, in elements.
    pub fn down_volume_elems(&self) -> Vec<usize> {
        self.layers
            .iter()
            .map(|l| l.out_spans.iter().map(|s| s.len()).sum())
            .collect()
    }
}
