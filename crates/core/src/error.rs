//! Error type for allreduce operations.

use kylix_net::CommError;

/// Errors surfaced by configuration / reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KylixError {
    /// A communication failure (timeout on a dead, unreplicated peer;
    /// cluster shutdown).
    Comm {
        /// Protocol stage in which the failure occurred.
        during: &'static str,
        /// The underlying communicator error.
        source: CommError,
    },
    /// Malformed message payload.
    Codec {
        /// What failed to decode.
        what: &'static str,
    },
    /// Caller-side misuse (mismatched lengths, values for unknown
    /// indices, …).
    Usage {
        /// Description of the misuse.
        what: &'static str,
    },
}

impl std::fmt::Display for KylixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KylixError::Comm { during, source } => {
                write!(f, "communication failed during {during}: {source}")
            }
            KylixError::Codec { what } => write!(f, "malformed message: {what}"),
            KylixError::Usage { what } => write!(f, "API misuse: {what}"),
        }
    }
}

impl std::error::Error for KylixError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, KylixError>;

/// Attach protocol-stage context to a communicator error.
pub fn comm_err(during: &'static str) -> impl FnOnce(CommError) -> KylixError {
    move |source| KylixError::Comm { during, source }
}

/// Re-surface a payload checksum failure as what it really is: a
/// *communication* fault (`CommError::Corrupt`) attributed to the peer
/// that sent the bad bytes. Other decode errors pass through unchanged
/// — a well-checksummed but misshapen payload is a protocol bug, not a
/// link fault.
pub fn surface_corrupt(
    during: &'static str,
    from: usize,
    tag: kylix_net::Tag,
) -> impl FnOnce(KylixError) -> KylixError {
    move |e| match e {
        KylixError::Codec { what } if what == crate::codec::CHECKSUM_MISMATCH => KylixError::Comm {
            during,
            source: CommError::Corrupt { from, tag },
        },
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix_net::{Phase, Tag};

    #[test]
    fn display_includes_context() {
        let e = KylixError::Comm {
            during: "config down pass",
            source: CommError::Timeout {
                from: 3,
                tag: Tag::new(Phase::Config, 1, 0),
            },
        };
        let s = e.to_string();
        assert!(s.contains("config down pass"));
        assert!(s.contains("rank 3"));
    }

    #[test]
    fn checksum_failures_surface_as_corruption() {
        let tag = Tag::new(Phase::ReduceDown, 2, 0);
        let e = surface_corrupt("reduce down", 4, tag)(KylixError::Codec {
            what: crate::codec::CHECKSUM_MISMATCH,
        });
        assert_eq!(
            e,
            KylixError::Comm {
                during: "reduce down",
                source: CommError::Corrupt { from: 4, tag },
            }
        );
        // A structurally bad (but well-checksummed) payload stays a
        // codec error: that is a bug, not a link fault.
        let passthrough =
            surface_corrupt("reduce down", 4, tag)(KylixError::Codec { what: "key count" });
        assert_eq!(passthrough, KylixError::Codec { what: "key count" });
    }
}
