//! Error type for allreduce operations.

use kylix_net::CommError;

/// Errors surfaced by configuration / reduction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KylixError {
    /// A communication failure (timeout on a dead, unreplicated peer;
    /// cluster shutdown).
    Comm {
        /// Protocol stage in which the failure occurred.
        during: &'static str,
        /// The underlying communicator error.
        source: CommError,
    },
    /// Malformed message payload.
    Codec {
        /// What failed to decode.
        what: &'static str,
    },
    /// Caller-side misuse (mismatched lengths, values for unknown
    /// indices, …).
    Usage {
        /// Description of the misuse.
        what: &'static str,
    },
}

impl std::fmt::Display for KylixError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            KylixError::Comm { during, source } => {
                write!(f, "communication failed during {during}: {source}")
            }
            KylixError::Codec { what } => write!(f, "malformed message: {what}"),
            KylixError::Usage { what } => write!(f, "API misuse: {what}"),
        }
    }
}

impl std::error::Error for KylixError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, KylixError>;

/// Attach protocol-stage context to a communicator error.
pub fn comm_err(during: &'static str) -> impl FnOnce(CommError) -> KylixError {
    move |source| KylixError::Comm { during, source }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kylix_net::{Phase, Tag};

    #[test]
    fn display_includes_context() {
        let e = KylixError::Comm {
            during: "config down pass",
            source: CommError::Timeout {
                from: 3,
                tag: Tag::new(Phase::Config, 1, 0),
            },
        };
        let s = e.to_string();
        assert!(s.contains("config down pass"));
        assert!(s.contains("rank 3"));
    }
}
