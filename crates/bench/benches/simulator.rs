//! Criterion bench: the simulator substrate itself.
//!
//! The virtual-time cluster is a system we built; its own throughput
//! (simulated messages per wall second, full collectives per wall
//! second) bounds how large an experiment sweep stays interactive.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use kylix::{Kylix, NetworkPlan};
use kylix_net::{Comm, Phase, Tag};
use kylix_netsim::{NicModel, SimCluster};
use kylix_powerlaw::{DensityModel, PartitionGenerator};
use kylix_sparse::SumReducer;
use std::hint::black_box;

/// Raw message throughput: stream N messages between two sim nodes.
fn bench_message_stream(c: &mut Criterion) {
    let n = 1000u32;
    let mut group = c.benchmark_group("sim_message_stream");
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("1000_msgs_1kb", |b| {
        b.iter(|| {
            let cluster = SimCluster::new(2, NicModel::ec2_10g());
            let out = cluster.run_all(|mut comm| {
                if comm.rank() == 0 {
                    for i in 0..n {
                        comm.send(1, Tag::new(Phase::App, 0, i), Bytes::from(vec![0u8; 1024]));
                    }
                    0.0
                } else {
                    for i in 0..n {
                        comm.recv(0, Tag::new(Phase::App, 0, i)).unwrap();
                    }
                    comm.now()
                }
            });
            black_box(out)
        })
    });
    group.finish();
}

/// Full collectives on simulated clusters of growing size.
fn bench_sim_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_allreduce");
    group.sample_size(10);
    for &m in &[8usize, 16, 64] {
        let model = DensityModel::new(8192, 1.1);
        let gen = PartitionGenerator::with_density(model, 0.2, 5);
        let idx: Vec<Vec<u64>> = (0..m).map(|i| gen.indices(i)).collect();
        let plan = if m == 64 {
            NetworkPlan::new(&[8, 4, 2])
        } else {
            NetworkPlan::binary(m)
        };
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, _| {
            b.iter(|| {
                let cluster = SimCluster::new(m, NicModel::ec2_10g());
                let out = cluster.run_all(|mut comm| {
                    let me = comm.rank();
                    let vals = vec![1.0f64; idx[me].len()];
                    Kylix::new(plan.clone())
                        .allreduce_combined(&mut comm, &idx[me], &idx[me], &vals, SumReducer, 0)
                        .unwrap()
                        .0
                });
                black_box(out)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_message_stream, bench_sim_allreduce);
criterion_main!(benches);
