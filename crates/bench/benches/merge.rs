//! Criterion bench: tree merge vs hash-table union (paper §VI.A).
//!
//! The paper reports its sorted-run tree merge 5× faster than a hash
//! implementation for the configuration pass's index-set unions. This
//! bench reproduces the comparison on power-law key sets of various
//! widths and degrees.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kylix_powerlaw::{DensityModel, PartitionGenerator};
use kylix_sparse::merge::hash_union;
use kylix_sparse::{tree_merge, IndexSet, Key};
use std::hint::black_box;

fn power_law_sets(k: usize, n: u64, density: f64, seed: u64) -> Vec<Vec<Key>> {
    let model = DensityModel::new(n, 1.1);
    let gen = PartitionGenerator::with_density(model, density, seed);
    (0..k)
        .map(|i| IndexSet::from_indices(gen.indices(i)).into_keys())
        .collect()
}

fn bench_union(c: &mut Criterion) {
    let mut group = c.benchmark_group("union");
    for &k in &[2usize, 8, 16, 64] {
        let sets = power_law_sets(k, 100_000, 0.2, 42);
        let refs: Vec<&[Key]> = sets.iter().map(|s| s.as_slice()).collect();
        group.bench_with_input(BenchmarkId::new("tree_merge", k), &refs, |b, refs| {
            b.iter(|| black_box(tree_merge(black_box(refs))))
        });
        group.bench_with_input(BenchmarkId::new("hash_union", k), &refs, |b, refs| {
            b.iter(|| black_box(hash_union(black_box(refs))))
        });
    }
    group.finish();
}

fn bench_two_way_merge(c: &mut Criterion) {
    let sets = power_law_sets(2, 1_000_000, 0.2, 7);
    c.bench_function("merge_union_200k_elems", |b| {
        b.iter(|| {
            black_box(kylix_sparse::merge_union(
                black_box(&sets[0]),
                black_box(&sets[1]),
            ))
        })
    });
}

criterion_group!(benches, bench_union, bench_two_way_merge);
criterion_main!(benches);
