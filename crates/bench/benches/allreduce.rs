//! Criterion bench: real wall-clock sparse allreduce on the in-process
//! thread cluster.
//!
//! These are genuine end-to-end executions of the protocol (threads,
//! channels, codecs, merges) rather than virtual-time simulations —
//! they measure the CPU cost of the Kylix machinery itself, per
//! topology and mode.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kylix::{Kylix, NetworkPlan};
use kylix_net::{Comm, LocalCluster};
use kylix_powerlaw::{DensityModel, PartitionGenerator};
use kylix_sparse::SumReducer;
use std::hint::black_box;

fn workload(m: usize, n: u64, density: f64, seed: u64) -> Vec<Vec<u64>> {
    let model = DensityModel::new(n, 1.1);
    let gen = PartitionGenerator::with_density(model, density, seed);
    (0..m).map(|i| gen.indices(i)).collect()
}

/// Full combined config+reduce on an 8-thread cluster per topology.
fn bench_combined(c: &mut Criterion) {
    let m = 8;
    let idx = workload(m, 50_000, 0.2, 11);
    let mut group = c.benchmark_group("allreduce_combined_8nodes");
    for degrees in [vec![8usize], vec![4, 2], vec![2, 2, 2]] {
        let plan = NetworkPlan::new(&degrees);
        group.bench_with_input(
            BenchmarkId::from_parameter(plan.to_string()),
            &plan,
            |b, plan| {
                b.iter(|| {
                    let out = LocalCluster::run(m, |mut comm| {
                        let me = comm.rank();
                        let vals = vec![1.0f64; idx[me].len()];
                        Kylix::new(plan.clone())
                            .allreduce_combined(&mut comm, &idx[me], &idx[me], &vals, SumReducer, 0)
                            .unwrap()
                            .0
                    });
                    black_box(out)
                })
            },
        );
    }
    group.finish();
}

/// Configure-once, reduce-many: the amortised PageRank-style path.
fn bench_repeated_reduce(c: &mut Criterion) {
    let m = 8;
    let idx = workload(m, 50_000, 0.2, 13);
    c.bench_function("reduce_amortised_4x2", |b| {
        b.iter(|| {
            let out = LocalCluster::run(m, |mut comm| {
                let me = comm.rank();
                let kylix = Kylix::new(NetworkPlan::new(&[4, 2]));
                let mut state = kylix.configure(&mut comm, &idx[me], &idx[me], 0).unwrap();
                let vals = vec![1.0f64; idx[me].len()];
                let mut last = Vec::new();
                for _ in 0..4 {
                    last = state.reduce(&mut comm, &vals, SumReducer).unwrap();
                }
                last
            });
            black_box(out)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_combined, bench_repeated_reduce
}
criterion_main!(benches);
