//! Criterion bench: wire codec throughput.
//!
//! §VI of the paper stresses that on 10 Gb/s links, memory/CPU costs of
//! the messaging path can dominate; the codec must move multiple GB/s
//! per core. These benches pin encode/decode throughput for index lists
//! and value vectors.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use kylix::codec::{decode_keys, decode_values, encode_keys, encode_values};
use kylix_sparse::{IndexSet, Xoshiro256};
use std::hint::black_box;

fn bench_keys(c: &mut Criterion) {
    let mut rng = Xoshiro256::new(3);
    let set = IndexSet::from_indices((0..100_000).map(|_| rng.next_u64()));
    let encoded = encode_keys(set.keys());
    let mut group = c.benchmark_group("codec_keys");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_100k", |b| {
        b.iter(|| black_box(encode_keys(black_box(set.keys()))))
    });
    group.bench_function("decode_100k", |b| {
        b.iter(|| black_box(decode_keys(black_box(&encoded)).unwrap()))
    });
    group.finish();
}

fn bench_values(c: &mut Criterion) {
    let vals: Vec<f64> = (0..100_000).map(|i| i as f64 * 0.5).collect();
    let encoded = encode_values(&vals);
    let mut group = c.benchmark_group("codec_values");
    group.throughput(Throughput::Bytes(encoded.len() as u64));
    group.bench_function("encode_100k_f64", |b| {
        b.iter(|| black_box(encode_values(black_box(&vals))))
    });
    group.bench_function("decode_100k_f64", |b| {
        b.iter(|| black_box(decode_values::<f64>(black_box(&encoded)).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_keys, bench_values);
criterion_main!(benches);
