//! Table I — the cost of fault tolerance.
//!
//! The paper's table compares, on the Twitter-like workload:
//!
//! * the optimal unreplicated 64-node network (8×4×2),
//! * an unreplicated 32-node network (8×4) for reference,
//! * the replicated network: 64 physical nodes = 32 logical × 2
//!   replicas on 8×4, with 0–3 dead nodes.
//!
//! Expected shape: replication costs ≈25 % extra configuration time and
//! ≈60 % extra reduction time (fan-out doubles traffic but packet
//! racing claws back latency), and the runtime is flat in the number of
//! failures.

use crate::scaling::scaled_nic;
use crate::workload::VectorWorkload;
use kylix::{Kylix, NetworkPlan, ReplicatedComm};
use kylix_net::Comm;
use kylix_netsim::SimCluster;
use kylix_sparse::SumReducer;

/// One column of Table I.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Configuration label.
    pub system: String,
    /// Physical nodes.
    pub physical_nodes: usize,
    /// Replication factor.
    pub replication: usize,
    /// Dead nodes injected.
    pub dead_nodes: usize,
    /// Configuration makespan, full-scale seconds.
    pub config_time: f64,
    /// Reduce makespan, full-scale seconds.
    pub reduce_time: f64,
}

/// Time one (plan, replication, dead set) cell.
fn time_cell(
    workload: &VectorWorkload,
    plan: &NetworkPlan,
    replication: usize,
    dead: &[usize],
    seed: u64,
) -> (f64, f64) {
    let logical = plan.size();
    let physical = logical * replication;
    let nic = scaled_nic(workload.scale as f64);
    let cluster = SimCluster::new(physical, nic).seed(seed).failures(dead);
    let per_node: Vec<Option<(f64, f64)>> = cluster.run(|comm| {
        let mut rc = ReplicatedComm::new(comm, replication);
        let me = rc.rank();
        let idx = &workload.node_indices[me];
        let kylix = Kylix::new(plan.clone());
        let mut state = kylix.configure(&mut rc, idx, idx, 0).unwrap();
        let t_cfg = rc.now();
        let vals = vec![1.0f64; idx.len()];
        state.reduce(&mut rc, &vals, SumReducer).unwrap();
        (t_cfg, rc.now())
    });
    let alive: Vec<(f64, f64)> = per_node.into_iter().flatten().collect();
    let config_end = alive.iter().map(|p| p.0).fold(0.0, f64::max);
    let reduce_end = alive.iter().map(|p| p.1).fold(0.0, f64::max);
    let s = workload.scale as f64;
    (config_end * s, (reduce_end - config_end) * s)
}

/// Regenerate Table I.
pub fn run(scale: u64, seed: u64) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    // Column 1: unreplicated 64-node 8x4x2.
    let w64 = VectorWorkload::twitter_like(64, scale, seed);
    let (c, r) = time_cell(&w64, &NetworkPlan::new(&[8, 4, 2]), 1, &[], seed);
    rows.push(Table1Row {
        system: "8x4x2 rep=1 (64 nodes)".into(),
        physical_nodes: 64,
        replication: 1,
        dead_nodes: 0,
        config_time: c,
        reduce_time: r,
    });
    // Column 2: unreplicated 32-node 8x4 (same data split 32 ways).
    let w32 = VectorWorkload::twitter_like(32, scale, seed + 1);
    let (c, r) = time_cell(&w32, &NetworkPlan::new(&[8, 4]), 1, &[], seed);
    rows.push(Table1Row {
        system: "8x4 rep=1 (32 nodes)".into(),
        physical_nodes: 32,
        replication: 1,
        dead_nodes: 0,
        config_time: c,
        reduce_time: r,
    });
    // Columns 3–6: replicated 8x4 on 64 physical nodes, 0–3 failures.
    for dead_count in 0..=3usize {
        // Kill second replicas of distinct logical nodes (physical
        // ranks 32, 33, 34): each group keeps a survivor.
        let dead: Vec<usize> = (0..dead_count).map(|i| 32 + i).collect();
        let (c, r) = time_cell(&w32, &NetworkPlan::new(&[8, 4]), 2, &dead, seed);
        rows.push(Table1Row {
            system: "8x4 rep=2 (64 nodes)".into(),
            physical_nodes: 64,
            replication: 2,
            dead_nodes: dead_count,
            config_time: c,
            reduce_time: r,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replication_overhead_is_moderate() {
        let rows = run(4000, 5);
        let unrep32 = &rows[1];
        let rep0 = &rows[2];
        // Paper: ~+25% config, ~+60% reduce vs the unreplicated 32-node
        // network. Accept the band [1.0, 2.5]x — doubling traffic
        // through one NIC bounds it above by ~2x plus jitter.
        let cfg_ratio = rep0.config_time / unrep32.config_time;
        let red_ratio = rep0.reduce_time / unrep32.reduce_time;
        assert!(
            (1.0..2.5).contains(&cfg_ratio),
            "config ratio {cfg_ratio:.2}"
        );
        assert!(
            (1.0..2.5).contains(&red_ratio),
            "reduce ratio {red_ratio:.2}"
        );
    }

    #[test]
    fn runtime_is_flat_in_failures() {
        let rows = run(4000, 6);
        let reps: Vec<&Table1Row> = rows.iter().filter(|r| r.replication == 2).collect();
        assert_eq!(reps.len(), 4);
        let base = reps[0].reduce_time + reps[0].config_time;
        for r in &reps[1..] {
            let t = r.reduce_time + r.config_time;
            assert!(
                (t - base).abs() / base < 0.25,
                "{} dead: {t} vs baseline {base}",
                r.dead_nodes
            );
        }
    }

    #[test]
    fn all_cells_completed() {
        let rows = run(4000, 7);
        assert_eq!(rows.len(), 6);
        for r in &rows {
            assert!(r.config_time > 0.0 && r.reduce_time > 0.0, "{r:?}");
        }
    }
}
