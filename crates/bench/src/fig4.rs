//! Fig. 4 — vector density vs normalised scaling factor λ.
//!
//! The design-workflow chart: density `f(λ)` for power-law exponents
//! α ∈ {0.5, 1, 2}, with λ normalised by `λ_0.9` (where density reaches
//! 0.9). The paper's observation: the normalised curves nearly
//! coincide across α, so one chart drives the workflow for any real
//! dataset.

use kylix_powerlaw::DensityModel;

/// One sampled curve point.
#[derive(Debug, Clone, Copy)]
pub struct Fig4Row {
    /// Power-law exponent.
    pub alpha: f64,
    /// λ / λ_0.9 (normalised scaling factor).
    pub lambda_norm: f64,
    /// Density f(λ).
    pub density: f64,
}

/// Exponents the paper plots.
pub const ALPHAS: [f64; 3] = [0.5, 1.0, 2.0];

/// Sample the normalised density curves.
pub fn run(n_features: u64) -> Vec<Fig4Row> {
    let mut rows = Vec::new();
    for &alpha in &ALPHAS {
        let model = DensityModel::new(n_features, alpha);
        let l09 = model.lambda_090();
        // Log sweep of normalised lambda over four decades.
        for e in -30..=4 {
            let lambda_norm = 10f64.powf(e as f64 / 10.0);
            rows.push(Fig4Row {
                alpha,
                lambda_norm,
                density: model.density(lambda_norm * l09),
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curves_are_monotone_and_hit_09_at_1() {
        let rows = run(1 << 16);
        for &alpha in &ALPHAS {
            let curve: Vec<&Fig4Row> = rows.iter().filter(|r| r.alpha == alpha).collect();
            for w in curve.windows(2) {
                assert!(w[1].density >= w[0].density, "alpha {alpha}");
            }
            let at1 = curve
                .iter()
                .min_by(|a, b| {
                    (a.lambda_norm - 1.0)
                        .abs()
                        .partial_cmp(&(b.lambda_norm - 1.0).abs())
                        .unwrap()
                })
                .unwrap();
            assert!(
                (at1.density - 0.9).abs() < 0.03,
                "alpha {alpha}: {}",
                at1.density
            );
        }
    }

    #[test]
    fn alpha_dependence_is_modest() {
        // Paper: "the shape of the curve has only a modest dependence
        // on α".
        let rows = run(1 << 16);
        for e in [-10i32, -5, 0] {
            let norm = 10f64.powf(e as f64 / 10.0);
            let ds: Vec<f64> = ALPHAS
                .iter()
                .map(|&alpha| {
                    rows.iter()
                        .filter(|r| r.alpha == alpha)
                        .min_by(|a, b| {
                            (a.lambda_norm - norm)
                                .abs()
                                .partial_cmp(&(b.lambda_norm - norm).abs())
                                .unwrap()
                        })
                        .unwrap()
                        .density
                })
                .collect();
            let spread = ds.iter().cloned().fold(f64::MIN, f64::max)
                - ds.iter().cloned().fold(f64::MAX, f64::min);
            assert!(spread < 0.35, "norm {norm}: spread {spread} ({ds:?})");
        }
    }
}
