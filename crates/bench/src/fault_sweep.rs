//! Fault sweep: completion rate and time overhead under injected
//! failures.
//!
//! The paper's §V argues replication + packet racing makes Kylix
//! tolerate machine failures; this experiment quantifies the whole
//! chaos surface the workspace can now inject:
//!
//! * **Crash sweep** (virtual time, deterministic) — a 2×-replicated
//!   16-logical-node Kylix run on the simulator with `k` replicas
//!   crashing *mid-protocol* at staggered virtual times. Measures the
//!   completion rate across physical ranks, result correctness against
//!   the sequential reference, and the virtual makespan overhead of
//!   racing past the dead. Same seed ⇒ bit-identical completion sets,
//!   results, and virtual times.
//! * **Loss sweep** (wall time) — an *unreplicated* Kylix run over
//!   lossy links (drop/duplicate/corrupt/delay per [`FaultPlan`]),
//!   repaired by [`ReliableComm`]'s ack/retransmit layer. Measures
//!   completion, correctness, retransmit counts, and wall-time overhead
//!   versus the lossless run. Retransmission timers are wall-clock, so
//!   this half reports *measured* times, not virtual ones.
//! * **Corruption check** — payload corruption without the reliability
//!   layer must be *detected* by the codec's checksum seal and surfaced
//!   as `CommError::Corrupt`, never silently reduced into results.

use crate::scaling::scaled_nic;
use crate::workload::VectorWorkload;
use kylix::{
    reference_allreduce, Kylix, KylixError, NetworkPlan, NodeContribution, ReplicatedComm,
};
use kylix_net::telemetry::{Clock, Counter, Telemetry};
use kylix_net::{Comm, CommError, FaultPlan, LocalCluster, ReliableComm};
use kylix_netsim::SimCluster;
use kylix_sparse::SumReducer;
use std::time::Instant;

/// One measured row of the sweep.
#[derive(Debug, Clone)]
pub struct FaultRow {
    /// Which half of the sweep the row belongs to.
    pub scenario: &'static str,
    /// Injected-fault description.
    pub detail: String,
    /// Ranks that completed the allreduce.
    pub completed: usize,
    /// Total physical ranks.
    pub total: usize,
    /// Every completed rank's result matched the reference.
    pub correct: bool,
    /// Makespan: virtual seconds (crash sweep) or wall seconds (loss
    /// sweep).
    pub time: f64,
    /// `time` relative to the fault-free run of the same scenario.
    pub overhead: f64,
    /// Data retransmissions (loss sweep only).
    pub retransmits: u64,
}

/// Logical cluster size of the crash sweep.
const CRASH_LOGICAL: usize = 16;
/// Replication factor of the crash sweep.
const CRASH_REPLICATION: usize = 2;

fn contributions(w: &VectorWorkload) -> Vec<NodeContribution<f64>> {
    w.node_indices
        .iter()
        .map(|idx| NodeContribution {
            in_indices: idx.clone(),
            out_indices: idx.clone(),
            out_values: vec![1.0; idx.len()],
        })
        .collect()
}

/// One crash-sweep run: `k` replicas crash mid-protocol at virtual
/// times staggered across `(0, horizon)`. Returns per *physical* rank
/// `Some((logical result, final virtual time))`, or `None` where the
/// rank crashed. Fully deterministic in `(scale, seed, k, horizon)` —
/// the determinism test compares two invocations verbatim.
pub fn crash_run(scale: u64, seed: u64, k: usize, horizon: f64) -> Vec<Option<(Vec<f64>, f64)>> {
    assert!(k <= CRASH_LOGICAL, "at most one crash per logical node");
    let w = VectorWorkload::twitter_like(CRASH_LOGICAL, scale, seed);
    let physical = CRASH_LOGICAL * CRASH_REPLICATION;
    let plan = NetworkPlan::new(&[4, 4]);
    let nic = scaled_nic(scale as f64).with_jitter(0.3);
    // Crash replica 1 of the first `k` logical nodes (so every logical
    // node keeps a live replica) at times spread over the horizon —
    // mid-protocol, not before the start.
    let mut faults = FaultPlan::new(seed);
    for i in 0..k {
        let t = horizon * (0.2 + 0.6 * i as f64 / k.max(1) as f64);
        faults = faults.crash_at(CRASH_LOGICAL + i, t);
    }
    let cluster = SimCluster::new(physical, nic)
        .seed(seed)
        .with_faults(&faults);
    cluster.run_all(|comm| {
        let mut rc = ReplicatedComm::new(comm, CRASH_REPLICATION);
        let me = rc.rank();
        let ones = vec![1.0f64; w.node_indices[me].len()];
        let kylix = Kylix::new(plan.clone());
        let got = kylix
            .allreduce_combined(
                &mut rc,
                &w.node_indices[me],
                &w.node_indices[me],
                &ones,
                SumReducer,
                0,
            )
            .map(|(vals, _)| vals);
        match got {
            Ok(vals) => Some((vals, rc.now())),
            Err(_) => None, // this replica crashed mid-run
        }
    })
}

/// Crash sweep rows for the given replica-crash counts.
pub fn crash_sweep(scale: u64, seed: u64, counts: &[usize]) -> Vec<FaultRow> {
    let w = VectorWorkload::twitter_like(CRASH_LOGICAL, scale, seed);
    let expected = reference_allreduce(&contributions(&w), SumReducer);
    // Fault-free run fixes the crash-time horizon and the baseline
    // makespan.
    let base = crash_run(scale, seed, 0, 0.0);
    let horizon = base.iter().flatten().map(|(_, t)| *t).fold(0.0, f64::max);
    let mut rows = Vec::new();
    for &k in counts {
        let out = crash_run(scale, seed, k, horizon);
        let completed = out.iter().flatten().count();
        let correct = out.iter().enumerate().all(|(phys, r)| match r {
            None => true,
            Some((vals, _)) => {
                let logical = phys % CRASH_LOGICAL;
                vals.len() == expected[logical].len()
                    && vals
                        .iter()
                        .zip(&expected[logical])
                        .all(|(a, b)| (a - b).abs() < 1e-9)
            }
        });
        let time = out.iter().flatten().map(|(_, t)| *t).fold(0.0, f64::max);
        rows.push(FaultRow {
            scenario: "crash",
            detail: format!("{k} replica crashes mid-run (s=2, 16 logical)"),
            completed,
            total: CRASH_LOGICAL * CRASH_REPLICATION,
            correct,
            time,
            overhead: if horizon > 0.0 { time / horizon } else { 1.0 },
            retransmits: 0,
        });
    }
    rows
}

/// Loss-sweep cluster size (must equal the plan's size).
const LOSS_NODES: usize = 8;

/// One loss-sweep run at per-message loss rate `p` (plus proportional
/// duplication, corruption, and delay). Unreplicated Kylix over
/// `ReliableComm<ChaosComm<ThreadComm>>`; wall-clock. Returns per-rank
/// `(correct, seconds, retransmits)` — retransmit counts read back
/// from the cluster telemetry shards the reliability layer records
/// into, not from ad-hoc per-connection accounting.
pub fn loss_run(scale: u64, seed: u64, p: f64) -> Vec<(bool, f64, u64)> {
    let w = VectorWorkload::twitter_like(LOSS_NODES, scale, seed);
    let expected = reference_allreduce(&contributions(&w), SumReducer);
    let plan = NetworkPlan::new(&[4, 2]);
    let faults = FaultPlan::new(seed)
        .drop_rate(p)
        .duplicate_rate(p / 2.0)
        .corrupt_rate(p / 4.0)
        .delay_rate(p / 2.0);
    let tel = Telemetry::new(LOSS_NODES, Clock::Wall);
    let out = LocalCluster::run_with_faults_telemetry(LOSS_NODES, &faults, &tel, |chaos| {
        let mut comm = ReliableComm::new(chaos);
        let me = comm.rank();
        let ones = vec![1.0f64; w.node_indices[me].len()];
        let start = Instant::now();
        let kylix = Kylix::new(plan.clone());
        let got = kylix
            .allreduce_combined(
                &mut comm,
                &w.node_indices[me],
                &w.node_indices[me],
                &ones,
                SumReducer,
                0,
            )
            .map(|(vals, _)| vals);
        // Still drain the reliability layer; its stats now also live in
        // the telemetry shard read after the join.
        comm.flush().ok();
        let secs = start.elapsed().as_secs_f64();
        let correct = match got {
            Ok(vals) => {
                vals.len() == expected[me].len()
                    && vals
                        .iter()
                        .zip(&expected[me])
                        .all(|(a, b)| (a - b).abs() < 1e-9)
            }
            Err(_) => false,
        };
        (correct, secs)
    });
    out.into_iter()
        .enumerate()
        .map(|(rank, (correct, secs))| (correct, secs, tel.rank(rank).total(Counter::Retransmits)))
        .collect()
}

/// Loss sweep rows for the given loss rates (first rate is the
/// overhead baseline).
pub fn loss_sweep(scale: u64, seed: u64, rates: &[f64]) -> Vec<FaultRow> {
    let mut rows: Vec<FaultRow> = Vec::new();
    let mut baseline = f64::NAN;
    for &p in rates {
        let out = loss_run(scale, seed, p);
        let completed = out.iter().filter(|(ok, _, _)| *ok).count();
        let time = out.iter().map(|(_, s, _)| *s).fold(0.0, f64::max);
        let retransmits = out.iter().map(|(_, _, r)| r).sum();
        if baseline.is_nan() {
            baseline = time;
        }
        rows.push(FaultRow {
            scenario: "loss",
            detail: format!(
                "loss {:.0}% dup {:.0}% corrupt {:.0}%",
                p * 100.0,
                p * 50.0,
                p * 25.0
            ),
            completed,
            total: LOSS_NODES,
            correct: completed == LOSS_NODES,
            time,
            overhead: if baseline > 0.0 { time / baseline } else { 1.0 },
            retransmits,
        });
    }
    rows
}

/// Corruption check: with every link corrupting and *no* reliability
/// layer, the allreduce must fail loudly with `CommError::Corrupt` on
/// every rank — the checksum seal turns silent data poisoning into a
/// detected fault.
pub fn corrupt_check(scale: u64, seed: u64) -> FaultRow {
    let m = 4;
    let w = VectorWorkload::twitter_like(m, scale, seed);
    let plan = NetworkPlan::new(&[2, 2]);
    let faults = FaultPlan::new(seed).corrupt_rate(1.0);
    let out = LocalCluster::run_with_faults(m, &faults, |mut chaos| {
        let me = chaos.rank();
        let ones = vec![1.0f64; w.node_indices[me].len()];
        let kylix = Kylix::new(plan.clone());
        kylix.allreduce_combined(
            &mut chaos,
            &w.node_indices[me],
            &w.node_indices[me],
            &ones,
            SumReducer,
            0,
        )
    });
    let detected = out
        .iter()
        .filter(|r| {
            matches!(
                r,
                Err(KylixError::Comm {
                    source: CommError::Corrupt { .. },
                    ..
                })
            )
        })
        .count();
    FaultRow {
        scenario: "corrupt",
        detail: "100% link corruption, no reliability layer".into(),
        completed: detected,
        total: m,
        correct: detected == m, // "correct" = corruption detected everywhere
        time: 0.0,
        overhead: 1.0,
        retransmits: 0,
    }
}

/// The full sweep. `quick` trims it to a CI-smoke subset.
pub fn run(scale: u64, seed: u64, quick: bool) -> Vec<FaultRow> {
    let (crash_counts, loss_rates): (&[usize], &[f64]) = if quick {
        (&[0, 2], &[0.0, 0.1])
    } else {
        (&[0, 1, 2, 4], &[0.0, 0.05, 0.1, 0.2])
    };
    let mut rows = crash_sweep(scale, seed, crash_counts);
    rows.extend(loss_sweep(scale, seed + 1, loss_rates));
    rows.push(corrupt_check(scale, seed + 2));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Acceptance: two crash-sweep runs with the same seed and plan
    /// produce identical completion sets, identical results, and
    /// identical virtual times — bit for bit.
    #[test]
    fn crash_runs_are_deterministic() {
        // Fix the horizon from a fault-free baseline so the injected
        // crashes genuinely land mid-protocol.
        let base = crash_run(4000, 21, 0, 0.0);
        let horizon = base.iter().flatten().map(|(_, t)| *t).fold(0.0, f64::max);
        assert!(horizon > 0.0);
        let a = crash_run(4000, 21, 3, horizon);
        let b = crash_run(4000, 21, 3, horizon);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            match (x, y) {
                (None, None) => {}
                (Some((va, ta)), Some((vb, tb))) => {
                    assert_eq!(va, vb, "results must be identical");
                    assert_eq!(
                        ta.to_bits(),
                        tb.to_bits(),
                        "virtual times must be identical"
                    );
                }
                _ => panic!("completion sets differ"),
            }
        }
    }

    /// Acceptance: replicated Kylix completes *correctly* when one
    /// replica per affected logical node dies mid-protocol.
    #[test]
    fn replicated_completes_through_midrun_crashes() {
        let rows = crash_sweep(4000, 13, &[0, 2]);
        let faulted = &rows[1];
        assert!(faulted.correct, "survivors must match the reference");
        assert_eq!(
            faulted.total - faulted.completed,
            2,
            "exactly the crashed replicas drop out: {faulted:?}"
        );
        assert!(faulted.time >= rows[0].time * 0.5, "sane makespan");
    }

    /// Acceptance: the reliability layer completes a correct allreduce
    /// at ≥10% per-message loss without any replication.
    #[test]
    fn reliable_completes_at_ten_percent_loss() {
        let out = loss_run(4000, 17, 0.10);
        assert!(
            out.iter().all(|(ok, _, _)| *ok),
            "every rank must finish correctly: {out:?}"
        );
        let retransmits: u64 = out.iter().map(|(_, _, r)| r).sum();
        assert!(retransmits > 0, "10% loss must force retransmissions");
    }

    /// Acceptance: injected payload corruption is detected via the
    /// codec checksum and surfaced as an error, not reduced.
    #[test]
    fn corruption_is_detected_not_reduced() {
        let row = corrupt_check(4000, 19);
        assert!(
            row.correct,
            "all ranks must surface CommError::Corrupt: {row:?}"
        );
    }

    /// The quick (CI smoke) sweep holds the headline properties.
    #[test]
    fn quick_sweep_smoke() {
        let rows = run(4000, 23, true);
        assert!(rows.iter().all(|r| r.correct), "{rows:#?}");
    }
}
