//! Regenerate every table and figure of the Kylix paper's evaluation.
//!
//! ```text
//! figures [fig2|fig4|fig5|fig6|fig7|table1|fig8|fig9|faults|straggler|substrates|all] \
//!     [--scale N] [--seed N] [--quick] [--json PATH] [--telemetry PATH] \
//!     [--substrate thread|tcp|sim]…
//! ```
//!
//! Each experiment prints an aligned text table; `--json` additionally
//! dumps machine-readable rows (used to refresh EXPERIMENTS.md).
//! `--telemetry` dumps the raw per-rank telemetry export behind the
//! Fig. 5 volumes (the CI build artifact). `--quick` trims the fault
//! and straggler sweeps to their CI-smoke subsets. `--substrate`
//! (repeatable) restricts the `substrates` cross-check to the named
//! execution substrates; default is all three.

use kylix_bench::substrate::Substrate;
use kylix_bench::{
    ablation, fault_sweep, fig2, fig4, fig5, fig6, fig7, fig8, fig9, print_table, straggler,
    substrate, table1,
};
use std::collections::BTreeMap;

#[derive(Debug)]
struct Args {
    which: Vec<String>,
    scale: u64,
    seed: u64,
    quick: bool,
    json: Option<String>,
    telemetry: Option<String>,
    substrates: Vec<Substrate>,
}

fn parse_args() -> Args {
    let mut which = Vec::new();
    let mut scale = 4000;
    let mut seed = 7;
    let mut quick = false;
    let mut json = None;
    let mut telemetry = None;
    let mut substrates = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => scale = it.next().expect("--scale N").parse().expect("scale"),
            "--seed" => seed = it.next().expect("--seed N").parse().expect("seed"),
            "--quick" => quick = true,
            "--json" => json = Some(it.next().expect("--json PATH")),
            "--telemetry" => telemetry = Some(it.next().expect("--telemetry PATH")),
            "--substrate" => substrates.push(
                it.next()
                    .expect("--substrate thread|tcp|sim")
                    .parse()
                    .expect("substrate"),
            ),
            "-h" | "--help" => {
                eprintln!(
                    "usage: figures [fig2|fig4|fig5|fig6|fig7|table1|fig8|fig9|faults|straggler|substrates|all]… \
                     [--scale N] [--seed N] [--quick] [--json PATH] [--telemetry PATH] \
                     [--substrate thread|tcp|sim]…"
                );
                std::process::exit(0);
            }
            other => which.push(other.to_string()),
        }
    }
    if which.is_empty() || which.iter().any(|w| w == "all") {
        which = [
            "fig2",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "table1",
            "fig8",
            "fig9",
            "ablations",
            "faults",
            "straggler",
            "substrates",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    if substrates.is_empty() {
        substrates = Substrate::ALL.to_vec();
    }
    Args {
        which,
        scale,
        seed,
        quick,
        json,
        telemetry,
        substrates,
    }
}

/// Combine the per-profile telemetry exports (already JSON) into one
/// artifact document. Assembled by hand so the payload stays exactly
/// what `Telemetry::to_json` produced, wrapped with run metadata.
fn telemetry_artifact(profiles: &[fig5::Fig5Profile], scale: u64, seed: u64) -> String {
    let mut s = format!(
        "{{\n  \"experiment\": \"fig5\",\n  \"scale\": {scale},\n  \"seed\": {seed},\n  \"profiles\": ["
    );
    for (i, p) in profiles.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    {{\"dataset\": \"{}\", \"telemetry\": {}}}",
            p.dataset, p.telemetry_json
        ));
    }
    s.push_str("\n  ]\n}\n");
    s
}

fn mb(bytes: f64) -> String {
    format!("{:.2}", bytes / 1e6)
}

fn main() {
    let args = parse_args();
    let mut json_out: BTreeMap<String, serde_json::Value> = BTreeMap::new();

    for which in &args.which {
        match which.as_str() {
            "fig2" => {
                let rows = fig2::run();
                print_table(
                    "Fig. 2 — throughput vs packet size (10 Gb/s NIC model)",
                    &["packet", "measured Gb/s", "model Gb/s", "utilisation"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                format!("{} KB", r.packet_bytes / 1024),
                                format!("{:.2}", r.measured_gbps),
                                format!("{:.2}", r.model_gbps),
                                format!("{:.1}%", r.utilisation * 100.0),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
                json_out.insert(
                    "fig2".into(),
                    serde_json::json!(rows
                        .iter()
                        .map(|r| serde_json::json!({
                            "packet_bytes": r.packet_bytes,
                            "measured_gbps": r.measured_gbps,
                            "utilisation": r.utilisation,
                        }))
                        .collect::<Vec<_>>()),
                );
            }
            "fig4" => {
                let rows = fig4::run(1 << 18);
                print_table(
                    "Fig. 4 — density vs normalised scaling factor (n = 2^18)",
                    &["alpha", "lambda/lambda_0.9", "density"],
                    &rows
                        .iter()
                        .filter(|r| {
                            let l = r.lambda_norm.log10();
                            (l - l.round()).abs() < 1e-9
                        })
                        .map(|r| {
                            vec![
                                format!("{:.1}", r.alpha),
                                format!("{:.0e}", r.lambda_norm),
                                format!("{:.4}", r.density),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
                json_out.insert(
                    "fig4".into(),
                    serde_json::json!(rows
                        .iter()
                        .map(|r| serde_json::json!({
                            "alpha": r.alpha,
                            "lambda_norm": r.lambda_norm,
                            "density": r.density,
                        }))
                        .collect::<Vec<_>>()),
                );
            }
            "fig5" => {
                let profiles = fig5::run(args.scale, args.seed);
                if let Some(path) = &args.telemetry {
                    std::fs::write(path, telemetry_artifact(&profiles, args.scale, args.seed))
                        .expect("write telemetry");
                    eprintln!("wrote {path}");
                }
                for p in &profiles {
                    let degrees: Vec<String> = p.degrees.iter().map(|d| d.to_string()).collect();
                    let mut rows = Vec::new();
                    for (l, (&m, &pr)) in
                        p.measured_bytes.iter().zip(&p.predicted_bytes).enumerate()
                    {
                        rows.push(vec![
                            format!("layer {}", l + 1),
                            mb(m as f64 * args.scale as f64),
                            mb(pr * args.scale as f64),
                        ]);
                    }
                    rows.push(vec![
                        "reduced (bottom)".into(),
                        mb(p.bottom_bytes as f64 * args.scale as f64),
                        mb(p.predicted_bottom * args.scale as f64),
                    ]);
                    print_table(
                        &format!(
                            "Fig. 5 — per-layer volume, {} on {} (full-scale MB)",
                            p.dataset,
                            degrees.join("x")
                        ),
                        &["layer", "measured MB", "predicted MB"],
                        &rows,
                    );
                }
                json_out.insert(
                    "fig5".into(),
                    serde_json::json!(profiles
                        .iter()
                        .map(|p| serde_json::json!({
                            "dataset": p.dataset,
                            "degrees": p.degrees,
                            "measured_bytes": p.measured_bytes,
                            "bottom_bytes": p.bottom_bytes,
                        }))
                        .collect::<Vec<_>>()),
                );
            }
            "fig6" => {
                let rows = fig6::run(args.scale, args.seed);
                print_table(
                    "Fig. 6 — config/reduce time per topology (full-scale seconds)",
                    &["dataset", "topology", "config s", "reduce s"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                r.dataset.clone(),
                                r.topology.clone(),
                                format!("{:.3}", r.config_time),
                                format!("{:.3}", r.reduce_time),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
                json_out.insert(
                    "fig6".into(),
                    serde_json::json!(rows
                        .iter()
                        .map(|r| serde_json::json!({
                            "dataset": r.dataset,
                            "topology": r.topology,
                            "config_time": r.config_time,
                            "reduce_time": r.reduce_time,
                        }))
                        .collect::<Vec<_>>()),
                );
            }
            "fig7" => {
                let rows = fig7::run(args.scale, args.seed);
                print_table(
                    "Fig. 7 — allreduce runtime vs thread count (8x4x2, full-scale s)",
                    &["threads", "runtime s"],
                    &rows
                        .iter()
                        .map(|r| vec![r.threads.to_string(), format!("{:.3}", r.runtime)])
                        .collect::<Vec<_>>(),
                );
                json_out.insert(
                    "fig7".into(),
                    serde_json::json!(rows
                        .iter()
                        .map(|r| serde_json::json!({
                            "threads": r.threads,
                            "runtime": r.runtime,
                        }))
                        .collect::<Vec<_>>()),
                );
            }
            "table1" => {
                let rows = table1::run(args.scale, args.seed);
                print_table(
                    "Table I — cost of fault tolerance (full-scale seconds)",
                    &["system", "dead", "config s", "reduce s"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                r.system.clone(),
                                r.dead_nodes.to_string(),
                                format!("{:.3}", r.config_time),
                                format!("{:.3}", r.reduce_time),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
                json_out.insert(
                    "table1".into(),
                    serde_json::json!(rows
                        .iter()
                        .map(|r| serde_json::json!({
                            "system": r.system,
                            "dead_nodes": r.dead_nodes,
                            "config_time": r.config_time,
                            "reduce_time": r.reduce_time,
                        }))
                        .collect::<Vec<_>>()),
                );
            }
            "fig8" => {
                let rows = fig8::run(args.scale, args.seed);
                print_table(
                    "Fig. 8 — PageRank runtime per iteration (full-scale seconds, log-scale in paper)",
                    &["dataset", "system", "s/iteration"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                r.dataset.clone(),
                                r.system.clone(),
                                format!("{:.3}", r.seconds_per_iter),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
                json_out.insert(
                    "fig8".into(),
                    serde_json::json!(rows
                        .iter()
                        .map(|r| serde_json::json!({
                            "dataset": r.dataset,
                            "system": r.system,
                            "seconds_per_iter": r.seconds_per_iter,
                        }))
                        .collect::<Vec<_>>()),
                );
            }
            "fig9" => {
                let rows = fig9::run(args.scale, args.seed);
                print_table(
                    "Fig. 9 — compute/comm breakdown and speedup vs cluster size",
                    &["dataset", "m", "degrees", "compute s", "comm s", "speedup"],
                    &rows
                        .iter()
                        .map(|r| {
                            let degrees: Vec<String> =
                                r.degrees.iter().map(|d| d.to_string()).collect();
                            vec![
                                r.dataset.clone(),
                                r.m.to_string(),
                                degrees.join("x"),
                                format!("{:.3}", r.compute_time),
                                format!("{:.3}", r.comm_time),
                                format!("{:.2}x", r.speedup),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
                json_out.insert(
                    "fig9".into(),
                    serde_json::json!(rows
                        .iter()
                        .map(|r| serde_json::json!({
                            "dataset": r.dataset,
                            "m": r.m,
                            "degrees": r.degrees,
                            "compute_time": r.compute_time,
                            "comm_time": r.comm_time,
                            "speedup": r.speedup,
                        }))
                        .collect::<Vec<_>>()),
                );
            }
            "ablations" => {
                let rows = ablation::run(args.scale, args.seed);
                print_table(
                    "Ablations — design-choice studies",
                    &["study", "variant", "value", "unit"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                r.study.to_string(),
                                r.variant.clone(),
                                format!("{:.4}", r.value),
                                r.unit.to_string(),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
                json_out.insert(
                    "ablations".into(),
                    serde_json::json!(rows
                        .iter()
                        .map(|r| serde_json::json!({
                            "study": r.study,
                            "variant": r.variant,
                            "value": r.value,
                            "unit": r.unit,
                        }))
                        .collect::<Vec<_>>()),
                );
            }
            "faults" => {
                let rows = fault_sweep::run(args.scale, args.seed, args.quick);
                print_table(
                    "Fault sweep — completion and overhead under injected failures",
                    &[
                        "scenario", "faults", "done", "correct", "time s", "overhead", "rexmit",
                    ],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                r.scenario.to_string(),
                                r.detail.clone(),
                                format!("{}/{}", r.completed, r.total),
                                if r.correct { "yes" } else { "NO" }.to_string(),
                                format!("{:.4}", r.time),
                                format!("{:.2}x", r.overhead),
                                r.retransmits.to_string(),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
                json_out.insert(
                    "faults".into(),
                    serde_json::json!(rows
                        .iter()
                        .map(|r| serde_json::json!({
                            "scenario": r.scenario,
                            "detail": r.detail,
                            "completed": r.completed,
                            "total": r.total,
                            "correct": r.correct,
                            "time": r.time,
                            "overhead": r.overhead,
                            "retransmits": r.retransmits,
                        }))
                        .collect::<Vec<_>>()),
                );
            }
            "straggler" => {
                let rows = straggler::run(args.scale, args.seed, args.quick);
                print_table(
                    "Straggler sweep — fixed vs arrival-order receives (full-scale s/op)",
                    &["skew", "fixed s", "arrival s", "speedup"],
                    &rows
                        .iter()
                        .map(|r| {
                            vec![
                                format!("{:.0}x", r.skew),
                                format!("{:.4}", r.fixed),
                                format!("{:.4}", r.arrival),
                                format!("{:.2}x", r.speedup),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
                json_out.insert(
                    "straggler".into(),
                    serde_json::json!(rows
                        .iter()
                        .map(|r| serde_json::json!({
                            "skew": r.skew,
                            "fixed": r.fixed,
                            "arrival": r.arrival,
                            "speedup": r.speedup,
                        }))
                        .collect::<Vec<_>>()),
                );
            }
            "substrates" => {
                let rows = substrate::run(args.scale, args.seed, &args.substrates);
                print_table(
                    "Substrate cross-check — one allreduce on each execution substrate",
                    &[
                        "substrate",
                        "m",
                        "degrees",
                        "time s",
                        "sent MB",
                        "msgs",
                        "exact",
                    ],
                    &rows
                        .iter()
                        .map(|r| {
                            let degrees: Vec<String> =
                                r.degrees.iter().map(|d| d.to_string()).collect();
                            vec![
                                r.substrate.to_string(),
                                r.m.to_string(),
                                degrees.join("x"),
                                format!("{:.4}", r.seconds),
                                mb(r.bytes_sent as f64),
                                r.msgs_sent.to_string(),
                                if r.exact { "yes" } else { "NO" }.to_string(),
                            ]
                        })
                        .collect::<Vec<_>>(),
                );
                json_out.insert(
                    "substrates".into(),
                    serde_json::json!(rows
                        .iter()
                        .map(|r| serde_json::json!({
                            "substrate": r.substrate,
                            "m": r.m,
                            "degrees": r.degrees,
                            "seconds": r.seconds,
                            "bytes_sent": r.bytes_sent,
                            "msgs_sent": r.msgs_sent,
                            "exact": r.exact,
                        }))
                        .collect::<Vec<_>>()),
                );
            }
            other => {
                eprintln!("unknown experiment: {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = &args.json {
        let payload = serde_json::json!({
            "scale": args.scale,
            "seed": args.seed,
            "experiments": json_out,
        });
        std::fs::write(path, serde_json::to_string_pretty(&payload).expect("json"))
            .expect("write json");
        eprintln!("wrote {path}");
    }
}
