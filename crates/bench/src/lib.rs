#![warn(missing_docs)]

//! # kylix-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation (§VII), each exposing a function that *runs* the
//! experiment (on the virtual-time simulator and/or the analytic
//! models) and returns structured rows. The `figures` binary prints
//! them; the crate's tests pin the qualitative shapes the paper reports
//! (who wins, roughly by how much, what is monotone).
//!
//! ## Scaling discipline
//!
//! The paper's testbed held ~100 MB of reduced data per node; running
//! that through a simulator thousands of times is pointless when the
//! physics is scale-free. Every experiment therefore runs at a
//! configurable *scale divisor* `s`: dataset sizes shrink by `s`, and
//! all **time constants** of the NIC model (per-message overhead,
//! latency, per-message CPU) shrink by the same `s` while bandwidths
//! are unchanged — so every ratio the paper reports (packet size vs
//! minimum efficient size, overhead share vs wire share, compute vs
//! communication) is preserved exactly. [`scaling::scaled_nic`]
//! implements this; EXPERIMENTS.md documents it per experiment.

pub mod ablation;
pub mod fault_sweep;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod scaling;
pub mod straggler;
pub mod substrate;
pub mod table1;
pub mod workload;

/// Render a sequence of (label, value) pairs as an aligned text table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&header_cells));
    println!(
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}
