//! Fig. 5 — total communication volume per layer: the "Kylix" shape.
//!
//! For the Twitter-like workload on the paper's 8×4×2 network and the
//! Yahoo-like workload on 16×4, measure the volume each layer of the
//! scatter-reduce moves (including packets to self, as the paper
//! counts), plus the fully reduced bottom volume. Dense (Twitter-like)
//! data collapses fast down the layers; sparse (Yahoo-like) data
//! shrinks more slowly — the two silhouettes of the paper's Fig. 5.
//!
//! Measured volumes come from the cross-substrate telemetry of a real
//! configure + reduce run (per-layer sent bytes, wire framing
//! stripped, packets to self included via the dedicated self kinds);
//! predicted volumes from the Prop. 4.1 model. Tests pin the telemetry
//! numbers to the model *and*, byte for byte, to the routing state's
//! structural count on both the thread cluster and the simulator.

use crate::workload::VectorWorkload;
use kylix::codec::SEAL_LEN;
use kylix::{Kylix, NetworkPlan};
use kylix_net::telemetry::{Clock, Counter, Telemetry, TelemetryReport};
use kylix_net::{LocalCluster, Phase};
use kylix_sparse::SumReducer;

/// Wire framing per values message: 8-byte count header + checksum
/// seal. Subtracted per message so volumes count payload elements only,
/// exactly as the structural accounting did.
const MSG_OVERHEAD: u64 = 8 + SEAL_LEN as u64;

/// Bytes per reduced element (`f64`).
const ELEM_BYTES: u64 = 8;

/// Volume profile for one dataset/network pair.
#[derive(Debug, Clone)]
pub struct Fig5Profile {
    /// Workload name.
    pub dataset: String,
    /// Layer degrees used.
    pub degrees: Vec<usize>,
    /// Measured total volume per communication layer, bytes (full-scale
    /// equivalent: multiply by the workload scale to compare with the
    /// paper's axes).
    pub measured_bytes: Vec<u64>,
    /// The reduced bottom-layer volume (the paper's extra last bar).
    pub bottom_bytes: u64,
    /// Model-predicted volume per layer, bytes.
    pub predicted_bytes: Vec<f64>,
    /// Model-predicted bottom volume.
    pub predicted_bottom: f64,
    /// Full telemetry export (JSON) of the measuring run — the CI
    /// artifact behind the measured numbers.
    pub telemetry_json: String,
}

/// Distil per-layer down-pass element bytes from a telemetry snapshot:
/// sent bytes plus self-addressed bytes at the down phase, minus the
/// per-message wire framing. Works identically on either substrate.
pub fn down_volume_from_telemetry(rep: &TelemetryReport, layers: usize) -> Vec<u64> {
    let down = Phase::ReduceDown as u8;
    (0..layers)
        .map(|l| {
            let l = l as u16;
            let bytes = rep.on(down, l, Counter::BytesSent) + rep.on(down, l, Counter::SelfBytes);
            let msgs = rep.on(down, l, Counter::MsgsSent) + rep.on(down, l, Counter::SelfMsgs);
            bytes - MSG_OVERHEAD * msgs
        })
        .collect()
}

/// Measure one dataset's per-layer volumes on its paper topology by
/// actually running a reduce over a telemetry-attached thread cluster
/// and reading the sent-byte counters back.
pub fn profile(workload: &VectorWorkload, degrees: &[usize]) -> Fig5Profile {
    let m = workload.node_indices.len();
    let plan = NetworkPlan::new(degrees);
    assert_eq!(plan.size(), m);
    let tel = Telemetry::new(m, Clock::Wall);
    let bottoms: Vec<usize> = LocalCluster::run_with_telemetry(m, &tel, |mut comm| {
        let me = kylix_net::Comm::rank(&comm);
        let kylix = Kylix::new(plan.clone());
        let mut state = kylix
            .configure(
                &mut comm,
                &workload.node_indices[me],
                &workload.node_indices[me],
                0,
            )
            .unwrap();
        let ones = vec![1.0f64; workload.node_indices[me].len()];
        state.reduce(&mut comm, &ones, SumReducer).unwrap();
        state.bottom_elems()
    });

    let layers = plan.layers();
    let rep = tel.report();
    let measured = down_volume_from_telemetry(&rep, layers);
    let bottom: u64 = bottoms.iter().map(|&b| b as u64 * ELEM_BYTES).sum();

    let preds = workload
        .model
        .layer_predictions(workload.lambda0, plan.degrees());
    let predicted: Vec<f64> = preds[..layers]
        .iter()
        .map(|p| p.elems_per_node * m as f64 * ELEM_BYTES as f64)
        .collect();
    let predicted_bottom = preds[layers].elems_per_node * m as f64 * ELEM_BYTES as f64;

    Fig5Profile {
        dataset: workload.name.clone(),
        degrees: degrees.to_vec(),
        measured_bytes: measured,
        bottom_bytes: bottom,
        predicted_bytes: predicted,
        predicted_bottom,
        telemetry_json: tel.to_json(),
    }
}

/// Run both paper datasets at the given scale divisor.
pub fn run(scale: u64, seed: u64) -> Vec<Fig5Profile> {
    let twitter = VectorWorkload::twitter_like(64, scale, seed);
    let yahoo = VectorWorkload::yahoo_like(64, scale, seed + 1);
    vec![profile(&twitter, &[8, 4, 2]), profile(&yahoo, &[16, 4])]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scaling::scaled_nic;
    use kylix_netsim::SimCluster;

    /// The telemetry-derived volumes must equal the routing state's
    /// structural count byte for byte — and the simulator, running the
    /// same workload, must report exactly the same numbers through the
    /// same telemetry export. This is the Fig. 5 cross-substrate
    /// acceptance check.
    #[test]
    fn telemetry_volumes_match_routing_state_exactly() {
        let w = VectorWorkload::twitter_like(64, 4000, 5);
        let degrees = [8usize, 4, 2];
        let plan = NetworkPlan::new(&degrees);

        // Structural ground truth straight from the configured routing
        // tables (what this experiment measured before telemetry).
        let per_node: Vec<Vec<usize>> = LocalCluster::run(64, |mut comm| {
            let me = kylix_net::Comm::rank(&comm);
            let kylix = Kylix::new(plan.clone());
            let state = kylix
                .configure(&mut comm, &w.node_indices[me], &w.node_indices[me], 0)
                .unwrap();
            state.down_volume_elems()
        });
        let mut structural = vec![0u64; plan.layers()];
        for vols in &per_node {
            for (l, v) in vols.iter().enumerate() {
                structural[l] += *v as u64 * ELEM_BYTES;
            }
        }

        let thread = profile(&w, &degrees);
        assert_eq!(thread.measured_bytes, structural);
        assert!(!thread.telemetry_json.is_empty());

        // Same workload on the simulator: identical counters.
        let cluster = SimCluster::new(64, scaled_nic(4000.0)).seed(5);
        cluster.run_all(|mut comm| {
            let me = kylix_net::Comm::rank(&comm);
            let kylix = Kylix::new(plan.clone());
            let mut state = kylix
                .configure(&mut comm, &w.node_indices[me], &w.node_indices[me], 0)
                .unwrap();
            let ones = vec![1.0f64; w.node_indices[me].len()];
            state.reduce(&mut comm, &ones, SumReducer).unwrap();
        });
        let sim = down_volume_from_telemetry(&cluster.telemetry().report(), plan.layers());
        assert_eq!(
            sim, structural,
            "simulator telemetry must agree byte-for-byte"
        );
    }

    #[test]
    fn kylix_shape_volume_decreases_down_layers() {
        for p in run(4000, 3) {
            let mut seq: Vec<f64> = p.measured_bytes.iter().map(|&b| b as f64).collect();
            seq.push(p.bottom_bytes as f64);
            for w in seq.windows(2) {
                assert!(
                    w[1] < w[0],
                    "{}: volumes must shrink down the network: {seq:?}",
                    p.dataset
                );
            }
        }
    }

    #[test]
    fn measured_matches_prop41_prediction() {
        for p in run(4000, 7) {
            for (l, (&m, &pr)) in p.measured_bytes.iter().zip(&p.predicted_bytes).enumerate() {
                let rel = (m as f64 - pr).abs() / pr;
                assert!(
                    rel < 0.15,
                    "{} layer {l}: measured {m} vs predicted {pr} (rel {rel:.3})",
                    p.dataset
                );
            }
            let relb = (p.bottom_bytes as f64 - p.predicted_bottom).abs() / p.predicted_bottom;
            assert!(relb < 0.15, "{} bottom: rel {relb:.3}", p.dataset);
        }
    }

    #[test]
    fn twitter_collapses_faster_than_yahoo() {
        // Paper: "The Twitter graph shrinks very fast at lower layers …
        // for the Yahoo graph the volume shrinking is less significant."
        let profiles = run(4000, 11);
        let shrink =
            |p: &Fig5Profile| -> f64 { p.bottom_bytes as f64 / p.measured_bytes[0] as f64 };
        let twitter = shrink(&profiles[0]);
        let yahoo = shrink(&profiles[1]);
        assert!(
            twitter < yahoo,
            "twitter bottom/top {twitter:.3} should shrink below yahoo {yahoo:.3}"
        );
    }
}
