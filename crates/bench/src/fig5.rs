//! Fig. 5 — total communication volume per layer: the "Kylix" shape.
//!
//! For the Twitter-like workload on the paper's 8×4×2 network and the
//! Yahoo-like workload on 16×4, measure the volume each layer of the
//! scatter-reduce moves (including packets to self, as the paper
//! counts), plus the fully reduced bottom volume. Dense (Twitter-like)
//! data collapses fast down the layers; sparse (Yahoo-like) data
//! shrinks more slowly — the two silhouettes of the paper's Fig. 5.
//!
//! Measured volumes come from the configured routing state of a real
//! run; predicted volumes from the Prop. 4.1 model. The test pins them
//! to each other.

use crate::workload::VectorWorkload;
use kylix::{Kylix, NetworkPlan};
use kylix_net::LocalCluster;

/// Volume profile for one dataset/network pair.
#[derive(Debug, Clone)]
pub struct Fig5Profile {
    /// Workload name.
    pub dataset: String,
    /// Layer degrees used.
    pub degrees: Vec<usize>,
    /// Measured total volume per communication layer, bytes (full-scale
    /// equivalent: multiply by the workload scale to compare with the
    /// paper's axes).
    pub measured_bytes: Vec<u64>,
    /// The reduced bottom-layer volume (the paper's extra last bar).
    pub bottom_bytes: u64,
    /// Model-predicted volume per layer, bytes.
    pub predicted_bytes: Vec<f64>,
    /// Model-predicted bottom volume.
    pub predicted_bottom: f64,
}

/// Measure one dataset's per-layer volumes on its paper topology.
pub fn profile(workload: &VectorWorkload, degrees: &[usize]) -> Fig5Profile {
    let m = workload.node_indices.len();
    let plan = NetworkPlan::new(degrees);
    assert_eq!(plan.size(), m);
    let per_node: Vec<(Vec<usize>, usize)> = LocalCluster::run(m, |mut comm| {
        let me = kylix_net::Comm::rank(&comm);
        let kylix = Kylix::new(plan.clone());
        let state = kylix
            .configure(
                &mut comm,
                &workload.node_indices[me],
                &workload.node_indices[me],
                0,
            )
            .unwrap();
        (state.down_volume_elems(), state.bottom_elems())
    });

    let elem_bytes = 8u64;
    let layers = plan.layers();
    let mut measured = vec![0u64; layers];
    let mut bottom = 0u64;
    for (vols, be) in &per_node {
        for (l, v) in vols.iter().enumerate() {
            measured[l] += *v as u64 * elem_bytes;
        }
        bottom += *be as u64 * elem_bytes;
    }

    let preds = workload
        .model
        .layer_predictions(workload.lambda0, plan.degrees());
    let predicted: Vec<f64> = preds[..layers]
        .iter()
        .map(|p| p.elems_per_node * m as f64 * elem_bytes as f64)
        .collect();
    let predicted_bottom = preds[layers].elems_per_node * m as f64 * elem_bytes as f64;

    Fig5Profile {
        dataset: workload.name.clone(),
        degrees: degrees.to_vec(),
        measured_bytes: measured,
        bottom_bytes: bottom,
        predicted_bytes: predicted,
        predicted_bottom,
    }
}

/// Run both paper datasets at the given scale divisor.
pub fn run(scale: u64, seed: u64) -> Vec<Fig5Profile> {
    let twitter = VectorWorkload::twitter_like(64, scale, seed);
    let yahoo = VectorWorkload::yahoo_like(64, scale, seed + 1);
    vec![profile(&twitter, &[8, 4, 2]), profile(&yahoo, &[16, 4])]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kylix_shape_volume_decreases_down_layers() {
        for p in run(4000, 3) {
            let mut seq: Vec<f64> = p.measured_bytes.iter().map(|&b| b as f64).collect();
            seq.push(p.bottom_bytes as f64);
            for w in seq.windows(2) {
                assert!(
                    w[1] < w[0],
                    "{}: volumes must shrink down the network: {seq:?}",
                    p.dataset
                );
            }
        }
    }

    #[test]
    fn measured_matches_prop41_prediction() {
        for p in run(4000, 7) {
            for (l, (&m, &pr)) in p.measured_bytes.iter().zip(&p.predicted_bytes).enumerate() {
                let rel = (m as f64 - pr).abs() / pr;
                assert!(
                    rel < 0.15,
                    "{} layer {l}: measured {m} vs predicted {pr} (rel {rel:.3})",
                    p.dataset
                );
            }
            let relb = (p.bottom_bytes as f64 - p.predicted_bottom).abs() / p.predicted_bottom;
            assert!(relb < 0.15, "{} bottom: rel {relb:.3}", p.dataset);
        }
    }

    #[test]
    fn twitter_collapses_faster_than_yahoo() {
        // Paper: "The Twitter graph shrinks very fast at lower layers …
        // for the Yahoo graph the volume shrinking is less significant."
        let profiles = run(4000, 11);
        let shrink =
            |p: &Fig5Profile| -> f64 { p.bottom_bytes as f64 / p.measured_bytes[0] as f64 };
        let twitter = shrink(&profiles[0]);
        let yahoo = shrink(&profiles[1]);
        assert!(
            twitter < yahoo,
            "twitter bottom/top {twitter:.3} should shrink below yahoo {yahoo:.3}"
        );
    }
}
