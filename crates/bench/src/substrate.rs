//! Substrate cross-check: the same allreduce on every execution
//! substrate.
//!
//! Not a paper figure — an engineering experiment the paper's authors
//! ran implicitly every time they moved between their local harness and
//! the EC2 cluster: does the collective behave identically when the
//! transport changes? We run one calibrated workload through
//!
//! * the **thread** cluster (in-process channels, wall clock),
//! * the **tcp** cluster (loopback sockets, wall clock — real kernel
//!   buffering and framing on every message), and
//! * the **sim** cluster (virtual-time 10 Gb/s NIC model),
//!
//! and report, per substrate, the wall/virtual makespan, the exact
//! send-side traffic, and whether the reduction matched the sequential
//! reference. Bytes and messages are routing-table facts, so they must
//! be *identical* across substrates (the differential test suite pins
//! this; the bench row makes it visible), while the time column shows
//! what each substrate is for: sim predicts cluster time, thread
//! measures protocol CPU, tcp adds the OS network stack.

use crate::workload::VectorWorkload;
use kylix::{reference_allreduce, Kylix, NetworkPlan, NodeContribution};
use kylix_net::telemetry::{Clock, Counter, Telemetry, TelemetryReport};
use kylix_net::{Comm, LocalCluster, TcpCluster};
use kylix_netsim::{NicModel, SimCluster};
use kylix_sparse::SumReducer;
use std::str::FromStr;
use std::time::Instant;

/// One execution substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Substrate {
    /// In-process threads over channels.
    Thread,
    /// Threads over loopback TCP sockets.
    Tcp,
    /// Virtual-time NIC-model simulator.
    Sim,
}

impl Substrate {
    /// All substrates, bench order.
    pub const ALL: [Substrate; 3] = [Substrate::Thread, Substrate::Tcp, Substrate::Sim];

    /// Display name (also the `--substrate` flag value).
    pub fn name(self) -> &'static str {
        match self {
            Substrate::Thread => "thread",
            Substrate::Tcp => "tcp",
            Substrate::Sim => "sim",
        }
    }
}

impl FromStr for Substrate {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "thread" => Ok(Substrate::Thread),
            "tcp" => Ok(Substrate::Tcp),
            "sim" => Ok(Substrate::Sim),
            other => Err(format!("unknown substrate '{other}' (thread|tcp|sim)")),
        }
    }
}

/// One substrate's run of the workload.
#[derive(Debug, Clone)]
pub struct SubstrateRow {
    /// Substrate name.
    pub substrate: &'static str,
    /// Cluster size.
    pub m: usize,
    /// Butterfly degrees.
    pub degrees: Vec<usize>,
    /// Makespan: wall seconds (thread/tcp) or virtual seconds (sim).
    pub seconds: f64,
    /// Total payload bytes sent across all ranks (telemetry).
    pub bytes_sent: u64,
    /// Total messages sent across all ranks (telemetry).
    pub msgs_sent: u64,
    /// Every rank's reduction matched the sequential reference exactly.
    pub exact: bool,
}

fn totals(rep: &TelemetryReport) -> (u64, u64) {
    (rep.total(Counter::BytesSent), rep.total(Counter::MsgsSent))
}

/// Run the calibrated twitter-like workload on the selected substrates.
pub fn run(scale: u64, seed: u64, substrates: &[Substrate]) -> Vec<SubstrateRow> {
    let degrees = vec![4, 2];
    let plan = NetworkPlan::new(&degrees);
    let m = plan.size();
    let wl = VectorWorkload::twitter_like(m, scale, seed);
    let nodes: Vec<NodeContribution<f64>> = wl
        .node_indices
        .iter()
        .map(|idx| NodeContribution {
            in_indices: idx.clone(),
            out_indices: idx.clone(),
            out_values: vec![1.0; idx.len()],
        })
        .collect();
    let expected = reference_allreduce(&nodes, SumReducer);

    substrates
        .iter()
        .map(|&s| {
            let (seconds, reduced, rep) = match s {
                Substrate::Thread => {
                    let tel = Telemetry::new(m, Clock::Wall);
                    let t0 = Instant::now();
                    let reduced = LocalCluster::run_with_telemetry(m, &tel, |mut comm| {
                        collective(&mut comm, &plan, &nodes)
                    });
                    (t0.elapsed().as_secs_f64(), reduced, tel.report())
                }
                Substrate::Tcp => {
                    let tel = Telemetry::new(m, Clock::Wall);
                    let t0 = Instant::now();
                    let reduced = TcpCluster::run_with_telemetry(m, &tel, |mut comm| {
                        collective(&mut comm, &plan, &nodes)
                    });
                    (t0.elapsed().as_secs_f64(), reduced, tel.report())
                }
                Substrate::Sim => {
                    let cluster = SimCluster::new(m, NicModel::ec2_10g()).seed(seed);
                    let out = cluster.run_all(|mut comm| {
                        let v = collective(&mut comm, &plan, &nodes);
                        (v, comm.now())
                    });
                    let makespan = out.iter().map(|(_, t)| *t).fold(0.0, f64::max);
                    let reduced = out.into_iter().map(|(v, _)| v).collect();
                    (makespan, reduced, cluster.telemetry().report())
                }
            };
            let exact = reduced.iter().zip(&expected).all(|(got, want)| got == want);
            let (bytes_sent, msgs_sent) = totals(&rep);
            SubstrateRow {
                substrate: s.name(),
                m,
                degrees: degrees.clone(),
                seconds,
                bytes_sent,
                msgs_sent,
                exact,
            }
        })
        .collect()
}

/// One rank's collective, identical on every substrate.
fn collective<C: Comm>(
    comm: &mut C,
    plan: &NetworkPlan,
    nodes: &[NodeContribution<f64>],
) -> Vec<f64> {
    let me = comm.rank();
    Kylix::new(plan.clone())
        .allreduce_combined(
            comm,
            &nodes[me].in_indices,
            &nodes[me].out_indices,
            &nodes[me].out_values,
            SumReducer,
            0,
        )
        .expect("substrate bench collective")
        .0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_substrates_agree_on_traffic_and_results() {
        let rows = run(200_000, 11, &Substrate::ALL);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(
                row.exact,
                "{}: reduction diverged from reference",
                row.substrate
            );
            assert!(row.bytes_sent > 0 && row.msgs_sent > 0, "{}", row.substrate);
        }
        // Traffic is a routing-table fact: identical across substrates.
        assert_eq!(rows[0].bytes_sent, rows[1].bytes_sent);
        assert_eq!(rows[0].msgs_sent, rows[1].msgs_sent);
        assert_eq!(rows[0].bytes_sent, rows[2].bytes_sent);
        assert_eq!(rows[0].msgs_sent, rows[2].msgs_sent);
    }

    #[test]
    fn substrate_flag_parses() {
        assert_eq!("tcp".parse::<Substrate>().unwrap(), Substrate::Tcp);
        assert_eq!("thread".parse::<Substrate>().unwrap(), Substrate::Thread);
        assert_eq!("sim".parse::<Substrate>().unwrap(), Substrate::Sim);
        assert!("mpi".parse::<Substrate>().is_err());
    }
}
