//! Ablation studies on Kylix's design choices.
//!
//! The paper argues for several individually-motivated decisions; each
//! ablation here isolates one and measures its effect on the simulated
//! cluster:
//!
//! 1. **Degree ordering** — §IV observes optimal degrees *decrease*
//!    down the layers. We time `8×4×2` against its reverse `2×4×8` on
//!    the same data.
//! 2. **Packet racing** — §V.B claims replication's duplicate messages
//!    turn latency variance into a *race* won by the fastest copy. We
//!    compare racing receives against pinning every receive to replica
//!    0, under heavy jitter.
//! 3. **Replication factor** — Table I covers s ∈ {1, 2}; we sweep
//!    s ∈ {1, 2, 4} to expose the trend.
//! 4. **Sparse vs dense** — §VIII distinguishes Kylix from dense
//!    allreduce systems; we compare wire volumes against a dense ring
//!    allreduce on the same vector space.

use crate::scaling::scaled_nic;
use crate::workload::{VectorWorkload, ELEM_BYTES};
use bytes::Bytes;
use kylix::{Kylix, NetworkPlan, ReplicatedComm};
use kylix_baselines::ring::ring_volume_elems;
use kylix_net::telemetry::RankTelemetry;
use kylix_net::{Comm, CommError, Tag};
use kylix_netsim::SimCluster;
use kylix_sparse::SumReducer;
use std::time::Duration;

/// Generic labelled measurement row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Which ablation the row belongs to.
    pub study: &'static str,
    /// Variant label.
    pub variant: String,
    /// Measured quantity (seconds or bytes, per `unit`).
    pub value: f64,
    /// Unit of `value`.
    pub unit: &'static str,
}

/// Configure + one reduce on an arbitrary communicator; returns the
/// node's final virtual time.
fn run_once<C: Comm>(mut comm: C, workload: &VectorWorkload, plan: &NetworkPlan) -> f64 {
    let idx = &workload.node_indices[comm.rank()];
    let kylix = Kylix::new(plan.clone());
    let mut state = kylix.configure(&mut comm, idx, idx, 0).unwrap();
    let vals = vec![1.0f64; idx.len()];
    state.reduce(&mut comm, &vals, SumReducer).unwrap();
    comm.now()
}

/// Time one configure+reduce makespan of a workload over a plan with
/// optional replication, on the scaled collective NIC.
fn makespan(
    workload: &VectorWorkload,
    plan: &NetworkPlan,
    replication: usize,
    race: bool,
    jitter: f64,
    seed: u64,
) -> f64 {
    let logical = plan.size();
    let physical = logical * replication;
    let nic = scaled_nic(workload.scale as f64).with_jitter(jitter);
    let cluster = SimCluster::new(physical, nic).seed(seed);
    let spans: Vec<f64> = cluster.run_all(|comm| {
        if replication == 1 {
            run_once(comm, workload, plan)
        } else if race {
            run_once(ReplicatedComm::new(comm, replication), workload, plan)
        } else {
            run_once(PinnedReplicaComm::new(comm, replication), workload, plan)
        }
    });
    spans.into_iter().fold(0.0, f64::max) * workload.scale as f64
}

/// Like [`ReplicatedComm`] but with racing disabled: every receive is
/// pinned to replica 0 of the sender — the §V.B ablation baseline.
struct PinnedReplicaComm<C: Comm> {
    inner: C,
    logical_size: usize,
    replication: usize,
}

impl<C: Comm> PinnedReplicaComm<C> {
    fn new(inner: C, replication: usize) -> Self {
        assert_eq!(inner.size() % replication, 0);
        let logical_size = inner.size() / replication;
        Self {
            inner,
            logical_size,
            replication,
        }
    }
}

impl<C: Comm> Comm for PinnedReplicaComm<C> {
    fn rank(&self) -> usize {
        self.inner.rank() % self.logical_size
    }
    fn size(&self) -> usize {
        self.logical_size
    }
    fn send(&mut self, to: usize, tag: Tag, payload: Bytes) {
        for r in 0..self.replication {
            self.inner
                .send(to + r * self.logical_size, tag, payload.clone());
        }
    }
    fn recv_timeout(
        &mut self,
        from: usize,
        tag: Tag,
        timeout: Duration,
    ) -> Result<Bytes, CommError> {
        // No race: always wait for the primary copy, then cancel the
        // other replicas' duplicates so the stash stays bounded.
        let payload = self.inner.recv_timeout(from, tag, timeout)?;
        let siblings: Vec<usize> = (1..self.replication)
            .map(|r| from + r * self.logical_size)
            .collect();
        self.inner.discard(&siblings, tag);
        Ok(payload)
    }
    fn recv_any_timeout(
        &mut self,
        sources: &[usize],
        tag: Tag,
        timeout: Duration,
    ) -> Result<(usize, Bytes), CommError> {
        let (src, p) = self.inner.recv_any_timeout(sources, tag, timeout)?;
        let logical = src % self.logical_size;
        let siblings: Vec<usize> = (0..self.replication)
            .map(|r| logical + r * self.logical_size)
            .filter(|&r| r != src)
            .collect();
        self.inner.discard(&siblings, tag);
        Ok((logical, p))
    }
    fn discard(&mut self, sources: &[usize], tag: Tag) {
        let (rep, logical) = (self.replication, self.logical_size);
        let physical: Vec<usize> = sources
            .iter()
            .flat_map(|&s| (0..rep).map(move |r| s + r * logical))
            .collect();
        self.inner.discard(&physical, tag);
    }
    fn now(&self) -> f64 {
        self.inner.now()
    }
    fn charge_compute(&mut self, seconds: f64) {
        self.inner.charge_compute(seconds);
    }
    fn note_traffic(&mut self, layer: u16, bytes: usize) {
        self.inner.note_traffic(layer, bytes);
    }
    fn telemetry(&self) -> Option<&RankTelemetry> {
        self.inner.telemetry()
    }
}

/// Ablation 1: degree ordering.
pub fn degree_order(scale: u64, seed: u64) -> Vec<AblationRow> {
    let w = VectorWorkload::twitter_like(64, scale, seed);
    [
        ("8x4x2 (decreasing)", vec![8usize, 4, 2]),
        ("2x4x8 (increasing)", vec![2, 4, 8]),
        ("4x4x4 (uniform)", vec![4, 4, 4]),
    ]
    .into_iter()
    .map(|(label, degrees)| AblationRow {
        study: "degree-order",
        variant: label.to_string(),
        value: makespan(&w, &NetworkPlan::new(&degrees), 1, true, 0.3, seed),
        unit: "s",
    })
    .collect()
}

/// Ablation 2: packet racing under heavy latency jitter.
pub fn packet_racing(scale: u64, seed: u64) -> Vec<AblationRow> {
    let w = VectorWorkload::twitter_like(32, scale, seed);
    let plan = NetworkPlan::new(&[8, 4]);
    let jitter = 2.0;
    vec![
        AblationRow {
            study: "packet-racing",
            variant: "replicated, racing".into(),
            value: makespan(&w, &plan, 2, true, jitter, seed),
            unit: "s",
        },
        AblationRow {
            study: "packet-racing",
            variant: "replicated, pinned to replica 0".into(),
            value: makespan(&w, &plan, 2, false, jitter, seed),
            unit: "s",
        },
        AblationRow {
            study: "packet-racing",
            variant: "unreplicated".into(),
            value: makespan(&w, &plan, 1, true, jitter, seed),
            unit: "s",
        },
    ]
}

/// Ablation 3: replication factor sweep.
pub fn replication_factor(scale: u64, seed: u64) -> Vec<AblationRow> {
    let w = VectorWorkload::twitter_like(16, scale, seed);
    let plan = NetworkPlan::new(&[4, 4]);
    [1usize, 2, 4]
        .into_iter()
        .map(|s| AblationRow {
            study: "replication-factor",
            variant: format!("s = {s}"),
            value: makespan(&w, &plan, s, true, 0.3, seed),
            unit: "s",
        })
        .collect()
}

/// Ablation 4: sparse allreduce wire volume vs a dense ring allreduce
/// over the same vector space.
pub fn sparse_vs_dense(scale: u64, seed: u64) -> Vec<AblationRow> {
    let w = VectorWorkload::twitter_like(64, scale, seed);
    let m = 64;
    // Sparse: measured per-node down+up volume on the paper plan.
    let plan = NetworkPlan::new(&[8, 4, 2]);
    let per_node: Vec<usize> = kylix_net::LocalCluster::run(m, |mut comm| {
        let me = comm.rank();
        let kylix = Kylix::new(plan.clone());
        let state = kylix
            .configure(&mut comm, &w.node_indices[me], &w.node_indices[me], 0)
            .unwrap();
        state.down_volume_elems().iter().sum::<usize>() * 2 // down + up
    });
    let sparse_bytes = per_node.iter().sum::<usize>() as f64 / m as f64 * ELEM_BYTES as f64;
    let dense_bytes = ring_volume_elems(w.model.n as usize, m) as f64 * ELEM_BYTES as f64;
    vec![
        AblationRow {
            study: "sparse-vs-dense",
            variant: "kylix 8x4x2 (sparse)".into(),
            value: sparse_bytes * scale as f64,
            unit: "bytes/node (full scale)",
        },
        AblationRow {
            study: "sparse-vs-dense",
            variant: "ring allreduce (dense)".into(),
            value: dense_bytes * scale as f64,
            unit: "bytes/node (full scale)",
        },
    ]
}

/// Time one configure+reduce makespan with designated stragglers.
fn makespan_with_stragglers(
    workload: &VectorWorkload,
    plan: &NetworkPlan,
    replication: usize,
    stragglers: &[(usize, f64)],
    seed: u64,
) -> f64 {
    let physical = plan.size() * replication;
    let nic = scaled_nic(workload.scale as f64);
    let cluster = SimCluster::new(physical, nic)
        .seed(seed)
        .stragglers(stragglers);
    let spans: Vec<f64> = cluster.run_all(|comm| {
        if replication == 1 {
            run_once(comm, workload, plan)
        } else {
            run_once(ReplicatedComm::new(comm, replication), workload, plan)
        }
    });
    spans.into_iter().fold(0.0, f64::max) * workload.scale as f64
}

/// Ablation 5: straggler sensitivity (paper §II's "variable compute
/// node performance"). One node runs 4× slow; the direct topology's 63
/// serialised messages amplify it far more than the butterfly's 11,
/// and replication + racing absorbs it entirely when the straggler's
/// replica is healthy.
pub fn straggler_sensitivity(scale: u64, seed: u64) -> Vec<AblationRow> {
    let w64 = VectorWorkload::twitter_like(64, scale, seed);
    let slow = [(0usize, 4.0)];
    let mut rows = Vec::new();
    for (label, plan) in [
        ("direct (64)", NetworkPlan::direct(64)),
        ("8x4x2", NetworkPlan::new(&[8, 4, 2])),
    ] {
        let base = makespan_with_stragglers(&w64, &plan, 1, &[], seed);
        let hit = makespan_with_stragglers(&w64, &plan, 1, &slow, seed);
        rows.push(AblationRow {
            study: "straggler",
            variant: format!("{label}, 4x straggler slowdown factor"),
            value: hit / base,
            unit: "x",
        });
    }
    // Replicated: the straggler is one replica of logical 0; racing
    // should hide most of it.
    let w32 = VectorWorkload::twitter_like(32, scale, seed);
    let plan = NetworkPlan::new(&[8, 4]);
    let base = makespan_with_stragglers(&w32, &plan, 2, &[], seed);
    let hit = makespan_with_stragglers(&w32, &plan, 2, &slow, seed);
    rows.push(AblationRow {
        study: "straggler",
        variant: "8x4 rep=2, straggler on one replica".into(),
        value: hit / base,
        unit: "x",
    });
    rows
}

/// All ablations.
pub fn run(scale: u64, seed: u64) -> Vec<AblationRow> {
    let mut rows = degree_order(scale, seed);
    rows.extend(packet_racing(scale, seed + 1));
    rows.extend(replication_factor(scale, seed + 2));
    rows.extend(sparse_vs_dense(scale, seed + 3));
    rows.extend(straggler_sensitivity(scale, seed + 4));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decreasing_degrees_win() {
        let rows = degree_order(4000, 3);
        let by = |v: &str| {
            rows.iter()
                .find(|r| r.variant.starts_with(v))
                .unwrap()
                .value
        };
        assert!(
            by("8x4x2") < by("2x4x8"),
            "decreasing {} vs increasing {}",
            by("8x4x2"),
            by("2x4x8")
        );
    }

    #[test]
    fn racing_beats_pinned_under_jitter() {
        let rows = packet_racing(4000, 5);
        let racing = rows[0].value;
        let pinned = rows[1].value;
        assert!(
            racing <= pinned,
            "racing {racing} should not lose to pinned {pinned}"
        );
    }

    #[test]
    fn replication_cost_grows_with_factor() {
        let rows = replication_factor(4000, 7);
        assert!(rows[0].value < rows[1].value, "{rows:?}");
        assert!(rows[1].value < rows[2].value, "{rows:?}");
        // …but stays well under linear: racing and parallelism absorb
        // part of the duplicated traffic.
        assert!(rows[2].value < rows[0].value * 4.0, "{rows:?}");
    }

    #[test]
    fn stragglers_hurt_direct_more_and_replication_absorbs() {
        let rows = straggler_sensitivity(4000, 11);
        let direct_factor = rows[0].value;
        let butterfly_factor = rows[1].value;
        let replicated_factor = rows[2].value;
        assert!(
            direct_factor > butterfly_factor,
            "direct {direct_factor:.2}x should exceed butterfly {butterfly_factor:.2}x"
        );
        assert!(
            replicated_factor < butterfly_factor,
            "racing should absorb the straggler: {replicated_factor:.2}x vs {butterfly_factor:.2}x"
        );
    }

    #[test]
    fn sparse_moves_far_less_than_dense() {
        let rows = sparse_vs_dense(4000, 9);
        let sparse = rows[0].value;
        let dense = rows[1].value;
        assert!(
            dense > 2.0 * sparse,
            "dense {dense} should dwarf sparse {sparse}"
        );
    }
}
