//! Fig. 2 — network throughput vs packet size.
//!
//! The paper measures, on its EC2 testbed, rising throughput with
//! packet size that saturates near peak around 5 MB; 0.4 MB packets
//! achieve ≈30 % of peak. We regenerate the curve by streaming packets
//! between two simulated nodes (the measured series) next to the
//! closed-form model curve.

use kylix_netsim::throughput::{fig2_packet_sizes, measure_throughput, ThroughputPoint};
use kylix_netsim::NicModel;

/// One row of the Fig. 2 table.
#[derive(Debug, Clone, Copy)]
pub struct Fig2Row {
    /// Packet size in bytes.
    pub packet_bytes: usize,
    /// Simulator-measured throughput, Gb/s.
    pub measured_gbps: f64,
    /// Closed-form model throughput, Gb/s.
    pub model_gbps: f64,
    /// Measured fraction of peak bandwidth.
    pub utilisation: f64,
}

/// Run the Fig. 2 sweep on the paper-calibrated (full-scale) NIC.
pub fn run() -> Vec<Fig2Row> {
    let nic = NicModel::ec2_10g_nojitter();
    fig2_packet_sizes()
        .into_iter()
        .map(|p| {
            let ThroughputPoint {
                throughput,
                utilisation,
                ..
            } = measure_throughput(nic, p, 64);
            Fig2Row {
                packet_bytes: p,
                measured_gbps: throughput * 8.0 / 1e9,
                model_gbps: nic.effective_throughput(p) * 8.0 / 1e9,
                utilisation,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_matches_paper_shape() {
        let rows = run();
        // Monotone rising.
        for w in rows.windows(2) {
            assert!(w[1].measured_gbps >= w[0].measured_gbps * 0.99);
        }
        // ~30% at 0.4MB (closest sampled size 512KB ≈ upper 30s%),
        // saturation ≥ 90% at the top.
        let at512k = rows.iter().find(|r| r.packet_bytes == 512 * 1024).unwrap();
        assert!(
            (0.25..0.45).contains(&at512k.utilisation),
            "512KB: {}",
            at512k.utilisation
        );
        assert!(rows.last().unwrap().utilisation > 0.9);
        // Measured tracks the model within a few percent.
        for r in &rows {
            let rel = (r.measured_gbps - r.model_gbps).abs() / r.model_gbps;
            assert!(rel < 0.1, "{}B: {rel}", r.packet_bytes);
        }
    }

    #[test]
    fn min_efficient_packet_is_about_5mb() {
        let nic = NicModel::ec2_10g();
        let p = nic.min_efficient_packet(0.8);
        assert!(
            (2.5e6..7.5e6).contains(&p),
            "80% point at {p} bytes, paper says ≈5MB"
        );
    }
}
