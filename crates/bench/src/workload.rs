//! Synthetic vector workloads calibrated to the paper's evaluation.
//!
//! A [`VectorWorkload`] is the per-node sparse index sets of a
//! distributed vector (each node's `in`/`out` sets for an allreduce),
//! drawn from the Prop. 4.1 Poisson power-law model and **calibrated to
//! the paper's operating point**:
//!
//! * density of the `m`-way partitioned data matches the paper's
//!   measurement (0.21 Twitter, 0.035 Yahoo at 64 nodes);
//! * the per-node data *volume* matches the packet-size regime the
//!   paper reports — §VII.A states the direct topology sends 0.4 MB
//!   packets for the Twitter graph on 64 nodes, i.e. per-node volume
//!   64 × 0.4 MB = 25.6 MB; we size the vector length accordingly (and
//!   use 64 MB for the Yahoo-like workload, keeping its direct packets
//!   ≈1 MB, still below the ≈5 MB efficient floor). Volumes and all NIC
//!   time constants are then divided by the scale divisor together
//!   (see [`crate::scaling`]), which preserves every ratio.

use kylix_powerlaw::{DensityModel, PartitionGenerator};

/// Bytes per vector element on the wire (f64 values).
pub const ELEM_BYTES: usize = 8;

/// Per-node sparse index sets for one dataset at one cluster size.
#[derive(Debug, Clone)]
pub struct VectorWorkload {
    /// Dataset label.
    pub name: String,
    /// Density model (scaled n, calibrated α).
    pub model: DensityModel,
    /// Top-layer scaling factor.
    pub lambda0: f64,
    /// Scale divisor this workload was generated at.
    pub scale: u64,
    /// Per-node sorted index lists.
    pub node_indices: Vec<Vec<u64>>,
}

impl VectorWorkload {
    /// Build a workload from (α, partition density at 64 nodes,
    /// full-scale per-node volume in bytes at 64 nodes). For other
    /// cluster sizes the same *total* dataset is partitioned `m` ways:
    /// the per-node Poisson rate scales by `64/m`, so smaller clusters
    /// see denser, larger partitions — exactly as on the paper's
    /// testbed (Fig. 9, Table I).
    pub fn calibrated(
        name: &str,
        alpha: f64,
        density_at_64: f64,
        full_volume_bytes_at_64: f64,
        m: usize,
        scale: u64,
        seed: u64,
    ) -> Self {
        let volume = full_volume_bytes_at_64 / scale as f64;
        let n = (volume / (density_at_64 * ELEM_BYTES as f64)).round() as u64;
        let model = DensityModel::new(n.max(64), alpha);
        let lambda0_64 = model.lambda_for_density(density_at_64);
        let lambda0 = lambda0_64 * 64.0 / m as f64;
        let gen = PartitionGenerator::new(model, lambda0, seed);
        let node_indices = (0..m).map(|i| gen.indices(i)).collect();
        Self {
            name: name.to_string(),
            model,
            lambda0,
            scale,
            node_indices,
        }
    }

    /// Twitter-followers-like: α ≈ 1.1, 64-way density 0.21, 25.6 MB
    /// per node at full scale (direct packets 0.4 MB, §VII.A).
    pub fn twitter_like(m: usize, scale: u64, seed: u64) -> Self {
        Self::calibrated("twitter-like", 1.1, 0.21, 25.6e6, m, scale, seed)
    }

    /// Yahoo-web-like: α ≈ 1.3, 64-way density 0.035, 64 MB per node at
    /// full scale (direct packets ≈1 MB).
    pub fn yahoo_like(m: usize, scale: u64, seed: u64) -> Self {
        Self::calibrated("yahoo-like", 1.3, 0.035, 64.0e6, m, scale, seed)
    }

    /// Mean measured per-node density.
    pub fn mean_density(&self) -> f64 {
        let total: usize = self.node_indices.iter().map(|v| v.len()).sum();
        total as f64 / (self.node_indices.len() as f64 * self.model.n as f64)
    }

    /// Mean per-node volume in (scaled) bytes.
    pub fn mean_volume_bytes(&self) -> f64 {
        let total: usize = self.node_indices.iter().map(|v| v.len()).sum();
        total as f64 * ELEM_BYTES as f64 / self.node_indices.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twitter_workload_hits_density_and_volume_at_64() {
        let w = VectorWorkload::twitter_like(64, 4000, 1);
        assert!(
            (w.mean_density() - 0.21).abs() < 0.02,
            "{}",
            w.mean_density()
        );
        let want = 25.6e6 / 4000.0;
        let got = w.mean_volume_bytes();
        assert!((got - want).abs() / want < 0.1, "volume {got} vs {want}");
    }

    #[test]
    fn smaller_clusters_get_denser_partitions() {
        // Same total dataset split fewer ways: per-node density rises.
        let w8 = VectorWorkload::twitter_like(8, 2000, 1);
        let w64 = VectorWorkload::twitter_like(64, 2000, 1);
        assert!(
            w8.mean_density() > 2.0 * w64.mean_density(),
            "8-way {} vs 64-way {}",
            w8.mean_density(),
            w64.mean_density()
        );
    }

    #[test]
    fn yahoo_workload_is_sparser_but_bigger() {
        let t = VectorWorkload::twitter_like(4, 2000, 2);
        let y = VectorWorkload::yahoo_like(4, 2000, 3);
        assert!(y.mean_density() < t.mean_density());
        assert!(y.mean_volume_bytes() > t.mean_volume_bytes());
    }

    #[test]
    fn nodes_differ_but_overlap() {
        let w = VectorWorkload::twitter_like(4, 4000, 4);
        assert_ne!(w.node_indices[0], w.node_indices[1]);
        let a: std::collections::HashSet<&u64> = w.node_indices[0].iter().collect();
        let overlap = w.node_indices[1].iter().filter(|i| a.contains(i)).count();
        assert!(overlap > 0);
    }
}
