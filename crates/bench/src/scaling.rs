//! Scale-preserving calibration of the NIC model.
//!
//! The simulator's EC2 preset is calibrated at full scale (paper
//! constants). When a dataset is scaled down by `s`, per-node data
//! volume shrinks by `s`; to keep every *ratio* the paper's results
//! depend on — packet size relative to the minimum efficient packet,
//! overhead share relative to wire time, latency share, CPU share —
//! all the NIC's **time** constants are divided by the same `s` while
//! bandwidth (a rate, not a time) is untouched. Multiplying any
//! resulting virtual time by `s` recovers the full-scale estimate.

use kylix_netsim::NicModel;

/// The paper's EC2 NIC as seen by a collective (see
/// `NicModel::ec2_10g_collective`), with its time constants divided by
/// `scale`.
pub fn scaled_nic(scale: f64) -> NicModel {
    assert!(scale >= 1.0);
    let full = NicModel::ec2_10g_collective();
    NicModel {
        overhead: full.overhead / scale,
        bandwidth: full.bandwidth,
        latency: full.latency / scale,
        jitter_sigma: full.jitter_sigma, // multiplicative: scale-free
        cpu_per_msg: full.cpu_per_msg / scale,
        cpu_per_byte: full.cpu_per_byte, // per byte: already scale-free
        workers: full.workers,
    }
}

/// The minimum efficient packet size (80 % of peak) at this scale —
/// the §IV design-workflow input. Uses the *microbenchmark* NIC curve
/// (Fig. 2), exactly as the paper's workflow reads its threshold off
/// the measured chart.
pub fn scaled_min_packet(scale: f64) -> f64 {
    let full = NicModel::ec2_10g();
    full.min_efficient_packet(0.8) / scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn utilisation_ratio_is_preserved() {
        // A packet scaled down by s on the scaled NIC has the same
        // utilisation as the full packet on the full NIC.
        let full = NicModel::ec2_10g_collective();
        let s = 1000.0;
        let scaled = scaled_nic(s);
        for bytes in [400_000usize, 5_000_000, 50_000_000] {
            let u_full = full.utilisation(bytes);
            let u_scaled = scaled.utilisation((bytes as f64 / s) as usize);
            assert!(
                (u_full - u_scaled).abs() < 0.01,
                "{bytes}: {u_full} vs {u_scaled}"
            );
        }
    }

    #[test]
    fn min_packet_scales_linearly() {
        let p1 = scaled_min_packet(1.0);
        let p1000 = scaled_min_packet(1000.0);
        assert!((p1 / p1000 - 1000.0).abs() < 1.0);
    }

    #[test]
    fn times_scale_linearly() {
        let full = NicModel::ec2_10g_collective();
        let scaled = scaled_nic(100.0);
        let t_full = full.xfer_time(1_000_000);
        let t_scaled = scaled.xfer_time(10_000);
        assert!((t_full / t_scaled - 100.0).abs() < 0.1);
    }
}
