//! Fig. 7 — effect of multi-threading on allreduce runtime.
//!
//! The paper (§VI.B, Fig. 7) spawns a thread per message and observes
//! big gains from 1 → 4 threads and marginal benefit beyond 16 (the
//! cc2.8xlarge has 16 hardware threads). In the simulator, receive-side
//! processing (deserialise + merge) occupies a per-node worker pool;
//! sweeping the pool size reproduces the curve: processing serialises
//! behind one worker and overlaps across many.

use crate::workload::VectorWorkload;
use kylix::NetworkPlan;

/// One point of the thread sweep.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Worker (thread) count per node.
    pub threads: usize,
    /// Allreduce (config + reduce) runtime, full-scale seconds.
    pub runtime: f64,
}

/// Thread levels the paper sweeps.
pub const THREAD_LEVELS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// Run the sweep on the Twitter-like workload over 8×4×2.
pub fn run(scale: u64, seed: u64) -> Vec<Fig7Row> {
    let plan = NetworkPlan::new(&[8, 4, 2]);
    THREAD_LEVELS
        .iter()
        .map(|&threads| {
            // Regenerate the workload per level with the same seed so
            // only the worker count varies.
            let mut w = VectorWorkload::twitter_like(64, scale, seed);
            w.name = format!("twitter-like-t{threads}");
            let (config, reduce) = time_topology_with_workers(&w, &plan, seed, threads);
            Fig7Row {
                threads,
                runtime: config + reduce,
            }
        })
        .collect()
}

/// `fig6::time_topology` with an overridden worker count.
fn time_topology_with_workers(
    workload: &VectorWorkload,
    plan: &NetworkPlan,
    seed: u64,
    workers: usize,
) -> (f64, f64) {
    use crate::scaling::scaled_nic;
    use kylix::Kylix;
    use kylix_net::Comm;
    use kylix_netsim::SimCluster;
    use kylix_sparse::SumReducer;

    let m = workload.node_indices.len();
    let nic = scaled_nic(workload.scale as f64).with_workers(workers);
    let cluster = SimCluster::new(m, nic).seed(seed);
    let per_node: Vec<(f64, f64)> = cluster.run_all(|mut comm| {
        let me = comm.rank();
        let idx = &workload.node_indices[me];
        let kylix = Kylix::new(plan.clone());
        let mut state = kylix.configure(&mut comm, idx, idx, 0).unwrap();
        let t_cfg = comm.now();
        let vals = vec![1.0f64; idx.len()];
        state.reduce(&mut comm, &vals, SumReducer).unwrap();
        (t_cfg, comm.now())
    });
    let config_end = per_node.iter().map(|p| p.0).fold(0.0, f64::max);
    let reduce_end = per_node.iter().map(|p| p.1).fold(0.0, f64::max);
    let s = workload.scale as f64;
    (config_end * s, (reduce_end - config_end) * s)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_threads_help_then_flatten() {
        let rows = run(4000, 3);
        // Monotone non-increasing runtime (a worker can only help).
        for w in rows.windows(2) {
            assert!(
                w[1].runtime <= w[0].runtime * 1.02,
                "threads {} -> {}: {} -> {}",
                w[0].threads,
                w[1].threads,
                w[0].runtime,
                w[1].runtime
            );
        }
        // Paper shape: 1 -> 4 threads is a significant gain…
        let t1 = rows[0].runtime;
        let t4 = rows[2].runtime;
        assert!(t4 < t1 * 0.85, "1→4 threads: {t1} -> {t4}");
        // …and beyond 16 the benefit is marginal.
        let t16 = rows[4].runtime;
        let t32 = rows[5].runtime;
        assert!(
            t32 > t16 * 0.97,
            "16→32 threads should be marginal: {t16} -> {t32}"
        );
    }
}
