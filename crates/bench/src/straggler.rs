//! Straggler sweep: fixed-order vs arrival-order receives under skew.
//!
//! The paper's §VI.B credits *opportunistic* message processing for
//! Kylix's throughput on commodity clusters: a node works on whatever
//! slice arrives next instead of blocking on one predetermined peer.
//! This experiment measures exactly that effect. One node of a
//! 16-node cluster is made a straggler (its sends and its message
//! processing slowed by a factor), every node's receive-side worker
//! pool is pinned to a single worker so processing cannot hide behind
//! parallelism, and the same reduction workload is timed twice:
//!
//! * [`RecvOrder::Fixed`] — receives block peer by peer in group
//!   order. The straggler sits at rank 0, *first* in every group it
//!   joins, so its late slices head-of-line-block everyone else's.
//! * [`RecvOrder::Arrival`] — receives race the whole group
//!   (`recv_any`); fast peers' slices are processed while the
//!   straggler's are still in flight.
//!
//! The makespan is taken over the **non-straggling** nodes: the slow
//! node is slow by construction and no receive schedule can fix that;
//! the question §VI.B answers is whether one slow node drags the rest
//! of the cluster down with it. The speedup therefore *peaks* at
//! moderate skew — once the straggler's arrival delay dwarfs the
//! backlog of unprocessed fast slices, both schedules converge on
//! "wait for the straggler", and the ratio decays back toward 1.
//!
//! Deterministic combining stays **on** (the default for `f64`), so
//! the measured win is available without giving up bit-identical
//! results — arrivals are parked and folded in group order, but the
//! *processing* (deserialise + verify) still happens opportunistically.

use crate::scaling::scaled_nic;
use crate::workload::VectorWorkload;
use kylix::{Kylix, NetworkPlan, RecvOrder};
use kylix_net::Comm;
use kylix_netsim::SimCluster;
use kylix_sparse::SumReducer;

/// One measured point of the sweep.
#[derive(Debug, Clone, Copy)]
pub struct StragglerRow {
    /// Slowdown factor of the straggling node (1.0 = no straggler).
    pub skew: f64,
    /// Reduce makespan with fixed-order receives, full-scale seconds.
    pub fixed: f64,
    /// Reduce makespan with arrival-order receives, full-scale seconds.
    pub arrival: f64,
    /// `fixed / arrival` — the opportunistic-communication win.
    pub speedup: f64,
}

/// Cluster size of the sweep.
const NODES: usize = 16;
/// The straggling rank. Rank 0 sits *first* in every group it joins,
/// so fixed-order receives block on it before touching anything else.
const STRAGGLER: usize = 0;
/// Steady-state reduce operations timed per run (configure once).
const OPS: usize = 4;

/// Reduce-phase makespan of the *non-straggling* nodes (full-scale
/// seconds) for one receive order.
///
/// Virtual-time simulation: one receive worker per node, rank 0 slowed
/// by `skew`. The measurement comes from the cluster telemetry's
/// per-operation timing: every reduce records its virtual duration
/// into its rank's shard, so the reduce phase is isolated from
/// configuration (identical in both arms) without bracketing clocks in
/// the closure, and the straggler's own shard is simply skipped (see
/// the module docs).
pub fn reduce_makespan(scale: u64, seed: u64, skew: f64, order: RecvOrder) -> f64 {
    let w = VectorWorkload::twitter_like(NODES, scale, seed);
    // A wide first layer maximises the receive backlog a fixed-order
    // schedule can head-of-line-block on (7 slices behind the
    // straggler's), which is where opportunistic processing pays.
    let plan = NetworkPlan::new(&[8, 2]);
    let nic = scaled_nic(scale as f64).with_workers(1);
    let cluster = SimCluster::new(NODES, nic)
        .seed(seed)
        .stragglers(&[(STRAGGLER, skew)]);
    cluster.run_all(|mut comm| {
        let me = comm.rank();
        let idx = &w.node_indices[me];
        let kylix = Kylix::new(plan.clone());
        let mut state = kylix.configure(&mut comm, idx, idx, 0).unwrap();
        state.recv_order = order;
        let vals = vec![1.0f64; idx.len()];
        let mut out = Vec::new();
        for _ in 0..OPS {
            state
                .reduce_into(&mut comm, &vals, SumReducer, &mut out)
                .unwrap();
        }
    });
    let tel = cluster.telemetry();
    let reduce_secs = (0..NODES)
        .filter(|&rank| rank != STRAGGLER)
        .map(|rank| tel.rank(rank).op_nanos() as f64 / 1e9)
        .fold(0.0, f64::max);
    reduce_secs * scale as f64 / OPS as f64
}

/// The sweep over straggler factors. `quick` trims it to a CI-smoke
/// subset covering the no-skew baseline and the peak-win point.
pub fn run(scale: u64, seed: u64, quick: bool) -> Vec<StragglerRow> {
    let skews: &[f64] = if quick {
        &[1.0, 2.0]
    } else {
        &[1.0, 2.0, 4.0, 8.0]
    };
    skews
        .iter()
        .map(|&skew| {
            let fixed = reduce_makespan(scale, seed, skew, RecvOrder::Fixed);
            let arrival = reduce_makespan(scale, seed, skew, RecvOrder::Arrival);
            StragglerRow {
                skew,
                fixed,
                arrival,
                speedup: fixed / arrival,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Acceptance: at the peak-win operating point (2x straggler),
    /// arrival-order receives beat fixed-order receives — the §VI.B
    /// opportunistic win.
    #[test]
    fn arrival_order_wins_under_skew() {
        let fixed = reduce_makespan(4000, 11, 2.0, RecvOrder::Fixed);
        let arrival = reduce_makespan(4000, 11, 2.0, RecvOrder::Arrival);
        assert!(
            arrival < fixed * 0.99,
            "arrival order must win under 2x skew: fixed {fixed} vs arrival {arrival}"
        );
    }

    /// Without a straggler, the two schedules must be close — the
    /// arrival-order machinery cannot cost measurable virtual time.
    #[test]
    fn no_straggler_means_parity() {
        let fixed = reduce_makespan(4000, 11, 1.0, RecvOrder::Fixed);
        let arrival = reduce_makespan(4000, 11, 1.0, RecvOrder::Arrival);
        assert!(
            arrival <= fixed * 1.05,
            "no-skew parity violated: fixed {fixed} vs arrival {arrival}"
        );
    }

    /// The *absolute* time recovered per op — the receive backlog the
    /// fixed schedule head-of-line-blocks on — survives deep skew, even
    /// though the speedup ratio decays once waiting for the straggler's
    /// data dominates everything (Amdahl: no schedule can process
    /// slices that have not arrived). Arrival order never loses.
    #[test]
    fn recovered_backlog_survives_deep_skew() {
        let rows = run(4000, 11, false);
        for row in &rows {
            assert!(
                row.speedup >= 0.995,
                "arrival order must never lose: {rows:#?}"
            );
            if row.skew >= 2.0 {
                assert!(
                    row.fixed - row.arrival > 0.005,
                    "the recovered backlog (full-scale s/op) collapsed: {rows:#?}"
                );
            }
        }
    }
}
