//! Fig. 9 — compute/communication breakdown and speedup vs cluster
//! size.
//!
//! PageRank per-iteration time, broken into local compute and
//! communication, for cluster sizes 4 → 64 on both graphs, with
//! butterfly degrees re-optimised per size by the §IV workflow (the
//! paper: "the butterfly degrees are optimally tuned individually for
//! different cluster sizes"). Speedup is measured against the 4-node
//! run, as in the paper; they report 7–11× at 64 nodes, with
//! communication dominating past 32 nodes.

use crate::scaling::{scaled_min_packet, scaled_nic};
use kylix::{optimal_degrees, DesignInput, Kylix};
use kylix_apps::{distributed_pagerank, PageRankConfig};
use kylix_net::Comm;
use kylix_netsim::SimCluster;
use kylix_powerlaw::DatasetSpec;

/// One point of the scaling study.
#[derive(Debug, Clone)]
pub struct Fig9Row {
    /// Dataset name.
    pub dataset: String,
    /// Cluster size.
    pub m: usize,
    /// Degrees picked by the design workflow.
    pub degrees: Vec<usize>,
    /// Per-iteration compute makespan, full-scale seconds.
    pub compute_time: f64,
    /// Per-iteration communication makespan, full-scale seconds.
    pub comm_time: f64,
    /// Speedup over the 4-node run.
    pub speedup: f64,
}

/// Cluster sizes the paper sweeps.
pub const SIZES: [usize; 5] = [4, 8, 16, 32, 64];

/// Regenerate the scaling study for one dataset.
pub fn run_dataset(spec: &DatasetSpec, scale: u64, seed: u64, iters: usize) -> Vec<Fig9Row> {
    let graph = spec.generate(seed);
    let nic = scaled_nic(scale as f64);
    let model = spec.density_model();
    let mut rows: Vec<Fig9Row> = Vec::new();
    for &m in &SIZES {
        let plan = optimal_degrees(&DesignInput {
            m,
            model,
            lambda0: spec.lambda0(m),
            elem_bytes: 8,
            min_packet_bytes: scaled_min_packet(scale as f64),
        });
        let parts = graph.partition_random(m, seed + 1);
        let cluster = SimCluster::new(m, nic).seed(seed + m as u64);
        let cfg = PageRankConfig {
            damping: 0.85,
            iterations: iters,
            compute_per_edge: 4.0e-9,
        };
        let outcomes: Vec<(f64, f64, f64)> = cluster.run_all(|mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(plan.clone());
            let out =
                distributed_pagerank(&mut comm, &kylix, spec.n_vertices, &parts[me].edges, &cfg)
                    .unwrap();
            (
                out.compute_time,
                out.comm_time,
                comm.now() - out.config_time,
            )
        });
        let compute =
            outcomes.iter().map(|o| o.0).fold(0.0, f64::max) / iters as f64 * scale as f64;
        let comm_t = outcomes.iter().map(|o| o.1).fold(0.0, f64::max) / iters as f64 * scale as f64;
        let total = compute + comm_t;
        let speedup = rows
            .first()
            .map(|r4: &Fig9Row| (r4.compute_time + r4.comm_time) / total.max(1e-12))
            .unwrap_or(1.0);
        rows.push(Fig9Row {
            dataset: spec.name.into(),
            m,
            degrees: plan.degrees().to_vec(),
            compute_time: compute,
            comm_time: comm_t,
            speedup,
        });
    }
    rows
}

/// Both datasets.
pub fn run(scale: u64, seed: u64) -> Vec<Fig9Row> {
    let mut rows = run_dataset(&DatasetSpec::twitter_like(scale), scale, seed, 2);
    rows.extend(run_dataset(
        &DatasetSpec::yahoo_like(scale),
        scale,
        seed + 9,
        2,
    ));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_shows_speedup_and_comm_domination() {
        let rows = run_dataset(&DatasetSpec::twitter_like(4000), 4000, 3, 2);
        assert_eq!(rows.len(), SIZES.len());
        // Speedup grows with m (not necessarily linearly).
        let s64 = rows.last().unwrap().speedup;
        assert!(s64 > 2.0, "64-node speedup only {s64:.2}");
        // Compute share falls as the cluster grows.
        let share = |r: &Fig9Row| r.compute_time / (r.compute_time + r.comm_time);
        assert!(
            share(rows.last().unwrap()) < share(&rows[0]),
            "compute share should fall with m"
        );
        // Degrees multiply to m.
        for r in &rows {
            let prod: usize = r.degrees.iter().product();
            assert_eq!(prod, r.m);
        }
    }
}
