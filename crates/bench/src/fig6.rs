//! Fig. 6 — configuration and reduction time per topology.
//!
//! For both workloads, time the three topologies of the paper's Fig. 6
//! on the simulated 64-node EC2 cluster:
//!
//! * direct all-to-all (`[64]`),
//! * the optimal heterogeneous butterfly (the paper's 8×4×2 for the
//!   Twitter-like data, 16×4 for the Yahoo-like data),
//! * the binary butterfly (`[2; 6]`).
//!
//! The paper reports the optimal plan 3–5× faster than the others:
//! direct drowns in sub-efficient packets (63 messages of ~0.4 MB at
//! ~30 % utilisation), binary pays for six rounds of latency and extra
//! routed volume.

use crate::scaling::scaled_nic;
use crate::workload::VectorWorkload;
use kylix::{Kylix, NetworkPlan};
use kylix_net::Comm;
use kylix_netsim::SimCluster;
use kylix_sparse::SumReducer;

/// Timing result for one (dataset, topology) cell.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Workload name.
    pub dataset: String,
    /// Topology label (e.g. "8x4x2").
    pub topology: String,
    /// Configuration makespan, full-scale seconds.
    pub config_time: f64,
    /// Mean per-iteration reduce makespan, full-scale seconds.
    pub reduce_time: f64,
}

/// Time configure + `iters` reduces of a workload on a topology;
/// returns full-scale (config, reduce-per-iteration) seconds.
pub fn time_topology(
    workload: &VectorWorkload,
    plan: &NetworkPlan,
    seed: u64,
    iters: usize,
) -> (f64, f64) {
    let m = workload.node_indices.len();
    assert_eq!(plan.size(), m);
    let nic = scaled_nic(workload.scale as f64);
    let cluster = SimCluster::new(m, nic).seed(seed);
    let per_node: Vec<(f64, Vec<f64>)> = cluster.run_all(|mut comm| {
        let me = comm.rank();
        let idx = &workload.node_indices[me];
        let kylix = Kylix::new(plan.clone());
        let mut state = kylix.configure(&mut comm, idx, idx, 0).unwrap();
        let t_cfg = comm.now();
        let vals = vec![1.0f64; idx.len()];
        let mut ends = Vec::with_capacity(iters);
        for _ in 0..iters {
            state.reduce(&mut comm, &vals, SumReducer).unwrap();
            ends.push(comm.now());
        }
        (t_cfg, ends)
    });
    let config_end = per_node.iter().map(|p| p.0).fold(0.0, f64::max);
    let mut last = config_end;
    let mut total_reduce = 0.0;
    for i in 0..iters {
        let end = per_node.iter().map(|p| p.1[i]).fold(0.0, f64::max);
        total_reduce += end - last;
        last = end;
    }
    let scale = workload.scale as f64;
    (config_end * scale, total_reduce / iters as f64 * scale)
}

/// Run the full Fig. 6 grid.
pub fn run(scale: u64, seed: u64) -> Vec<Fig6Row> {
    let twitter = VectorWorkload::twitter_like(64, scale, seed);
    let yahoo = VectorWorkload::yahoo_like(64, scale, seed + 1);
    let mut rows = Vec::new();
    for (w, optimal) in [(&twitter, vec![8usize, 4, 2]), (&yahoo, vec![16, 4])] {
        for plan in [
            NetworkPlan::direct(64),
            NetworkPlan::new(&optimal),
            NetworkPlan::binary(64),
        ] {
            let (config_time, reduce_time) = time_topology(w, &plan, seed + 7, 3);
            rows.push(Fig6Row {
                dataset: w.name.clone(),
                topology: plan.to_string(),
                config_time,
                reduce_time,
            });
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows_for<'a>(rows: &'a [Fig6Row], dataset: &str) -> (&'a Fig6Row, &'a Fig6Row, &'a Fig6Row) {
        let ds: Vec<&Fig6Row> = rows.iter().filter(|r| r.dataset == dataset).collect();
        (ds[0], ds[1], ds[2]) // direct, optimal, binary (run order)
    }

    #[test]
    fn optimal_butterfly_wins_both_datasets() {
        let rows = run(4000, 5);
        for dataset in ["twitter-like", "yahoo-like"] {
            let (direct, optimal, binary) = rows_for(&rows, dataset);
            assert!(
                optimal.reduce_time < direct.reduce_time,
                "{dataset}: optimal {} vs direct {}",
                optimal.reduce_time,
                direct.reduce_time
            );
            assert!(
                optimal.reduce_time < binary.reduce_time,
                "{dataset}: optimal {} vs binary {}",
                optimal.reduce_time,
                binary.reduce_time
            );
            assert!(
                optimal.config_time < direct.config_time,
                "{dataset}: config optimal {} vs direct {}",
                optimal.config_time,
                direct.config_time
            );
        }
    }

    #[test]
    fn direct_gap_is_paper_magnitude() {
        // Paper: 3–5× on their testbed. The simulator's cost model is
        // conservative (no switch congestion, no TCP incast); accept a
        // ≥1.8× gap and report the measured factor in EXPERIMENTS.md.
        let rows = run(4000, 9);
        let (direct, optimal, _) = rows_for(&rows, "twitter-like");
        let factor = direct.reduce_time / optimal.reduce_time;
        assert!(factor > 1.8, "direct/optimal = {factor:.2}");
    }
}
