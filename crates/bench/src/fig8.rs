//! Fig. 8 — PageRank per-iteration runtime across systems.
//!
//! The paper's log-scale comparison on 64 nodes: BIDMat+Kylix vs
//! PowerGraph vs Hadoop/Pegasus, on the Twitter follower graph and the
//! Yahoo web graph. Kylix lands 3–7× faster than PowerGraph and ~500×
//! faster than Hadoop.
//!
//! We reproduce it with:
//! * **kylix** — `kylix_apps::distributed_pagerank` on the paper's
//!   degrees, timed on the simulated cluster;
//! * **powergraph-style** — the GAS engine of `kylix_baselines`
//!   (mirror→master→mirror direct all-to-all), same simulator, same
//!   graph, same per-edge compute charge;
//! * **hadoop/pegasus** — the calibrated linear cost model at the
//!   *full-scale* edge count (a fixed 30 s job overhead cannot be
//!   scaled down; that rigidity is precisely Hadoop's pathology).
//!
//! ### Calibration
//!
//! The NIC scale divisor is derived from the workload itself: the
//! paper reports ~0.4 MB direct-topology packets on Twitter@64, i.e.
//! ≈25.6 MB of exchanged state per node per pass; we measure the
//! scaled graph's actual per-node allreduce volume and divide the NIC
//! time constants so the simulated run sits at the identical
//! packet-size regime (64 MB/node for the Yahoo-like workload, as in
//! Figs. 5/6). Reported times are multiplied back by the same factor.

use crate::scaling::scaled_nic;
use kylix::{Kylix, NetworkPlan};
use kylix_apps::{distributed_pagerank, PageRankConfig};
use kylix_baselines::{GasEngine, HadoopModel};
use kylix_net::Comm;
use kylix_netsim::SimCluster;
use kylix_powerlaw::{DatasetSpec, EdgeList};

/// One bar of Fig. 8.
#[derive(Debug, Clone)]
pub struct Fig8Row {
    /// Dataset name.
    pub dataset: String,
    /// System name.
    pub system: String,
    /// Per-iteration runtime, full-scale seconds.
    pub seconds_per_iter: f64,
}

/// Per-edge compute charge (seconds) shared by both engines; see
/// `PageRankConfig::compute_per_edge`.
const COMPUTE_PER_EDGE: f64 = 4.0e-9;

/// Paper-regime per-node exchanged volume at 64 nodes, bytes
/// (Twitter: 64 × 0.4 MB packets; Yahoo as in Figs. 5/6).
pub fn paper_node_volume(dataset: &str) -> f64 {
    match dataset {
        "twitter-like" => 25.6e6,
        "yahoo-like" => 64.0e6,
        other => panic!("unknown dataset {other}"),
    }
}

/// Mean per-node allreduce volume (bytes of out-state) of a partitioned
/// graph — distinct sources + destinations at 8 B each.
pub fn measured_node_volume(parts: &[EdgeList]) -> f64 {
    let total: usize = parts
        .iter()
        .map(|p| p.distinct_dsts().len() + p.distinct_srcs().len())
        .sum();
    total as f64 * 8.0 / parts.len() as f64
}

/// The NIC scale divisor placing this workload at the paper's
/// packet-size regime.
pub fn nic_scale(dataset: &str, parts: &[EdgeList]) -> f64 {
    (paper_node_volume(dataset) / measured_node_volume(parts)).max(1.0)
}

/// Time Kylix PageRank: per-iteration makespan (excluding the one-time
/// configuration, as the paper reports per-iteration runtime).
fn time_kylix(
    spec: &DatasetSpec,
    parts: &[EdgeList],
    degrees: &[usize],
    scale: f64,
    compute_per_edge: f64,
    seed: u64,
    iters: usize,
) -> f64 {
    let m: usize = degrees.iter().product();
    let cluster = SimCluster::new(m, scaled_nic(scale)).seed(seed + 2);
    let cfg = PageRankConfig {
        damping: 0.85,
        iterations: iters,
        compute_per_edge,
    };
    let times: Vec<(f64, f64)> = cluster.run_all(|mut comm| {
        let me = comm.rank();
        let kylix = Kylix::new(NetworkPlan::new(degrees));
        let out = distributed_pagerank(&mut comm, &kylix, spec.n_vertices, &parts[me].edges, &cfg)
            .unwrap();
        (out.config_time, comm.now())
    });
    let config_end = times.iter().map(|t| t.0).fold(0.0, f64::max);
    let total_end = times.iter().map(|t| t.1).fold(0.0, f64::max);
    (total_end - config_end) / iters as f64 * scale
}

/// Time the PowerGraph-style GAS engine the same way.
fn time_gas(
    spec: &DatasetSpec,
    parts: &[EdgeList],
    m: usize,
    scale: f64,
    compute_per_edge: f64,
    seed: u64,
    iters: usize,
) -> f64 {
    let cluster = SimCluster::new(m, scaled_nic(scale)).seed(seed + 2);
    let times: Vec<(f64, f64)> = cluster.run_all(|mut comm| {
        let me = comm.rank();
        let edges = &parts[me].edges;
        let mut engine = GasEngine::setup(&mut comm, spec.n_vertices, edges, 0).unwrap();
        let setup_end = comm.now();
        for it in 0..iters {
            comm.charge_compute(compute_per_edge * edges.len() as f64);
            engine
                .pagerank_step(&mut comm, 0.85, it as u32 + 1)
                .unwrap();
        }
        (setup_end, comm.now())
    });
    let setup_end = times.iter().map(|t| t.0).fold(0.0, f64::max);
    let total_end = times.iter().map(|t| t.1).fold(0.0, f64::max);
    (total_end - setup_end) / iters as f64 * scale
}

/// Regenerate Fig. 8 at the given dataset scale divisor.
pub fn run(dataset_scale: u64, seed: u64) -> Vec<Fig8Row> {
    let hadoop = HadoopModel::default();
    let mut rows = Vec::new();
    for (spec, full_edges) in [
        (DatasetSpec::twitter_like(dataset_scale), 1_500_000_000u64),
        (DatasetSpec::yahoo_like(dataset_scale), 6_000_000_000u64),
    ] {
        let graph = spec.generate(seed);
        let parts = graph.partition_random(64, seed + 1);
        let scale = nic_scale(spec.name, &parts);
        // Virtual compute charge such that (virtual time x nic scale)
        // equals the full-scale compute: edges shrank by the dataset
        // scale while times are re-inflated by the NIC scale.
        let cpe = COMPUTE_PER_EDGE * dataset_scale as f64 / scale;
        let kylix_t = time_kylix(&spec, &parts, spec.paper_degrees, scale, cpe, seed, 3);
        let gas_t = time_gas(&spec, &parts, 64, scale, cpe, seed, 3);
        let hadoop_t = hadoop.pagerank_iteration_time(full_edges);
        rows.push(Fig8Row {
            dataset: spec.name.into(),
            system: "kylix".into(),
            seconds_per_iter: kylix_t,
        });
        rows.push(Fig8Row {
            dataset: spec.name.into(),
            system: "powergraph-style".into(),
            seconds_per_iter: gas_t,
        });
        rows.push(Fig8Row {
            dataset: spec.name.into(),
            system: "hadoop/pegasus".into(),
            seconds_per_iter: hadoop_t,
        });
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn by(rows: &[Fig8Row], dataset: &str, system: &str) -> f64 {
        rows.iter()
            .find(|r| r.dataset == dataset && r.system == system)
            .unwrap()
            .seconds_per_iter
    }

    #[test]
    fn kylix_beats_powergraph_style() {
        let rows = run(4000, 3);
        for ds in ["twitter-like", "yahoo-like"] {
            let k = by(&rows, ds, "kylix");
            let g = by(&rows, ds, "powergraph-style");
            assert!(g > k * 1.2, "{ds}: powergraph {g} should exceed kylix {k}");
        }
    }

    #[test]
    fn hadoop_is_orders_of_magnitude_slower() {
        let rows = run(4000, 5);
        for ds in ["twitter-like", "yahoo-like"] {
            let k = by(&rows, ds, "kylix");
            let h = by(&rows, ds, "hadoop/pegasus");
            assert!(h / k > 50.0, "{ds}: hadoop/kylix ratio only {:.1}", h / k);
        }
    }

    #[test]
    fn kylix_absolute_time_is_paper_magnitude() {
        // Paper: 0.55 s (Twitter) and 2.5 s (Yahoo) per iteration.
        // Same order of magnitude is the goal.
        let rows = run(4000, 7);
        let t = by(&rows, "twitter-like", "kylix");
        assert!((0.05..5.0).contains(&t), "twitter kylix {t}");
        let y = by(&rows, "yahoo-like", "kylix");
        assert!((0.2..25.0).contains(&y), "yahoo kylix {y}");
    }
}
