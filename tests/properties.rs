//! Workspace-level property tests: arbitrary workloads, topologies,
//! reducers, replication factors and kill sets against the sequential
//! reference semantics.

use kylix::{reference_allreduce, Kylix, NetworkPlan, NodeContribution, ReplicatedComm};
use kylix_net::{Comm, LocalCluster};
use kylix_sparse::{MaxReducer, MinReducer, SumReducer, Xoshiro256};
use proptest::prelude::*;

fn workload_u64(m: usize, n_features: u64, seed: u64) -> Vec<NodeContribution<u64>> {
    let mut rng = Xoshiro256::new(seed);
    let nodes: Vec<NodeContribution<u64>> = (0..m)
        .map(|_| {
            let k_out = 1 + rng.next_index(25);
            let out_indices: Vec<u64> = (0..k_out).map(|_| rng.next_below(n_features)).collect();
            let out_values: Vec<u64> = (0..out_indices.len())
                .map(|_| rng.next_below(1000) + 1)
                .collect();
            let k_in = 1 + rng.next_index(20);
            let in_indices: Vec<u64> = (0..k_in).map(|_| rng.next_below(n_features)).collect();
            NodeContribution {
                in_indices,
                out_indices,
                out_values,
            }
        })
        .collect();
    nodes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Min/max reducers over arbitrary sparse sets, including requests
    /// for indices nobody contributes (identity semantics).
    #[test]
    fn prop_min_max_reducers_match_reference(
        seed in 0u64..1_000_000,
        shape in prop::sample::select(vec![
            vec![3usize], vec![2, 2], vec![4, 2], vec![2, 2, 2],
        ]),
    ) {
        let plan = NetworkPlan::new(&shape);
        let m = plan.size();
        let nodes = workload_u64(m, 128, seed);
        let expect_min = reference_allreduce(&nodes, MinReducer);
        let expect_max = reference_allreduce(&nodes, MaxReducer);
        let got: Vec<(Vec<u64>, Vec<u64>)> = LocalCluster::run(m, |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(plan.clone());
            let (mn, _) = kylix
                .allreduce_combined(
                    &mut comm,
                    &nodes[me].in_indices,
                    &nodes[me].out_indices,
                    &nodes[me].out_values,
                    MinReducer,
                    0,
                )
                .unwrap();
            let (mx, _) = kylix
                .allreduce_combined(
                    &mut comm,
                    &nodes[me].in_indices,
                    &nodes[me].out_indices,
                    &nodes[me].out_values,
                    MaxReducer,
                    1000,
                )
                .unwrap();
            (mn, mx)
        });
        for (rank, (mn, mx)) in got.iter().enumerate() {
            prop_assert_eq!(mn, &expect_min[rank]);
            prop_assert_eq!(mx, &expect_max[rank]);
        }
    }

    /// Any kill set leaving one survivor per replica group is exact.
    #[test]
    fn prop_replication_tolerates_any_survivable_kill_set(
        seed in 0u64..1_000_000,
        kill_mask in 0u8..16,
    ) {
        // 4 logical nodes x 2 replicas; bit i of kill_mask kills ONE
        // replica of logical node i (alternating which one by seed).
        let m_logical = 4;
        let plan = NetworkPlan::new(&[2, 2]);
        let nodes = workload_u64(m_logical, 64, seed);
        let expected = reference_allreduce(&nodes, SumReducer);
        let mut dead = Vec::new();
        for i in 0..m_logical {
            if kill_mask & (1 << i) != 0 {
                let replica = ((seed >> i) & 1) as usize;
                dead.push(i + replica * m_logical);
            }
        }
        let got = LocalCluster::run_with_failures(2 * m_logical, &dead, |comm| {
            let mut rc = ReplicatedComm::new(comm, 2);
            let me = rc.rank();
            Kylix::new(plan.clone())
                .allreduce_combined(
                    &mut rc,
                    &nodes[me].in_indices,
                    &nodes[me].out_indices,
                    &nodes[me].out_values,
                    SumReducer,
                    0,
                )
                .unwrap()
                .0
        });
        for (phys, res) in got.iter().enumerate() {
            if dead.contains(&phys) {
                prop_assert!(res.is_none());
                continue;
            }
            let logical = phys % m_logical;
            prop_assert_eq!(res.as_ref().unwrap(), &expected[logical], "phys {}", phys);
        }
    }

    /// Two consecutive collectives on the same communicator with
    /// different channels do not interfere.
    #[test]
    fn prop_channel_isolation(seed in 0u64..100_000) {
        let m = 4;
        let plan = NetworkPlan::new(&[2, 2]);
        let a = workload_u64(m, 64, seed);
        let b = workload_u64(m, 64, seed.wrapping_add(1));
        let expect_a = reference_allreduce(&a, SumReducer);
        let expect_b = reference_allreduce(&b, SumReducer);
        let got: Vec<(Vec<u64>, Vec<u64>)> = LocalCluster::run(m, |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(plan.clone());
            // Issue BOTH collectives' sends before receiving results —
            // the tag namespaces must keep them apart.
            let (ra, _) = kylix
                .allreduce_combined(&mut comm, &a[me].in_indices, &a[me].out_indices,
                                    &a[me].out_values, SumReducer, 0)
                .unwrap();
            let (rb, _) = kylix
                .allreduce_combined(&mut comm, &b[me].in_indices, &b[me].out_indices,
                                    &b[me].out_values, SumReducer, 500)
                .unwrap();
            (ra, rb)
        });
        for (rank, (ra, rb)) in got.iter().enumerate() {
            prop_assert_eq!(ra, &expect_a[rank]);
            prop_assert_eq!(rb, &expect_b[rank]);
        }
    }
}

/// Deterministic regression: the exact same workload produces the exact
/// same reduced values across repeated runs (thread scheduling must not
/// leak into results).
#[test]
fn results_are_run_to_run_deterministic() {
    let plan = NetworkPlan::new(&[4, 2]);
    let nodes = workload_u64(8, 256, 99);
    let run = || -> Vec<Vec<u64>> {
        LocalCluster::run(8, |mut comm| {
            let me = comm.rank();
            Kylix::new(plan.clone())
                .allreduce_combined(
                    &mut comm,
                    &nodes[me].in_indices,
                    &nodes[me].out_indices,
                    &nodes[me].out_values,
                    SumReducer,
                    0,
                )
                .unwrap()
                .0
        })
    };
    assert_eq!(run(), run());
    assert_eq!(run(), run());
}
