//! Cross-substrate telemetry differential tests.
//!
//! The same plan and seed, run on the virtual-time simulator, the real
//! thread cluster, and the loopback-TCP cluster, must produce
//! **identical** per-rank, per-`(phase, layer)` send-side counters —
//! bytes sent, messages sent, and the self-addressed volumes the reduce
//! hot path records — and **bit-identical** reduction results. Send
//! counts are fixed by the routing tables and reduction values by the
//! deterministic arrival-order-independent reducers, so any divergence
//! means one substrate's accounting or delivery drifted. Timing and
//! receive-side stash behaviour are deliberately excluded — virtual and
//! wall clocks cannot agree, and each substrate parks a different set
//! of arrivals (the simulator parks everything, the thread and TCP
//! clusters only out-of-order traffic, with real-socket interleaving
//! differing from channel interleaving run to run).
//!
//! Three topologies, including the heterogeneous-degree butterfly
//! `4×3×2` where every layer has a different group size.

use std::collections::BTreeMap;

use kylix::{Kylix, NetworkPlan};
use kylix_net::telemetry::{Clock, Counter, Telemetry, TelemetryReport};
use kylix_net::{Comm, LocalCluster, TcpCluster};
use kylix_netsim::{NicModel, SimCluster};
use kylix_powerlaw::{DensityModel, PartitionGenerator};
use kylix_sparse::SumReducer;

fn workload(m: usize, n: u64, density: f64, seed: u64) -> Vec<Vec<u64>> {
    let model = DensityModel::new(n, 1.1);
    let gen = PartitionGenerator::with_density(model, density, seed);
    (0..m).map(|i| gen.indices(i)).collect()
}

/// Send-side counters per rank: `(phase, layer)` → (bytes sent, msgs
/// sent, self bytes, self msgs), zero rows dropped.
type SendSide = Vec<BTreeMap<(u8, u16), (u64, u64, u64, u64)>>;

/// One substrate's outcome: send-side counters plus each rank's reduced
/// values as raw bits (exact equality, no float tolerance).
struct Outcome {
    send: SendSide,
    reduced_bits: Vec<Vec<u64>>,
}

fn send_side(rep: &TelemetryReport) -> SendSide {
    rep.ranks
        .iter()
        .map(|r| {
            r.counters
                .iter()
                .map(|(&slot, _)| {
                    let row = (
                        r.get(slot.0, slot.1, Counter::BytesSent),
                        r.get(slot.0, slot.1, Counter::MsgsSent),
                        r.get(slot.0, slot.1, Counter::SelfBytes),
                        r.get(slot.0, slot.1, Counter::SelfMsgs),
                    );
                    (slot, row)
                })
                .filter(|(_, row)| *row != (0, 0, 0, 0))
                .collect()
        })
        .collect()
}

fn to_bits(vals: Vec<f64>) -> Vec<u64> {
    vals.into_iter().map(f64::to_bits).collect()
}

/// One rank's work, identical on every substrate: configure the
/// butterfly, reduce once, return the reduced values as raw bits.
fn rank_body<C: Comm>(comm: &mut C, plan: &NetworkPlan, idx: &[Vec<u64>]) -> Vec<u64> {
    let me = comm.rank();
    let kylix = Kylix::new(plan.clone());
    let mut state = kylix.configure(comm, &idx[me], &idx[me], 0).unwrap();
    let vals = vec![1.0f64; idx[me].len()];
    to_bits(state.reduce(comm, &vals, SumReducer).unwrap())
}

/// Configure + one reduce on every rank of all three substrates;
/// returns `[sim, thread, tcp]` outcomes.
fn run_all_substrates(degrees: &[usize], seed: u64) -> [Outcome; 3] {
    let plan = NetworkPlan::new(degrees);
    let m = plan.size();
    let idx = workload(m, 4096, 0.3, seed);

    let sim_cluster = SimCluster::new(m, NicModel::ec2_10g()).seed(seed);
    let sim_reduced = sim_cluster.run_all(|mut comm| rank_body(&mut comm, &plan, &idx));
    let sim = Outcome {
        send: send_side(&sim_cluster.telemetry().report()),
        reduced_bits: sim_reduced,
    };

    let thread_tel = Telemetry::new(m, Clock::Wall);
    let thread_reduced = LocalCluster::run_with_telemetry(m, &thread_tel, |mut comm| {
        rank_body(&mut comm, &plan, &idx)
    });
    let thread = Outcome {
        send: send_side(&thread_tel.report()),
        reduced_bits: thread_reduced,
    };

    let tcp_tel = Telemetry::new(m, Clock::Wall);
    let tcp_reduced =
        TcpCluster::run_with_telemetry(m, &tcp_tel, |mut comm| rank_body(&mut comm, &plan, &idx));
    let tcp = Outcome {
        send: send_side(&tcp_tel.report()),
        reduced_bits: tcp_reduced,
    };

    [sim, thread, tcp]
}

fn assert_identical(degrees: &[usize], seed: u64) {
    let [sim, thread, tcp] = run_all_substrates(degrees, seed);
    for (name, other) in [("thread", &thread), ("tcp", &tcp)] {
        assert_eq!(sim.send.len(), other.send.len());
        for (rank, (s, o)) in sim.send.iter().zip(&other.send).enumerate() {
            assert_eq!(
                s, o,
                "{degrees:?} rank {rank}: send-side counters diverged (sim vs {name})"
            );
        }
        assert_eq!(
            sim.reduced_bits, other.reduced_bits,
            "{degrees:?}: reduction results not bit-identical (sim vs {name})"
        );
    }
    // Sanity: the run actually sent something on every reduce layer.
    let nonzero = sim
        .send
        .iter()
        .flat_map(|r| r.values())
        .map(|&(b, ..)| b)
        .sum::<u64>();
    assert!(nonzero > 0, "{degrees:?}: no traffic recorded");
    let values = sim.reduced_bits.iter().map(|r| r.len()).sum::<usize>();
    assert!(values > 0, "{degrees:?}: no reduced values produced");
}

#[test]
fn square_butterfly_2x2_matches() {
    assert_identical(&[2, 2], 42);
}

#[test]
fn rectangular_butterfly_4x2_matches() {
    assert_identical(&[4, 2], 43);
}

#[test]
fn heterogeneous_butterfly_4x3x2_matches() {
    assert_identical(&[4, 3, 2], 44);
}
