//! Cross-substrate telemetry differential tests.
//!
//! The same plan and seed, run once on the virtual-time simulator and
//! once on the real thread cluster, must produce **identical** per-rank,
//! per-`(phase, layer)` send-side counters: bytes sent, messages sent,
//! and the self-addressed volumes the reduce hot path records. Send
//! counts are fixed by the routing tables, so any divergence means one
//! substrate's accounting drifted. Timing and receive-side stash
//! behaviour are deliberately excluded — virtual and wall clocks cannot
//! agree, and the simulator parks every arrival while the thread
//! substrate only parks out-of-order ones.
//!
//! Three topologies, including the heterogeneous-degree butterfly
//! `4×3×2` where every layer has a different group size.

use std::collections::BTreeMap;

use kylix::{Kylix, NetworkPlan};
use kylix_net::telemetry::{Clock, Counter, Telemetry, TelemetryReport};
use kylix_net::{Comm, LocalCluster};
use kylix_netsim::{NicModel, SimCluster};
use kylix_powerlaw::{DensityModel, PartitionGenerator};
use kylix_sparse::SumReducer;

fn workload(m: usize, n: u64, density: f64, seed: u64) -> Vec<Vec<u64>> {
    let model = DensityModel::new(n, 1.1);
    let gen = PartitionGenerator::with_density(model, density, seed);
    (0..m).map(|i| gen.indices(i)).collect()
}

/// Send-side counters per rank: `(phase, layer)` → (bytes sent, msgs
/// sent, self bytes, self msgs), zero rows dropped.
type SendSide = Vec<BTreeMap<(u8, u16), (u64, u64, u64, u64)>>;

fn send_side(rep: &TelemetryReport) -> SendSide {
    rep.ranks
        .iter()
        .map(|r| {
            r.counters
                .iter()
                .map(|(&slot, _)| {
                    let row = (
                        r.get(slot.0, slot.1, Counter::BytesSent),
                        r.get(slot.0, slot.1, Counter::MsgsSent),
                        r.get(slot.0, slot.1, Counter::SelfBytes),
                        r.get(slot.0, slot.1, Counter::SelfMsgs),
                    );
                    (slot, row)
                })
                .filter(|(_, row)| *row != (0, 0, 0, 0))
                .collect()
        })
        .collect()
}

/// Configure + one reduce on every rank of both substrates; returns the
/// two send-side counter sets.
fn run_both(degrees: &[usize], seed: u64) -> (SendSide, SendSide) {
    let plan = NetworkPlan::new(degrees);
    let m = plan.size();
    let idx = workload(m, 4096, 0.3, seed);

    let sim_cluster = SimCluster::new(m, NicModel::ec2_10g()).seed(seed);
    sim_cluster.run_all(|mut comm| {
        let me = comm.rank();
        let kylix = Kylix::new(plan.clone());
        let mut state = kylix.configure(&mut comm, &idx[me], &idx[me], 0).unwrap();
        let vals = vec![1.0f64; idx[me].len()];
        state.reduce(&mut comm, &vals, SumReducer).unwrap();
    });
    let sim = send_side(&sim_cluster.telemetry().report());

    let tel = Telemetry::new(m, Clock::Wall);
    LocalCluster::run_with_telemetry(m, &tel, |mut comm| {
        let me = comm.rank();
        let kylix = Kylix::new(plan.clone());
        let mut state = kylix.configure(&mut comm, &idx[me], &idx[me], 0).unwrap();
        let vals = vec![1.0f64; idx[me].len()];
        state.reduce(&mut comm, &vals, SumReducer).unwrap();
    });
    let local = send_side(&tel.report());

    (sim, local)
}

fn assert_identical(degrees: &[usize], seed: u64) {
    let (sim, local) = run_both(degrees, seed);
    assert_eq!(sim.len(), local.len());
    for (rank, (s, l)) in sim.iter().zip(&local).enumerate() {
        assert_eq!(
            s, l,
            "{degrees:?} rank {rank}: send-side counters diverged between substrates"
        );
    }
    // Sanity: the run actually sent something on every reduce layer.
    let nonzero = sim
        .iter()
        .flat_map(|r| r.values())
        .map(|&(b, ..)| b)
        .sum::<u64>();
    assert!(nonzero > 0, "{degrees:?}: no traffic recorded");
}

#[test]
fn square_butterfly_2x2_matches() {
    assert_identical(&[2, 2], 42);
}

#[test]
fn rectangular_butterfly_4x2_matches() {
    assert_identical(&[4, 2], 43);
}

#[test]
fn heterogeneous_butterfly_4x3x2_matches() {
    assert_identical(&[4, 3, 2], 44);
}
