//! Property tests for the chaos layer: arbitrary *mid-run* kill sets
//! against a 2×-replicated allreduce.
//!
//! The §V guarantee under test: the collective completes with exact
//! results under ANY kill set that leaves at least one live replica per
//! logical node — even when the kills land in the middle of the
//! protocol — and fails *loudly* (bounded by the configured patience,
//! not the 60 s default) the moment a whole replica group dies.

use kylix::{
    reference_allreduce, Kylix, KylixError, NetworkPlan, NodeContribution, ReplicatedComm,
};
use kylix_net::{Comm, FaultPlan, LocalCluster, PatienceComm};
use kylix_sparse::{SumReducer, Xoshiro256};
use proptest::prelude::*;
use std::time::{Duration, Instant};

const M_LOGICAL: usize = 4;

fn workload(seed: u64) -> Vec<NodeContribution<u64>> {
    let mut rng = Xoshiro256::new(seed);
    (0..M_LOGICAL)
        .map(|_| {
            let k_out = 1 + rng.next_index(25);
            let out_indices: Vec<u64> = (0..k_out).map(|_| rng.next_below(64)).collect();
            let out_values: Vec<u64> = (0..out_indices.len())
                .map(|_| rng.next_below(1000) + 1)
                .collect();
            let k_in = 1 + rng.next_index(20);
            let in_indices: Vec<u64> = (0..k_in).map(|_| rng.next_below(64)).collect();
            NodeContribution {
                in_indices,
                out_indices,
                out_values,
            }
        })
        .collect()
}

/// Survivable mid-run kill set: bit `i` of `kill_mask` crashes ONE
/// replica of logical node `i` after `ops_budget + i` comm operations.
/// Every rank that finishes must match the reference; every rank not in
/// the kill set must finish.
fn check_survivable(seed: u64, kill_mask: u8, ops_budget: u64) -> Result<(), String> {
    let plan = NetworkPlan::new(&[2, 2]);
    let nodes = workload(seed);
    let expected = reference_allreduce(&nodes, SumReducer);
    let mut faults = FaultPlan::new(seed);
    let mut killed = Vec::new();
    for i in 0..M_LOGICAL {
        if kill_mask & (1 << i) != 0 {
            let replica = ((seed >> i) & 1) as usize;
            let rank = i + replica * M_LOGICAL;
            faults = faults.crash_after_ops(rank, ops_budget + i as u64);
            killed.push(rank);
        }
    }
    let got = LocalCluster::run_with_faults(2 * M_LOGICAL, &faults, |chaos| {
        let mut rc = ReplicatedComm::new(chaos, 2);
        let me = rc.rank();
        Kylix::new(plan.clone())
            .allreduce_combined(
                &mut rc,
                &nodes[me].in_indices,
                &nodes[me].out_indices,
                &nodes[me].out_values,
                SumReducer,
                0,
            )
            .map(|(v, _)| v)
    });
    for (phys, res) in got.iter().enumerate() {
        let logical = phys % M_LOGICAL;
        match res {
            Ok(v) => {
                if v != &expected[logical] {
                    return Err(format!("phys {phys}: wrong result {v:?}"));
                }
            }
            // A rank may only fail by being crashed itself (a late ops
            // budget may let it finish first — that is fine too).
            Err(KylixError::Comm {
                source: kylix_net::CommError::Crashed { rank },
                ..
            }) if killed.contains(rank) => {}
            Err(e) => return Err(format!("phys {phys}: unexpected failure {e}")),
        }
    }
    Ok(())
}

/// Whole-group death: both replicas of logical node `group` crash
/// mid-run. Under a short patience, at least one survivor must report a
/// failure, and the whole cluster must unwind in bounded time instead
/// of hanging out the 60 s default.
fn check_group_death(seed: u64, group: usize, ops_budget: u64) -> Result<(), String> {
    const PATIENCE: Duration = Duration::from_millis(300);
    let plan = NetworkPlan::new(&[2, 2]);
    let nodes = workload(seed);
    let faults = FaultPlan::new(seed)
        .crash_after_ops(group, ops_budget)
        .crash_after_ops(group + M_LOGICAL, ops_budget + 1);
    let start = Instant::now();
    let got = LocalCluster::run_with_faults(2 * M_LOGICAL, &faults, |chaos| {
        let patient = PatienceComm::new(chaos, PATIENCE);
        let mut rc = ReplicatedComm::new(patient, 2);
        let me = rc.rank();
        Kylix::new(plan.clone())
            .allreduce_combined(
                &mut rc,
                &nodes[me].in_indices,
                &nodes[me].out_indices,
                &nodes[me].out_values,
                SumReducer,
                0,
            )
            .map(|(v, _)| v)
    });
    let elapsed = start.elapsed();
    let failures = got.iter().filter(|r| r.is_err()).count();
    if failures < 2 {
        return Err(format!(
            "dead group must fail its own 2 ranks at least, got {failures}"
        ));
    }
    // Generous bound: a handful of patience-sized waits per rank, far
    // below the 60 s default timeout the patience replaces.
    if elapsed > Duration::from_secs(30) {
        return Err(format!("cluster took {elapsed:?} to unwind"));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any survivable mid-run kill set is exact.
    #[test]
    fn prop_midrun_kills_with_live_replica_are_exact(
        seed in 0u64..1_000_000,
        kill_mask in 0u8..16,
        ops_budget in 2u64..40,
    ) {
        prop_assert!(check_survivable(seed, kill_mask, ops_budget).is_ok());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// A whole dead replica group fails loudly within the patience.
    #[test]
    fn prop_whole_group_death_fails_loudly(
        seed in 0u64..1_000_000,
        group in 0usize..4,
        ops_budget in 2u64..10,
    ) {
        prop_assert!(check_group_death(seed, group, ops_budget).is_ok());
    }
}
