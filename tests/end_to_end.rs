//! Whole-pipeline integration tests: dataset generation → network
//! design → application → validation, across both execution substrates.

use kylix::{optimal_degrees, DesignInput, Kylix, NetworkPlan, ReplicatedComm};
use kylix_apps::{distributed_pagerank, PageRankConfig};
use kylix_net::{Comm, LocalCluster};
use kylix_netsim::{NicModel, SimCluster};
use kylix_powerlaw::{Csr, DatasetSpec, DensityModel};

/// Generate → design → run → validate: the full user journey.
#[test]
fn designed_network_runs_pagerank_correctly() {
    let spec = DatasetSpec::twitter_like(20_000); // 3000 vertices, 75k edges
    let m = 16;
    let plan = optimal_degrees(&DesignInput {
        m,
        model: spec.density_model(),
        lambda0: spec.lambda0(m),
        elem_bytes: 8,
        min_packet_bytes: 2_000.0,
    });
    assert_eq!(plan.size(), m);

    let graph = spec.generate(3);
    let parts = graph.partition_random(m, 4);
    let iters = 5;
    let cfg = PageRankConfig {
        damping: 0.85,
        iterations: iters,
        compute_per_edge: 0.0,
    };
    let expected = Csr::from_edges(spec.n_vertices, &graph.edges).pagerank_reference(iters, 0.85);
    let outcomes = LocalCluster::run(m, |mut comm| {
        let me = comm.rank();
        let kylix = Kylix::new(plan.clone());
        distributed_pagerank(&mut comm, &kylix, spec.n_vertices, &parts[me].edges, &cfg).unwrap()
    });
    let mut checked = 0;
    for o in &outcomes {
        for &(v, r) in &o.ranks {
            assert!(
                (r - expected[v as usize]).abs() < 1e-9,
                "vertex {v} (plan {plan})"
            );
            checked += 1;
        }
    }
    assert!(checked > 1000, "only {checked} ranks validated");
}

/// The same PageRank on the simulator produces identical ranks and a
/// physically sensible makespan.
#[test]
fn simulated_pagerank_matches_thread_pagerank() {
    let spec = DatasetSpec::yahoo_like(200_000); // 7000 vertices, 30k edges
    let m = 8;
    let plan = NetworkPlan::new(&[4, 2]);
    let graph = spec.generate(5);
    let parts = graph.partition_random(m, 6);
    let cfg = PageRankConfig {
        damping: 0.85,
        iterations: 4,
        compute_per_edge: 1e-9,
    };
    let on_threads: Vec<Vec<(u64, f64)>> = LocalCluster::run(m, |mut comm| {
        let me = comm.rank();
        distributed_pagerank(
            &mut comm,
            &Kylix::new(plan.clone()),
            spec.n_vertices,
            &parts[me].edges,
            &cfg,
        )
        .unwrap()
        .ranks
    });
    let cluster = SimCluster::new(m, NicModel::ec2_10g()).seed(9);
    let on_sim: Vec<(Vec<(u64, f64)>, f64)> = cluster.run_all(|mut comm| {
        let me = comm.rank();
        let out = distributed_pagerank(
            &mut comm,
            &Kylix::new(plan.clone()),
            spec.n_vertices,
            &parts[me].edges,
            &cfg,
        )
        .unwrap();
        (out.ranks, comm.now())
    });
    for (t, (s, makespan)) in on_threads.iter().zip(&on_sim) {
        assert_eq!(t, s, "results must be identical across substrates");
        assert!(*makespan > 0.0 && *makespan < 60.0, "makespan {makespan}");
    }
}

/// Replicated PageRank with node failures still matches the reference.
#[test]
fn replicated_pagerank_survives_failures_on_simulator() {
    let n = 400u64;
    let graph = kylix_powerlaw::EdgeList::power_law(n, 3000, 1.1, 1.1, 7);
    let m_logical = 4;
    let parts = graph.partition_random(m_logical, 8);
    let iters = 4;
    let cfg = PageRankConfig {
        damping: 0.85,
        iterations: iters,
        compute_per_edge: 0.0,
    };
    let expected = Csr::from_edges(n, &graph.edges).pagerank_reference(iters, 0.85);
    // 8 physical = 4 logical x 2; kill one replica of logical 2.
    let cluster = SimCluster::new(8, NicModel::ec2_10g())
        .seed(11)
        .failures(&[6]);
    let outcomes = cluster.run(|comm| {
        let mut rc = ReplicatedComm::new(comm, 2);
        let me = rc.rank();
        distributed_pagerank(
            &mut rc,
            &Kylix::new(NetworkPlan::new(&[2, 2])),
            n,
            &parts[me].edges,
            &cfg,
        )
        .unwrap()
        .ranks
    });
    let mut checked = 0;
    for (phys, ranks) in outcomes.iter().enumerate() {
        if phys == 6 {
            assert!(ranks.is_none());
            continue;
        }
        for &(v, r) in ranks.as_ref().unwrap() {
            assert!(
                (r - expected[v as usize]).abs() < 1e-9,
                "phys {phys} vertex {v}"
            );
            checked += 1;
        }
    }
    assert!(checked > 0);
}

/// The design workflow's plan beats both classical topologies on the
/// simulator at the paper's operating point (64 nodes, direct packets
/// far below the efficient size). At small clusters with big packets
/// the workflow correctly degenerates to direct itself.
#[test]
fn designed_plan_is_competitive_on_simulator() {
    let m = 64;
    // Sized so per-node volume ≈ 25.6 KB at 1/1000 NIC scale — the
    // paper's 0.4 MB-direct-packet regime.
    let model = DensityModel::new(15_238, 1.1);
    let lambda0 = model.lambda_for_density(0.21);
    let nic = NicModel {
        overhead: NicModel::ec2_10g_collective().overhead / 1000.0,
        latency: NicModel::ec2_10g_collective().latency / 1000.0,
        cpu_per_msg: NicModel::ec2_10g_collective().cpu_per_msg / 1000.0,
        ..NicModel::ec2_10g_collective()
    };
    let designed = optimal_degrees(&DesignInput {
        m,
        model,
        lambda0,
        elem_bytes: 8,
        min_packet_bytes: NicModel::ec2_10g().min_efficient_packet(0.8) / 1000.0,
    });
    let gen = kylix_powerlaw::PartitionGenerator::new(model, lambda0, 13);
    let indices: Vec<Vec<u64>> = (0..m).map(|i| gen.indices(i)).collect();
    let span_of = |plan: &NetworkPlan| -> f64 {
        let cluster = SimCluster::new(m, nic).seed(2);
        cluster
            .run_all(|mut comm| {
                let me = comm.rank();
                let kylix = Kylix::new(plan.clone());
                let mut state = kylix
                    .configure(&mut comm, &indices[me], &indices[me], 0)
                    .unwrap();
                let vals = vec![1.0f64; indices[me].len()];
                state
                    .reduce(&mut comm, &vals, kylix_sparse::SumReducer)
                    .unwrap();
                comm.now()
            })
            .into_iter()
            .fold(0.0, f64::max)
    };
    let t_designed = span_of(&designed);
    let t_direct = span_of(&NetworkPlan::direct(m));
    let t_binary = span_of(&NetworkPlan::binary(m));
    assert!(
        t_designed <= t_direct * 1.05 && t_designed <= t_binary * 1.05,
        "designed {designed}: {t_designed} vs direct {t_direct}, binary {t_binary}"
    );
}
