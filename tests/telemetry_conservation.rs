//! Telemetry conservation laws.
//!
//! The counters are only trustworthy if they balance like a ledger:
//!
//! * **Fault-free**: a completed collective consumes every message it
//!   sends, so per `(phase, layer)` the cluster-wide sent totals must
//!   equal the received totals exactly — bytes and messages. (The
//!   self-addressed pseudo-phase is excluded: packets to self never
//!   cross the wire.)
//! * **Under faults**: with a chaos layer dropping and duplicating
//!   frames and the reliability layer repairing the damage, the *wire*
//!   identity must hold exactly — messages on the wire equal logical
//!   sends minus chaos drops plus chaos duplicates — while delivery
//!   stays complete and in order, paid for with retransmissions.

use bytes::Bytes;
use kylix::{Kylix, NetworkPlan};
use kylix_net::telemetry::{Clock, Counter, Telemetry, SELF_PHASE};
use kylix_net::{Comm, FaultPlan, LinkFaults, LocalCluster, Phase, ReliableComm, Tag};
use kylix_powerlaw::{DensityModel, PartitionGenerator};
use kylix_sparse::SumReducer;

fn workload(m: usize, n: u64, density: f64, seed: u64) -> Vec<Vec<u64>> {
    let model = DensityModel::new(n, 1.1);
    let gen = PartitionGenerator::with_density(model, density, seed);
    (0..m).map(|i| gen.indices(i)).collect()
}

/// Fault-free allreduce: Σ sent == Σ received per `(phase, layer)`,
/// bytes and messages, across the whole cluster.
#[test]
fn fault_free_collective_conserves_messages() {
    let m = 8;
    let plan = NetworkPlan::new(&[4, 2]);
    let idx = workload(m, 4096, 0.3, 9);
    let tel = Telemetry::new(m, Clock::Wall);
    LocalCluster::run_with_telemetry(m, &tel, |mut comm| {
        let me = comm.rank();
        let kylix = Kylix::new(plan.clone());
        let mut state = kylix.configure(&mut comm, &idx[me], &idx[me], 0).unwrap();
        let vals = vec![1.0f64; idx[me].len()];
        state.reduce(&mut comm, &vals, SumReducer).unwrap();
    });
    let rep = tel.report();
    let mut checked = 0u32;
    for phase in 0..SELF_PHASE {
        for layer in rep.layers() {
            let sent = rep.on(phase, layer, Counter::MsgsSent);
            let recv = rep.on(phase, layer, Counter::MsgsRecv);
            assert_eq!(
                sent, recv,
                "phase {phase} layer {layer}: {sent} msgs sent vs {recv} received"
            );
            assert_eq!(
                rep.on(phase, layer, Counter::BytesSent),
                rep.on(phase, layer, Counter::BytesRecv),
                "phase {phase} layer {layer}: byte totals diverged"
            );
            checked += u32::from(sent > 0);
        }
    }
    assert!(
        checked >= 3,
        "expected traffic on several (phase, layer) slots"
    );
    // Self-addressed parts never cross the wire: sent only.
    assert!(rep.on(SELF_PHASE, 0, Counter::MsgsSent) > 0);
    assert_eq!(rep.on(SELF_PHASE, 0, Counter::MsgsRecv), 0);
}

/// Messages streamed rank 0 → rank 1 in the lossy-link harness.
const STREAM_LEN: u64 = 50;

/// Two ranks over `ReliableComm<ChaosComm<ThreadComm>>` with a
/// one-directional drop + duplicate plan on the data link. After both
/// sides drain, the ledger must balance:
///
/// * wire identity (exact): thread-level messages sent == logical sends
///   into the chaos layer − drops + duplicates, where logical sends are
///   themselves reconstructed from telemetry (payload stream + acks +
///   retransmits);
/// * the stream arrives complete and in order despite the drops;
/// * repairs are visible: retransmits > 0 when frames were dropped,
///   and nothing was abandoned.
#[test]
fn lossy_link_ledger_balances() {
    let m = 2;
    let tag = Tag::new(Phase::App, 0, 1);
    // Data flows 0 → 1 over a bad link; the ack path 1 → 0 stays clean
    // so the drain below terminates deterministically.
    let faults = FaultPlan::new(11).link(
        0,
        1,
        LinkFaults {
            drop_p: 0.25,
            dup_p: 0.2,
            ..LinkFaults::none()
        },
    );
    let tel = Telemetry::new(m, Clock::Wall);
    let received = LocalCluster::run_with_faults_telemetry(m, &faults, &tel, |chaos| {
        let mut comm = ReliableComm::new(chaos);
        let me = comm.rank();
        let mut got = Vec::new();
        if me == 0 {
            for i in 0..STREAM_LEN {
                comm.send(1, tag, Bytes::from(i.to_le_bytes().to_vec()));
            }
        } else {
            for _ in 0..STREAM_LEN {
                let payload = comm.recv(0, tag).expect("reliable delivery");
                got.push(u64::from_le_bytes(payload[..8].try_into().unwrap()));
            }
        }
        // Drain: retransmit until acked, answer late retransmits.
        comm.flush().expect("drain");
        got
    });

    // Delivery: complete and in order despite the lossy link.
    assert_eq!(received[1], (0..STREAM_LEN).collect::<Vec<u64>>());

    let rep = tel.report();
    let total = |k: Counter| rep.total(k);
    let dropped = total(Counter::FaultsDropped);
    let duplicated = total(Counter::FaultsDuplicated);
    let retransmits = total(Counter::Retransmits);
    let acks = total(Counter::AcksSent);

    // The seeded plan must actually have exercised both fault kinds.
    assert!(dropped > 0, "seed produced no drops");
    assert!(duplicated > 0, "seed produced no duplicates");
    assert!(retransmits > 0, "drops must force retransmissions");
    assert_eq!(total(Counter::GaveUp), 0, "nothing may be abandoned");

    // Wire identity: every logical send (stream + retransmits + acks)
    // either hit the wire once, was dropped, or hit it twice.
    let logical = STREAM_LEN + retransmits + acks;
    assert_eq!(
        total(Counter::MsgsSent),
        logical - dropped + duplicated,
        "wire sends must equal logical sends - drops + duplicates \
         (logical {logical}, dropped {dropped}, duplicated {duplicated})"
    );

    // Receive side: nothing materialises from thin air; at most the
    // frames still in flight when the ranks exited go unreceived.
    assert!(total(Counter::MsgsRecv) <= total(Counter::MsgsSent));
    assert!(total(Counter::BytesRecv) <= total(Counter::BytesSent));
    // Duplicate deliveries were recognised and dropped above the wire.
    assert!(
        total(Counter::DupesDropped) > 0,
        "duplicated frames must be caught by the reliability layer"
    );
}
