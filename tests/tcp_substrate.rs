//! The real-socket substrate under protocol load and under abuse.
//!
//! Three claims pinned here, all over genuine loopback TCP:
//!
//! 1. the full reliability stack composes unchanged on the new
//!    substrate — `ReliableComm<ChaosComm<TcpComm>>` with seeded
//!    drop/duplicate/corrupt faults still produces the exact reference
//!    reduction;
//! 2. killing a rank mid-protocol surfaces `Closed`/`Timeout` on the
//!    live ranks, bounded by the configured patience — never a hang;
//! 3. a successful run tears down cleanly: every socket, reader, and
//!    writer thread is joined when the cluster drops, in bounded time.

use kylix::{reference_allreduce, Kylix, KylixError, NetworkPlan, NodeContribution};
use kylix_net::{Comm, CommError, FaultPlan, LinkFaults, PatienceComm, ReliableComm, TcpCluster};
use kylix_sparse::{SumReducer, Xoshiro256};
use std::time::{Duration, Instant};

const M: usize = 4;

fn workload(seed: u64) -> Vec<NodeContribution<u64>> {
    let mut rng = Xoshiro256::new(seed);
    (0..M)
        .map(|_| {
            let k_out = 1 + rng.next_index(25);
            let out_indices: Vec<u64> = (0..k_out).map(|_| rng.next_below(64)).collect();
            let out_values: Vec<u64> = (0..out_indices.len())
                .map(|_| rng.next_below(1000) + 1)
                .collect();
            let k_in = 1 + rng.next_index(20);
            let in_indices: Vec<u64> = (0..k_in).map(|_| rng.next_below(64)).collect();
            NodeContribution {
                in_indices,
                out_indices,
                out_values,
            }
        })
        .collect()
}

/// Satellite: chaos over TCP. Every link lossy (drops, duplicates,
/// corruption), the reliable layer repairing on top of real sockets —
/// the reduction must still be exact, for several seeds.
#[test]
fn chaos_over_tcp_still_produces_reference_reduction() {
    for seed in [7u64, 19, 301] {
        let plan = NetworkPlan::new(&[2, 2]);
        let nodes = workload(seed);
        let expected = reference_allreduce(&nodes, SumReducer);
        let mut faults = FaultPlan::new(seed);
        for a in 0..M {
            for b in 0..M {
                if a != b {
                    faults = faults.link(
                        a,
                        b,
                        LinkFaults {
                            drop_p: 0.12,
                            dup_p: 0.1,
                            corrupt_p: 0.08,
                            ..LinkFaults::none()
                        },
                    );
                }
            }
        }
        let got = TcpCluster::run_with_faults(M, &faults, |chaos| {
            let mut comm = ReliableComm::new(chaos);
            let me = comm.rank();
            let out = Kylix::new(plan.clone())
                .allreduce_combined(
                    &mut comm,
                    &nodes[me].in_indices,
                    &nodes[me].out_indices,
                    &nodes[me].out_values,
                    SumReducer,
                    0,
                )
                .map(|(v, _)| v);
            comm.flush().expect("flush after collective");
            out
        });
        for (rank, res) in got.iter().enumerate() {
            let v = res.as_ref().unwrap_or_else(|e| {
                panic!("seed {seed} rank {rank}: collective failed over chaos+TCP: {e}")
            });
            assert_eq!(
                v, &expected[rank],
                "seed {seed} rank {rank}: wrong reduction over chaos+TCP"
            );
        }
    }
}

/// Is this failure one a survivor of a peer death is allowed to report?
fn is_peer_death_error(e: &KylixError) -> bool {
    matches!(
        e,
        KylixError::Comm {
            source: CommError::Closed | CommError::Timeout { .. } | CommError::TimeoutAny { .. },
            ..
        }
    )
}

/// Satellite: peer death mid-collective. Rank 0 completes the
/// configuration pass, then its thread exits and its endpoint drops —
/// a node vanishing between protocol phases. The live ranks must all
/// resolve (result or error) within the patience-bounded window:
/// depended-on ranks fail with `Closed`/`Timeout`, nobody hangs out
/// the 60 s default, and nobody reports a wrong value.
#[test]
fn rank_death_mid_collective_fails_live_ranks_fast() {
    const PATIENCE: Duration = Duration::from_millis(400);
    let seed = 5u64;
    let plan = NetworkPlan::new(&[2, 2]);
    let nodes = workload(seed);
    let expected = reference_allreduce(&nodes, SumReducer);
    let start = Instant::now();
    let got: Vec<Option<Result<Vec<u64>, KylixError>>> = TcpCluster::run(M, |comm| {
        let me = comm.rank();
        let mut patient = PatienceComm::new(comm, PATIENCE);
        let kylix = Kylix::new(plan.clone());
        let state = kylix.configure(
            &mut patient,
            &nodes[me].in_indices,
            &nodes[me].out_indices,
            0,
        );
        if me == 0 {
            // Die between configure and reduce: drop the endpoint.
            return None;
        }
        let mut state = match state {
            Ok(s) => s,
            Err(e) => return Some(Err(e)),
        };
        Some(state.reduce(&mut patient, &nodes[me].out_values, SumReducer))
    });
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(30),
        "live ranks must unwind within the patience budget, took {elapsed:?}"
    );
    let mut failures = 0;
    for (rank, res) in got.iter().enumerate() {
        match res {
            None => assert_eq!(rank, 0, "only rank 0 was killed"),
            Some(Ok(v)) => assert_eq!(
                v, &expected[rank],
                "rank {rank}: a completing survivor must still be exact"
            ),
            Some(Err(e)) => {
                assert!(
                    is_peer_death_error(e),
                    "rank {rank}: expected Closed/Timeout, got {e}"
                );
                failures += 1;
            }
        }
    }
    assert!(
        failures >= 1,
        "the dead rank's reduction partners must notice its death"
    );
}

/// Satellite: clean shutdown. A fully successful collective, then the
/// whole cluster drops — every worker thread joined, bounded wall
/// clock, exact results. Run twice back-to-back to catch port/thread
/// leakage between clusters.
#[test]
fn successful_run_tears_down_cleanly_and_repeatably() {
    for round in 0..2 {
        let seed = 23 + round as u64;
        let plan = NetworkPlan::new(&[2, 2]);
        let nodes = workload(seed);
        let expected = reference_allreduce(&nodes, SumReducer);
        let start = Instant::now();
        let got = TcpCluster::run(M, |mut comm| {
            let me = comm.rank();
            Kylix::new(plan.clone())
                .allreduce_combined(
                    &mut comm,
                    &nodes[me].in_indices,
                    &nodes[me].out_indices,
                    &nodes[me].out_values,
                    SumReducer,
                    0,
                )
                .map(|(v, _)| v)
                .unwrap()
        });
        // run() returns only after every rank thread joined, and each
        // rank thread only returns after its TcpComm dropped — so this
        // bound covers the full teardown, sockets and workers included.
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_secs(30),
            "round {round}: teardown not bounded, took {elapsed:?}"
        );
        assert_eq!(got, expected, "round {round}: wrong reduction");
    }
}
