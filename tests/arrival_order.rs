//! Arrival-order reduction: determinism and chaos-interplay guarantees.
//!
//! The hot path (core's `reduce.rs`) receives slices opportunistically
//! (`recv_any`) instead of in fixed group order. These tests pin the
//! contract that makes that safe to ship as the default:
//!
//! * **deterministic mode** (default for floats) must produce results
//!   bit-identical to the fixed-order schedule — on the virtual-time
//!   simulator under jitter, across different jitter seeds, and on real
//!   racing threads;
//! * integer reducers, which combine immediately on arrival, must stay
//!   exact;
//! * opting out (`deterministic = Some(false)`) stays numerically
//!   correct, just not bit-reproducible;
//! * many pooled-buffer `reduce()` ops under ChaosComm
//!   duplicate/delay faults (repaired by `ReliableComm`) must finish
//!   correctly without leaking receive-stash entries.

use kylix::{reference_allreduce, Kylix, NetworkPlan, NodeContribution, RecvOrder};
use kylix_net::{Comm, FaultPlan, LocalCluster, ReliableComm};
use kylix_netsim::{NicModel, SimCluster};
use kylix_sparse::{SumReducer, Xoshiro256};

const M: usize = 16;
const DEGREES: [usize; 2] = [4, 4];

/// Per-rank overlapping index sets and float values with spread
/// exponents, so the sum genuinely depends on combine order.
fn workload(seed: u64) -> Vec<NodeContribution<f64>> {
    let mut rng = Xoshiro256::new(seed);
    (0..M)
        .map(|_| {
            let k_out = 8 + rng.next_index(24);
            let out_indices: Vec<u64> = (0..k_out).map(|_| rng.next_below(96)).collect();
            let out_values: Vec<f64> = (0..out_indices.len())
                .map(|_| {
                    let mag = rng.next_index(12) as i32 - 6;
                    (rng.next_below(1000) as f64 + 1.0) * 10f64.powi(mag)
                })
                .collect();
            let k_in = 4 + rng.next_index(16);
            let in_indices: Vec<u64> = (0..k_in).map(|_| rng.next_below(96)).collect();
            NodeContribution {
                in_indices,
                out_indices,
                out_values,
            }
        })
        .collect()
}

/// One full configure-then-reduce run on the jittery simulator.
fn sim_run(
    nodes: &[NodeContribution<f64>],
    sim_seed: u64,
    order: RecvOrder,
    deterministic: Option<bool>,
) -> Vec<Vec<f64>> {
    let plan = NetworkPlan::new(&DEGREES);
    let cluster = SimCluster::new(M, NicModel::ec2_10g()).seed(sim_seed);
    cluster.run_all(|mut comm| {
        let me = comm.rank();
        let kylix = Kylix::new(plan.clone());
        let mut state = kylix
            .configure(&mut comm, &nodes[me].in_indices, &nodes[me].out_indices, 0)
            .unwrap();
        state.recv_order = order;
        state.deterministic = deterministic;
        state
            .reduce(&mut comm, &nodes[me].out_values, SumReducer)
            .unwrap()
    })
}

fn assert_bitwise_eq(a: &[Vec<f64>], b: &[Vec<f64>], what: &str) {
    for (rank, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.len(), y.len(), "{what}: rank {rank} length");
        for (i, (u, v)) in x.iter().zip(y).enumerate() {
            assert_eq!(
                u.to_bits(),
                v.to_bits(),
                "{what}: rank {rank} elem {i}: {u} vs {v}"
            );
        }
    }
}

/// Deterministic arrival-order mode is bit-identical to the fixed-order
/// schedule, and stable across jitter seeds (i.e. across genuinely
/// different arrival orders).
#[test]
fn deterministic_mode_is_bit_identical_across_schedules() {
    let nodes = workload(41);
    let fixed = sim_run(&nodes, 1, RecvOrder::Fixed, None);
    let arrival_a = sim_run(&nodes, 1, RecvOrder::Arrival, None);
    let arrival_b = sim_run(&nodes, 999, RecvOrder::Arrival, None);
    assert_bitwise_eq(&fixed, &arrival_a, "fixed vs arrival (same seed)");
    assert_bitwise_eq(&fixed, &arrival_b, "fixed vs arrival (other jitter seed)");
}

/// Opting out of determinism for floats keeps results numerically
/// correct against the sequential reference.
#[test]
fn nondeterministic_floats_stay_numerically_correct() {
    let nodes = workload(43);
    let expected = reference_allreduce(&nodes, SumReducer);
    let got = sim_run(&nodes, 7, RecvOrder::Arrival, Some(false));
    for (rank, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(g.len(), e.len());
        for (a, b) in g.iter().zip(e) {
            let tol = 1e-9 * b.abs().max(1.0);
            assert!((a - b).abs() <= tol, "rank {rank}: {a} vs {b}");
        }
    }
}

/// On real racing threads, deterministic arrival-order runs match the
/// fixed-order baseline bit for bit, reduce after reduce.
#[test]
fn thread_cluster_runs_are_bit_identical() {
    const OPS: usize = 5;
    let nodes = workload(47);
    let plan = NetworkPlan::new(&DEGREES);
    let run = |order: RecvOrder| -> Vec<Vec<Vec<f64>>> {
        LocalCluster::run(M, |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(plan.clone());
            let mut state = kylix
                .configure(&mut comm, &nodes[me].in_indices, &nodes[me].out_indices, 0)
                .unwrap();
            state.recv_order = order;
            let mut per_op = Vec::new();
            let mut out = Vec::new();
            for _ in 0..OPS {
                state
                    .reduce_into(&mut comm, &nodes[me].out_values, SumReducer, &mut out)
                    .unwrap();
                per_op.push(out.clone());
            }
            per_op
        })
    };
    let fixed = run(RecvOrder::Fixed);
    let arrival = run(RecvOrder::Arrival);
    for (f, a) in fixed.iter().zip(&arrival) {
        assert_bitwise_eq(f, a, "threaded fixed vs arrival");
    }
}

/// Integer reducers combine immediately on arrival and must stay exact.
#[test]
fn integer_arrival_order_is_exact() {
    let mut rng = Xoshiro256::new(53);
    let nodes: Vec<NodeContribution<u64>> = (0..M)
        .map(|_| {
            let k = 4 + rng.next_index(20);
            let out_indices: Vec<u64> = (0..k).map(|_| rng.next_below(64)).collect();
            let out_values: Vec<u64> = (0..out_indices.len())
                .map(|_| rng.next_below(1000))
                .collect();
            NodeContribution {
                in_indices: out_indices.clone(),
                out_indices,
                out_values,
            }
        })
        .collect();
    let expected = reference_allreduce(&nodes, SumReducer);
    let plan = NetworkPlan::new(&DEGREES);
    let got = LocalCluster::run(M, |mut comm| {
        let me = comm.rank();
        let kylix = Kylix::new(plan.clone());
        let mut state = kylix
            .configure(&mut comm, &nodes[me].in_indices, &nodes[me].out_indices, 0)
            .unwrap();
        assert_eq!(
            state.recv_order,
            RecvOrder::Arrival,
            "arrival is the default"
        );
        state
            .reduce(&mut comm, &nodes[me].out_values, SumReducer)
            .unwrap()
    });
    for (rank, (g, e)) in got.iter().zip(&expected).enumerate() {
        assert_eq!(g, e, "rank {rank}");
    }
}

/// Chaos interplay: many pooled-buffer reduce ops over duplicated and
/// delayed links (repaired by the reliability layer) finish correctly
/// and leave the receive stash and pending-discard table empty — the
/// pooled hot path must not leak stash entries under chaos.
#[test]
fn pooled_reduces_under_chaos_keep_the_stash_clean() {
    const OPS: usize = 12;
    let nodes = workload(59);
    let expected = reference_allreduce(&nodes, SumReducer);
    let plan = NetworkPlan::new(&DEGREES);
    let faults = FaultPlan::new(61).duplicate_rate(0.15).delay_rate(0.1);
    let out = LocalCluster::run_with_faults(M, &faults, |chaos| {
        let mut comm = ReliableComm::new(chaos);
        let me = comm.rank();
        let kylix = Kylix::new(plan.clone());
        let mut state = kylix
            .configure(&mut comm, &nodes[me].in_indices, &nodes[me].out_indices, 0)
            .unwrap();
        let mut results = Vec::new();
        let mut out = Vec::new();
        for _ in 0..OPS {
            state
                .reduce_into(&mut comm, &nodes[me].out_values, SumReducer, &mut out)
                .unwrap();
            results.push(out.clone());
        }
        comm.flush().unwrap();
        let tc = comm.into_inner().into_inner();
        (results, tc.stash_len(), tc.pending_discard_len())
    });
    for (rank, (results, stash, pending)) in out.iter().enumerate() {
        for (op, got) in results.iter().enumerate() {
            assert_eq!(got.len(), expected[rank].len());
            for (a, b) in got.iter().zip(&expected[rank]) {
                let tol = 1e-9 * b.abs().max(1.0);
                assert!((a - b).abs() <= tol, "rank {rank} op {op}: {a} vs {b}");
            }
        }
        assert_eq!(*stash, 0, "rank {rank}: leaked stash entries");
        assert_eq!(*pending, 0, "rank {rank}: leaked pending discards");
    }
}
