//! Property tests for the TCP wire-frame codec.
//!
//! TCP is a byte stream: the kernel may hand the reader any torn,
//! partial, or concatenated view of what was written. Whatever the
//! tearing, the decoder must reproduce exactly the frames that were
//! encoded — same tags, same payloads, same order — and a declared
//! length beyond the cap must be rejected *before* any allocation, no
//! matter where in the stream it appears.

use kylix_net::{encode_frame, FrameDecoder, Phase, Tag, FRAME_HEADER, MAX_FRAME_BYTES};
use proptest::prelude::*;

const PHASES: [Phase; 6] = [
    Phase::Config,
    Phase::ReduceDown,
    Phase::ReduceUp,
    Phase::Combined,
    Phase::App,
    Phase::Control,
];

fn arb_tag() -> impl Strategy<Value = Tag> {
    (0usize..PHASES.len(), any::<u16>(), any::<u32>())
        .prop_map(|(p, layer, seq)| Tag::new(PHASES[p], layer, seq))
}

fn arb_message() -> impl Strategy<Value = (Tag, Vec<u8>)> {
    (arb_tag(), prop::collection::vec(any::<u8>(), 0..2048))
}

/// Feed `wire` to a decoder in chunks cycling through `chunk_sizes`;
/// return every decoded frame.
fn decode_in_chunks(wire: &[u8], chunk_sizes: &[usize]) -> Vec<(Tag, Vec<u8>)> {
    let mut dec = FrameDecoder::new();
    let mut out = Vec::new();
    let mut offset = 0;
    let mut k = 0;
    while offset < wire.len() {
        let step = if chunk_sizes.is_empty() {
            wire.len()
        } else {
            chunk_sizes[k % chunk_sizes.len()].max(1)
        };
        k += 1;
        let end = (offset + step).min(wire.len());
        dec.push(&wire[offset..end]);
        offset = end;
        while let Some((tag, payload)) = dec.next_frame().expect("valid wire never errors") {
            out.push((tag, payload.to_vec()));
        }
    }
    out
}

proptest! {
    /// Round trip through arbitrary tearing: any message sequence,
    /// concatenated on one wire and read back in arbitrary chunk
    /// sizes, decodes to exactly the input sequence.
    #[test]
    fn torn_and_concatenated_reads_round_trip(
        msgs in prop::collection::vec(arb_message(), 0..20),
        chunk_sizes in prop::collection::vec(1usize..97, 0..16),
    ) {
        let mut wire = Vec::new();
        for (tag, payload) in &msgs {
            wire.extend_from_slice(&encode_frame(*tag, payload));
        }
        let got = decode_in_chunks(&wire, &chunk_sizes);
        prop_assert_eq!(got, msgs);
    }

    /// A truncated wire — any strict prefix of a valid stream — never
    /// errors: the decoder yields the complete frames and then waits
    /// for more bytes.
    #[test]
    fn any_prefix_is_incomplete_never_an_error(
        msgs in prop::collection::vec(arb_message(), 1..8),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut wire = Vec::new();
        for (tag, payload) in &msgs {
            wire.extend_from_slice(&encode_frame(*tag, payload));
        }
        let cut = ((wire.len() as f64) * cut_frac) as usize;
        let mut dec = FrameDecoder::new();
        dec.push(&wire[..cut]);
        let mut n = 0usize;
        while let Some((tag, payload)) = dec.next_frame().expect("prefix must not error") {
            prop_assert_eq!(tag, msgs[n].0);
            prop_assert_eq!(payload.to_vec(), msgs[n].1.clone());
            n += 1;
        }
        // Only whole frames came out, and the tail is retained, not
        // silently dropped.
        let consumed: usize = msgs[..n]
            .iter()
            .map(|(_, p)| FRAME_HEADER + p.len())
            .sum();
        prop_assert_eq!(dec.buffered(), cut - consumed);
    }

    /// Oversized declared lengths are rejected wherever they appear in
    /// the stream — including after valid frames — and rejection comes
    /// from the 4-byte prefix alone, before the body exists.
    #[test]
    fn oversized_length_rejected_mid_stream(
        msgs in prop::collection::vec(arb_message(), 0..4),
        excess in 1u64..u32::MAX as u64,
    ) {
        let declared = (MAX_FRAME_BYTES as u64 + 8 + excess).min(u32::MAX as u64) as u32;
        let mut wire = Vec::new();
        for (tag, payload) in &msgs {
            wire.extend_from_slice(&encode_frame(*tag, payload));
        }
        wire.extend_from_slice(&declared.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.push(&wire);
        for (tag, payload) in &msgs {
            let (t, p) = dec
                .next_frame()
                .expect("valid leading frames decode")
                .expect("complete");
            prop_assert_eq!(t, *tag);
            prop_assert_eq!(p.to_vec(), payload.clone());
        }
        prop_assert!(dec.next_frame().is_err(), "hostile prefix must error");
    }

    /// Undersized declared lengths (too small to hold the tag) are
    /// equally fatal.
    #[test]
    fn undersized_length_rejected(bad_len in 0u32..8) {
        let mut dec = FrameDecoder::new();
        dec.push(&bad_len.to_le_bytes());
        dec.push(&[0u8; 16]);
        prop_assert!(dec.next_frame().is_err());
    }
}
