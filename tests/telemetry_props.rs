//! Property tests for the telemetry conservation laws.
//!
//! The deterministic ledger checks live in `telemetry_conservation.rs`;
//! here the same invariants are hammered across random seeds, random
//! workload shapes, and random fault rates:
//!
//! * fault-free collectives conserve messages and bytes per
//!   `(phase, layer)` on any topology and workload;
//! * the wire identity `sent == logical − drops + duplicates` holds for
//!   *any* drop/duplicate rates, including zero, while delivery stays
//!   complete and in order.

use bytes::Bytes;
use kylix::{Kylix, NetworkPlan};
use kylix_net::telemetry::{Clock, Counter, Telemetry, SELF_PHASE};
use kylix_net::{Comm, FaultPlan, LinkFaults, LocalCluster, Phase, ReliableComm, Tag};
use kylix_powerlaw::{DensityModel, PartitionGenerator};
use kylix_sparse::SumReducer;
use proptest::prelude::*;

/// Topologies the conservation property samples over (kept small so a
/// case stays cheap; the heterogeneous one exercises unequal degrees).
const TOPOLOGIES: &[&[usize]] = &[&[2, 2], &[4, 2], &[2, 2, 2]];

fn workload(m: usize, seed: u64) -> Vec<Vec<u64>> {
    let model = DensityModel::new(2048, 1.1);
    let gen = PartitionGenerator::with_density(model, 0.3, seed);
    (0..m).map(|i| gen.indices(i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Σ sent == Σ received per `(phase, layer)` after any fault-free
    /// collective, on any sampled topology.
    #[test]
    fn fault_free_conservation(topo_sel in 0usize..TOPOLOGIES.len(), seed in 0u64..1000) {
        let plan = NetworkPlan::new(TOPOLOGIES[topo_sel]);
        let m = plan.size();
        let idx = workload(m, seed);
        let tel = Telemetry::new(m, Clock::Wall);
        LocalCluster::run_with_telemetry(m, &tel, |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(plan.clone());
            let mut state = kylix.configure(&mut comm, &idx[me], &idx[me], 0).unwrap();
            let vals = vec![1.0f64; idx[me].len()];
            state.reduce(&mut comm, &vals, SumReducer).unwrap();
        });
        let rep = tel.report();
        for phase in 0..SELF_PHASE {
            for layer in rep.layers() {
                prop_assert_eq!(
                    rep.on(phase, layer, Counter::MsgsSent),
                    rep.on(phase, layer, Counter::MsgsRecv),
                    "phase {} layer {}", phase, layer
                );
                prop_assert_eq!(
                    rep.on(phase, layer, Counter::BytesSent),
                    rep.on(phase, layer, Counter::BytesRecv),
                    "phase {} layer {}", phase, layer
                );
            }
        }
        prop_assert!(rep.total(Counter::MsgsSent) > 0);
    }

    /// The wire identity holds for arbitrary drop/duplicate rates on
    /// the data link, and the stream still arrives complete and in
    /// order.
    #[test]
    fn lossy_wire_identity(
        seed in 0u64..1000,
        drop_p in 0.0f64..0.3,
        dup_p in 0.0f64..0.3,
    ) {
        const STREAM_LEN: u64 = 30;
        let tag = Tag::new(Phase::App, 0, 1);
        let faults = FaultPlan::new(seed).link(0, 1, LinkFaults {
            drop_p,
            dup_p,
            ..LinkFaults::none()
        });
        let tel = Telemetry::new(2, Clock::Wall);
        let received = LocalCluster::run_with_faults_telemetry(2, &faults, &tel, |chaos| {
            let mut comm = ReliableComm::new(chaos);
            let me = comm.rank();
            let mut got = Vec::new();
            if me == 0 {
                for i in 0..STREAM_LEN {
                    comm.send(1, tag, Bytes::from(i.to_le_bytes().to_vec()));
                }
            } else {
                for _ in 0..STREAM_LEN {
                    let payload = comm.recv(0, tag).expect("reliable delivery");
                    got.push(u64::from_le_bytes(payload[..8].try_into().unwrap()));
                }
            }
            comm.flush().expect("drain");
            got
        });
        prop_assert_eq!(&received[1], &(0..STREAM_LEN).collect::<Vec<u64>>());

        let rep = tel.report();
        let logical = STREAM_LEN
            + rep.total(Counter::Retransmits)
            + rep.total(Counter::AcksSent);
        prop_assert_eq!(
            rep.total(Counter::MsgsSent),
            logical - rep.total(Counter::FaultsDropped) + rep.total(Counter::FaultsDuplicated)
        );
        prop_assert!(rep.total(Counter::MsgsRecv) <= rep.total(Counter::MsgsSent));
        prop_assert_eq!(rep.total(Counter::GaveUp), 0);
    }
}
