//! Cross-crate invariants on traffic accounting and virtual timing.

use kylix::{Kylix, NetworkPlan};
use kylix_net::Comm;
use kylix_netsim::{NicModel, SimCluster};
use kylix_powerlaw::{DensityModel, PartitionGenerator};
use kylix_sparse::SumReducer;

fn workload(m: usize, n: u64, density: f64, seed: u64) -> Vec<Vec<u64>> {
    let model = DensityModel::new(n, 1.1);
    let gen = PartitionGenerator::with_density(model, density, seed);
    (0..m).map(|i| gen.indices(i)).collect()
}

/// The simulator's per-layer traffic counters agree with the routing
/// state's own volume accounting (down pass, self-packets included).
#[test]
fn traffic_stats_match_routing_state_volumes() {
    let m = 8;
    let plan = NetworkPlan::new(&[4, 2]);
    let idx = workload(m, 4096, 0.25, 1);
    let cluster = SimCluster::new(m, NicModel::ideal(1e9));
    // Configure, then reset counters and run exactly one reduce.
    let per_node: Vec<(Vec<usize>, usize)> = {
        let idx = &idx;
        let plan = &plan;
        let cluster = &cluster;
        let states: Vec<(Vec<usize>, usize)> = cluster.run_all(move |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(plan.clone());
            let mut state = kylix.configure(&mut comm, &idx[me], &idx[me], 0).unwrap();
            // Reduce once after a traffic reset marker: we cannot reset
            // globally from inside a node, so instead run the reduce on
            // layer-tagged channels and subtract config bytes later via
            // the routing state itself.
            let vals = vec![1.0f64; idx[me].len()];
            state.reduce(&mut comm, &vals, SumReducer).unwrap();
            (state.down_volume_elems(), state.bottom_elems())
        });
        states
    };
    // Expected reduce-phase value bytes per layer: every element of the
    // down pass costs 8 bytes of payload plus an 8-byte count header
    // per message/self-part (d messages incl. self per node per layer).
    let report = cluster.traffic();
    for (layer, &d) in plan.degrees().iter().enumerate() {
        let elems: usize = per_node.iter().map(|p| p.0[layer]).sum();
        let payload = elems as u64 * 8;
        let measured = report.bytes_on(layer as u16);
        // Layer traffic includes config (8B/index + headers) and reduce
        // down (8B/value + headers) and reduce up (8B/value + headers):
        // bound it between the pure down-pass payload and 4x it. Each of
        // the m*d parts carries fixed framing: config 24B (two key
        // counts + seal), down 16B (count + seal), up 16B (count + seal).
        assert!(
            measured >= payload,
            "layer {layer}: measured {measured} < down payload {payload}"
        );
        assert!(
            measured <= 4 * payload + (m * d * (24 + 16 + 16)) as u64,
            "layer {layer}: measured {measured} vs payload {payload}"
        );
    }
}

/// Virtual makespans scale sensibly: more data, more time; a faster
/// network, less time.
#[test]
fn virtual_time_responds_to_physics() {
    let m = 8;
    let plan = NetworkPlan::new(&[4, 2]);
    let small = workload(m, 2048, 0.2, 2);
    let large = workload(m, 32768, 0.2, 2);
    let span = |idx: &Vec<Vec<u64>>, nic: NicModel| -> f64 {
        let idx = idx.clone();
        let plan = plan.clone();
        SimCluster::new(m, nic)
            .seed(1)
            .run_all(move |mut comm| {
                let me = comm.rank();
                let kylix = Kylix::new(plan.clone());
                let mut state = kylix.configure(&mut comm, &idx[me], &idx[me], 0).unwrap();
                let vals = vec![1.0f64; idx[me].len()];
                state.reduce(&mut comm, &vals, SumReducer).unwrap();
                comm.now()
            })
            .into_iter()
            .fold(0.0, f64::max)
    };
    // Bandwidth-bound regime (tiny per-message overhead) so volume is
    // the driver; the full EC2 preset at these sizes is overhead-bound
    // and nearly flat in volume — which is itself the paper's point.
    let nic = NicModel {
        overhead: 1e-9,
        ..NicModel::ideal(1e9)
    };
    let t_small = span(&small, nic);
    let t_large = span(&large, nic);
    assert!(
        t_large > 2.0 * t_small,
        "16x data should cost clearly more: {t_small} vs {t_large}"
    );
    let fast = NicModel {
        bandwidth: nic.bandwidth * 10.0,
        ..nic
    };
    let t_fast = span(&large, fast);
    assert!(
        t_fast < t_large,
        "10x bandwidth should help: {t_large} -> {t_fast}"
    );
}

/// Jitter changes timing but never results; different seeds give
/// different (deterministic) makespans.
#[test]
fn jitter_perturbs_time_not_values() {
    let m = 4;
    let plan = NetworkPlan::new(&[2, 2]);
    let idx = workload(m, 1024, 0.3, 3);
    let run = |seed: u64| -> (Vec<Vec<f64>>, f64) {
        let idx = idx.clone();
        let plan = plan.clone();
        let cluster = SimCluster::new(m, NicModel::ec2_10g().with_jitter(1.0)).seed(seed);
        let out: Vec<(Vec<f64>, f64)> = cluster.run_all(move |mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(plan.clone());
            let vals = vec![1.5f64; idx[me].len()];
            let (r, _) = kylix
                .allreduce_combined(&mut comm, &idx[me], &idx[me], &vals, SumReducer, 0)
                .unwrap();
            (r, comm.now())
        });
        let span = out.iter().map(|o| o.1).fold(0.0, f64::max);
        (out.into_iter().map(|o| o.0).collect(), span)
    };
    let (v1, t1) = run(1);
    let (v2, t2) = run(2);
    assert_eq!(v1, v2, "values must not depend on jitter");
    assert_ne!(t1, t2, "different seeds should shift virtual time");
    // Same seed is bit-identical.
    let (v1b, t1b) = run(1);
    assert_eq!(v1, v1b);
    assert_eq!(t1, t1b);
}
