//! Every application, executed on the virtual-time simulator, over real
//! loopback TCP sockets, and under replication, must agree with its
//! thread-cluster / sequential results: the substrates are
//! interchangeable by construction, so any divergence is a protocol
//! bug.

use kylix::{Kylix, NetworkPlan, ReplicatedComm};
use kylix_apps::bfs::{bfs_reference, distributed_bfs};
use kylix_apps::components::{components_reference, distributed_components};
use kylix_apps::diameter::distributed_diameter;
use kylix_apps::eigen::{power_iteration, power_iteration_reference};
use kylix_apps::sgd::{sgd_reference, Example, SgdWorker};
use kylix_apps::{distributed_pagerank, PageRankConfig};
use kylix_net::TcpCluster;
use kylix_netsim::{NicModel, SimCluster};
use kylix_powerlaw::{Csr, EdgeList, Zipf};
use kylix_sparse::{mix_many, Xoshiro256};

fn split_edges(edges: &[(u32, u32)], m: usize) -> Vec<Vec<(u32, u32)>> {
    (0..m)
        .map(|k| {
            edges
                .iter()
                .enumerate()
                .filter(|(i, _)| i % m == k)
                .map(|(_, e)| *e)
                .collect()
        })
        .collect()
}

#[test]
fn components_on_simulator_match_reference() {
    let n = 150u64;
    let g = EdgeList::power_law(n, 600, 1.0, 1.0, 21);
    let expected = components_reference(n, &g.edges);
    let parts = split_edges(&g.edges, 4);
    let cluster = SimCluster::new(4, NicModel::ec2_10g()).seed(1);
    let results = cluster.run_all(|mut comm| {
        let me = kylix_net::Comm::rank(&comm);
        let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
        distributed_components(&mut comm, &kylix, &parts[me], 64).unwrap()
    });
    for res in &results {
        for &(v, l) in res {
            assert_eq!(l, expected[v as usize]);
        }
    }
}

#[test]
fn bfs_replicated_with_failure_matches_reference() {
    let n = 120u64;
    let g = EdgeList::power_law(n, 700, 1.0, 1.0, 23);
    let expected = bfs_reference(n, &g.edges, 1);
    let parts = split_edges(&g.edges, 4);
    // 8 physical = 4 logical x 2; one replica dead.
    let cluster = SimCluster::new(8, NicModel::ec2_10g())
        .seed(2)
        .failures(&[5]);
    let results = cluster.run(|comm| {
        let mut rc = ReplicatedComm::new(comm, 2);
        let me = kylix_net::Comm::rank(&rc);
        let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
        distributed_bfs(&mut rc, &kylix, &parts[me], 1, 64).unwrap()
    });
    let mut checked = 0;
    for (phys, res) in results.iter().enumerate() {
        if phys == 5 {
            continue;
        }
        for &(v, d) in res.as_ref().unwrap() {
            assert_eq!(d, expected[v as usize], "phys {phys} vertex {v}");
            checked += 1;
        }
    }
    assert!(checked > 0);
}

#[test]
fn diameter_on_simulator_is_deterministic_and_sane() {
    let n = 64u32;
    let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect(); // cycle
    let parts = split_edges(&edges, 2);
    let run = |seed: u64| {
        let cluster = SimCluster::new(2, NicModel::ec2_10g()).seed(seed);
        cluster.run_all(|mut comm| {
            let me = kylix_net::Comm::rank(&comm);
            let kylix = Kylix::new(NetworkPlan::direct(2));
            distributed_diameter(&mut comm, &kylix, &parts[me], n as u64, 16, 36, 5)
                .unwrap()
                .effective_diameter
        })
    };
    let a = run(1);
    let b = run(9);
    assert_eq!(a[0], a[1], "machines disagree");
    assert_eq!(a, b, "jitter seed must not affect estimates");
    assert!(
        (22..=34).contains(&a[0]),
        "64-cycle effective diameter ≈ 0.9·32, got {}",
        a[0]
    );
}

#[test]
fn eigen_on_simulator_matches_reference() {
    let n = 100u64;
    let g = EdgeList::power_law(n, 900, 1.2, 1.2, 31);
    let iters = 10;
    let (_, ref_lambda) = power_iteration_reference(n, &g.edges, iters);
    let parts = split_edges(&g.edges, 4);
    let cluster = SimCluster::new(4, NicModel::ec2_10g()).seed(3);
    let results = cluster.run_all(|mut comm| {
        let me = kylix_net::Comm::rank(&comm);
        let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
        power_iteration(&mut comm, &kylix, n, &parts[me], iters)
            .unwrap()
            .eigenvalue
    });
    for lambda in results {
        assert!((lambda - ref_lambda).abs() < 1e-9);
    }
}

/// The flagship workload on the third substrate: PageRank on a
/// power-law graph over real loopback sockets, validated against the
/// sequential reference — every protocol byte crosses the OS network
/// stack.
#[test]
fn pagerank_over_tcp_loopback_matches_reference() {
    let n = 200u64;
    let g = EdgeList::power_law(n, 900, 1.0, 1.0, 41);
    let iters = 5;
    let cfg = PageRankConfig {
        damping: 0.85,
        iterations: iters,
        compute_per_edge: 0.0,
    };
    let expected = Csr::from_edges(n, &g.edges).pagerank_reference(iters, 0.85);
    let parts = split_edges(&g.edges, 4);
    let outcomes = TcpCluster::run(4, |mut comm| {
        let me = kylix_net::Comm::rank(&comm);
        let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
        distributed_pagerank(&mut comm, &kylix, n, &parts[me], &cfg).unwrap()
    });
    let mut checked = 0;
    for o in &outcomes {
        for &(v, r) in &o.ranks {
            assert!(
                (r - expected[v as usize]).abs() < 1e-9,
                "vertex {v}: {r} vs {}",
                expected[v as usize]
            );
            checked += 1;
        }
    }
    assert!(checked > 0, "no ranks produced over TCP");
}

#[test]
fn sgd_replicated_matches_reference() {
    let m = 2;
    let rounds = 4;
    let n_features = 48u64;
    let zipf = Zipf::new(n_features, 1.1);
    let data: Vec<Vec<Vec<Example>>> = (0..rounds)
        .map(|r| {
            (0..m)
                .map(|mc| {
                    let mut rng = Xoshiro256::new(mix_many(&[77, r as u64, mc as u64]));
                    (0..6)
                        .map(|_| {
                            let mut fs: Vec<u64> =
                                (0..4).map(|_| zipf.sample_index(&mut rng)).collect();
                            fs.sort_unstable();
                            fs.dedup();
                            let label = if fs[0].is_multiple_of(2) { 1.0 } else { -1.0 };
                            Example {
                                features: fs.into_iter().map(|f| (f, 1.0)).collect(),
                                label,
                            }
                        })
                        .collect()
                })
                .collect()
        })
        .collect();
    let lr = 0.3;
    let expected = sgd_reference(&data, lr);
    // 4 physical = 2 logical x 2 replicas on the simulator.
    let cluster = SimCluster::new(4, NicModel::ec2_10g()).seed(5);
    let shards = cluster.run_all(|comm| {
        let mut rc = ReplicatedComm::new(comm, 2);
        let me = kylix_net::Comm::rank(&rc);
        let kylix = Kylix::new(NetworkPlan::direct(2));
        let mut worker = SgdWorker::new(me, m, n_features, lr);
        for (r, machines) in data.iter().enumerate() {
            worker
                .step(&mut rc, &kylix, &machines[me], r as u32 + 1)
                .unwrap();
        }
        worker.shard().collect::<Vec<(u64, f64)>>()
    });
    // Replicas agree; union matches reference.
    assert_eq!(shards[0], shards[2]);
    assert_eq!(shards[1], shards[3]);
    for shard in &shards[..2] {
        for (f, w) in shard {
            let want = expected.get(f).copied().unwrap_or(0.0);
            assert!((w - want).abs() < 1e-9, "feature {f}: {w} vs {want}");
        }
    }
}
