//! Workspace umbrella crate; see README.
