//! Mini-batch logistic regression over combined-mode allreduces — the
//! §I.A.1 workload where in/out feature sets change with every batch.
//!
//! ```text
//! cargo run --release --example minibatch_sgd
//! ```

use kylix::{Kylix, NetworkPlan};
use kylix_apps::sgd::{Example, SgdWorker};
use kylix_net::{Comm, LocalCluster};
use kylix_powerlaw::Zipf;
use kylix_sparse::{mix_many, Xoshiro256};

/// Ground-truth model: feature f carries weight +1 if even, −1 if odd.
fn truth(f: u64) -> f64 {
    if f.is_multiple_of(2) {
        1.0
    } else {
        -1.0
    }
}

fn make_batch(n_features: u64, per_batch: usize, seed: u64) -> Vec<Example> {
    let zipf = Zipf::new(n_features, 1.1);
    let mut rng = Xoshiro256::new(seed);
    (0..per_batch)
        .map(|_| {
            let k = 3 + rng.next_index(6);
            let mut fs: Vec<u64> = (0..k).map(|_| zipf.sample_index(&mut rng)).collect();
            fs.sort_unstable();
            fs.dedup();
            let score: f64 = fs.iter().map(|&f| truth(f)).sum();
            Example {
                features: fs.into_iter().map(|f| (f, 1.0)).collect(),
                label: if score >= 0.0 { 1.0 } else { -1.0 },
            }
        })
        .collect()
}

fn main() {
    let m = 4;
    let n_features = 256u64;
    let rounds = 60;
    let per_batch = 32;
    let lr = 0.5;

    println!("{m} workers, {n_features} power-law features, {rounds} rounds of {per_batch}-example batches\n");

    let losses: Vec<Vec<f64>> = LocalCluster::run(m, |mut comm| {
        let me = comm.rank();
        let kylix = Kylix::new(NetworkPlan::new(&[2, 2]));
        let mut worker = SgdWorker::new(me, m, n_features, lr);
        (0..rounds)
            .map(|r| {
                let batch =
                    make_batch(n_features, per_batch, mix_many(&[999, r as u64, me as u64]));
                worker
                    .step(&mut comm, &kylix, &batch, r as u32 + 1)
                    .expect("sgd step")
            })
            .collect()
    });

    // Mean loss across workers, printed every 10 rounds.
    println!("round   mean logistic loss");
    for r in (0..rounds).step_by(10).chain([rounds - 1]) {
        let mean: f64 = losses.iter().map(|l| l[r]).sum::<f64>() / m as f64;
        println!("{r:5}   {mean:.4}");
    }
    // Single batches are noisy; compare the first and last five rounds.
    let window = |range: std::ops::Range<usize>| -> f64 {
        let k = range.len() * m;
        range
            .map(|r| losses.iter().map(|l| l[r]).sum::<f64>())
            .sum::<f64>()
            / k as f64
    };
    let early = window(0..5);
    let late = window(rounds - 5..rounds);
    assert!(
        late < early * 0.75,
        "training failed to reduce loss: {early:.4} -> {late:.4}"
    );
    println!("\nmean loss fell {early:.4} -> {late:.4} ✓");
}
