//! Graph-mining algorithms on one synthetic power-law graph:
//! connected components (min reducer), BFS (min reducer), and
//! HADI-style effective-diameter estimation (bitwise-OR reducer) —
//! the §I.A.2 application family, each a different reduction operator
//! over the same sparse-allreduce primitive.
//!
//! ```text
//! cargo run --release --example graph_mining
//! ```

use kylix::{Kylix, NetworkPlan};
use kylix_apps::bfs::{bfs_reference, distributed_bfs, UNREACHED};
use kylix_apps::components::{components_reference, distributed_components};
use kylix_apps::diameter::distributed_diameter;
use kylix_net::{Comm, LocalCluster};
use kylix_powerlaw::EdgeList;

fn main() {
    let n = 5_000u64;
    let graph = EdgeList::power_law(n, 25_000, 1.1, 1.1, 9);
    let m = 4;
    let parts = graph.partition_random(m, 2);
    let plan = NetworkPlan::new(&[2, 2]);
    println!(
        "power-law graph: {n} vertices, {} edges, {m}-node cluster ({plan})\n",
        graph.len()
    );

    // --- Connected components ---
    let expected = components_reference(n, &graph.edges);
    let results = LocalCluster::run(m, |mut comm| {
        let me = comm.rank();
        let kylix = Kylix::new(plan.clone());
        distributed_components(&mut comm, &kylix, &parts[me].edges, 64).expect("components")
    });
    let mut labels = std::collections::HashMap::new();
    for res in &results {
        for &(v, l) in res {
            assert_eq!(l, expected[v as usize], "component mismatch at {v}");
            labels.insert(v, l);
        }
    }
    let n_components: std::collections::HashSet<u64> = labels.values().copied().collect();
    println!(
        "connected components: {} components over {} touched vertices ✓",
        n_components.len(),
        labels.len()
    );

    // --- BFS from the highest-degree vertex (vertex 0 in rank order) ---
    let root = 0u32;
    let expect_d = bfs_reference(n, &graph.edges, root);
    let results = LocalCluster::run(m, |mut comm| {
        let me = comm.rank();
        let kylix = Kylix::new(plan.clone());
        distributed_bfs(&mut comm, &kylix, &parts[me].edges, root, 64).expect("bfs")
    });
    let mut reached = 0usize;
    let mut max_depth = 0u64;
    for res in &results {
        for &(v, d) in res {
            assert_eq!(d, expect_d[v as usize], "distance mismatch at {v}");
            if d != UNREACHED {
                reached += 1;
                max_depth = max_depth.max(d);
            }
        }
    }
    println!("bfs from vertex {root}: deepest reached level {max_depth} ({reached} vertex-copies checked) ✓");

    // --- Effective diameter (HADI / Flajolet–Martin sketches) ---
    let estimates = LocalCluster::run(m, |mut comm| {
        let me = comm.rank();
        let kylix = Kylix::new(plan.clone());
        distributed_diameter(&mut comm, &kylix, &parts[me].edges, n, 16, 12, 77).expect("diameter")
    });
    let d = estimates[0].effective_diameter;
    assert!(estimates.iter().all(|e| e.effective_diameter == d));
    println!("effective diameter estimate: {d} hops (power-law graphs are small worlds)");
    println!(
        "neighbourhood function N(h): {:?}",
        estimates[0]
            .neighbourhood
            .iter()
            .map(|x| x.round() as u64)
            .collect::<Vec<_>>()
    );
}
