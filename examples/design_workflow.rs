//! The §IV design workflow, end to end: measure your data's density,
//! invert the density curve, walk the layers, and get optimal butterfly
//! degrees — then sanity-check the choice on the cluster simulator.
//!
//! ```text
//! cargo run --release --example design_workflow
//! ```

use kylix::design::nic_like::SimpleNic;
use kylix::{optimal_degrees, predict_reduce_time, DesignInput, Kylix, NetworkPlan};
use kylix_net::Comm;
use kylix_netsim::{NicModel, SimCluster};
use kylix_powerlaw::{DensityModel, PartitionGenerator};
use kylix_sparse::SumReducer;

fn main() {
    // Step 0: the workload. 2^17 features, power-law α = 1.1, and the
    // (measured) density of one node's partition is 0.21 — the paper's
    // Twitter-like operating point, scaled down 1000x.
    let m = 64;
    let model = DensityModel::new(1 << 17, 1.1);
    let density = 0.21;

    // Step 1: invert the density curve (Fig. 4) to get λ0.
    let lambda0 = model.lambda_for_density(density);
    println!("measured density {density} -> lambda0 = {lambda0:.4}");

    // Step 2: read the minimum efficient packet size off the NIC's
    // curve (80 % of peak), using the collective preset (per-message
    // overhead as experienced by a many-peer exchange). Time constants
    // divided by 1000 relative to the paper's EC2 testbed.
    let scale = 1000.0;
    let nic = NicModel {
        overhead: NicModel::ec2_10g_collective().overhead / scale,
        latency: NicModel::ec2_10g_collective().latency / scale,
        cpu_per_msg: NicModel::ec2_10g_collective().cpu_per_msg / scale,
        ..NicModel::ec2_10g_collective()
    };
    let min_packet = nic.min_efficient_packet(0.8);
    println!(
        "minimum efficient packet at 80% utilisation: {:.1} KB",
        min_packet / 1e3
    );

    // Step 3: walk the layers.
    let input = DesignInput {
        m,
        model,
        lambda0,
        elem_bytes: 8,
        min_packet_bytes: min_packet,
    };
    let plan = optimal_degrees(&input);
    println!("optimal degrees for m={m}: {plan}");
    for (t, pred) in model
        .layer_predictions(lambda0, plan.degrees())
        .iter()
        .enumerate()
    {
        println!(
            "  node layer {t}: aggregates {:3} partitions, density {:.3}, {:8.1} KB/node",
            pred.aggregated,
            pred.density,
            pred.elems_per_node * 8.0 / 1e3
        );
    }

    // Step 4: compare against the standard topologies, first with the
    // closed-form cost model…
    let simple = SimpleNic {
        overhead: nic.overhead,
        bandwidth: nic.bandwidth,
    };
    println!("\nclosed-form reduce-time predictions:");
    for p in [plan.clone(), NetworkPlan::direct(m), NetworkPlan::binary(m)] {
        let t = predict_reduce_time(&p, &model, lambda0, 8, &simple);
        println!("  {p:>12}: {:.2} ms", t * 1e3);
    }

    // …then measured on the virtual-time cluster simulator.
    println!("\nsimulated config+reduce makespans:");
    let gen = PartitionGenerator::new(model, lambda0, 99);
    let indices: Vec<Vec<u64>> = (0..m).map(|i| gen.indices(i)).collect();
    for p in [plan, NetworkPlan::direct(m), NetworkPlan::binary(m)] {
        let cluster = SimCluster::new(m, nic).seed(1);
        let span = cluster
            .run_all(|mut comm| {
                let me = comm.rank();
                let kylix = Kylix::new(p.clone());
                let mut state = kylix
                    .configure(&mut comm, &indices[me], &indices[me], 0)
                    .unwrap();
                let vals = vec![1.0f64; indices[me].len()];
                state.reduce(&mut comm, &vals, SumReducer).unwrap();
                comm.now()
            })
            .into_iter()
            .fold(0.0, f64::max);
        println!("  {p:>12}: {:.2} ms", span * 1e3);
    }
}
