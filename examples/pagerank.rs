//! Distributed PageRank on a synthetic power-law graph — the paper's
//! benchmark application, run end-to-end on real threads and checked
//! against the single-node reference.
//!
//! ```text
//! cargo run --release --example pagerank
//! ```

use kylix::{Kylix, NetworkPlan};
use kylix_apps::{distributed_pagerank, PageRankConfig};
use kylix_net::LocalCluster;
use kylix_powerlaw::{Csr, EdgeList};

fn main() {
    let n_vertices = 20_000u64;
    let n_edges = 200_000;
    let m = 8; // cluster size
    let iters = 10;

    println!("generating power-law graph: {n_vertices} vertices, {n_edges} edges");
    let graph = EdgeList::power_law(n_vertices, n_edges, 1.1, 1.1, 42);
    let parts = graph.partition_random(m, 1);

    let cfg = PageRankConfig {
        damping: 0.85,
        iterations: iters,
        compute_per_edge: 0.0, // real threads: wall clock is real
    };

    println!("running {iters} iterations on {m} nodes over a 4x2 butterfly…");
    let t0 = std::time::Instant::now();
    let outcomes = LocalCluster::run(m, |mut comm| {
        let me = kylix_net::Comm::rank(&comm);
        let kylix = Kylix::new(NetworkPlan::new(&[4, 2]));
        distributed_pagerank(&mut comm, &kylix, n_vertices, &parts[me].edges, &cfg)
            .expect("pagerank")
    });
    let wall = t0.elapsed();

    // Validate against the sequential reference.
    let reference = Csr::from_edges(n_vertices, &graph.edges).pagerank_reference(iters, 0.85);
    let mut checked = 0usize;
    let mut max_err = 0.0f64;
    for o in &outcomes {
        for &(v, r) in &o.ranks {
            max_err = max_err.max((r - reference[v as usize]).abs());
            checked += 1;
        }
    }
    println!("validated {checked} vertex ranks, max |err| = {max_err:.2e}");
    assert!(max_err < 1e-9);

    // Top-10 vertices by rank (from the reference vector).
    let mut order: Vec<u32> = (0..n_vertices as u32).collect();
    order.sort_by(|a, b| {
        reference[*b as usize]
            .partial_cmp(&reference[*a as usize])
            .unwrap()
    });
    println!("\ntop vertices by PageRank:");
    for &v in order.iter().take(10) {
        println!("  vertex {v:6}: {:.6}", reference[v as usize]);
    }
    println!("\nwall time: {wall:.2?} ({m} node threads on this machine)");
}
