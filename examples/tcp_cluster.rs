//! The same sparse allreduce as `quickstart`, but over **real loopback
//! TCP sockets**: every inter-rank message leaves the process through
//! the OS network stack as a length-prefixed frame and comes back in.
//!
//! Nothing about the protocol code changes — the cluster constructor is
//! the only difference from the in-process version, which is the whole
//! point of the substrate abstraction: code developed against
//! `LocalCluster` deploys onto sockets untouched. Run with:
//!
//! ```text
//! cargo run --example tcp_cluster
//! ```

use kylix::{Kylix, NetworkPlan};
use kylix_net::telemetry::{Clock, Counter, Telemetry};
use kylix_net::{Comm, TcpCluster};
use kylix_sparse::SumReducer;

fn main() {
    let m = 8;
    let plan = NetworkPlan::new(&[4, 2]);
    println!(
        "topology: {} ({} nodes, {} layers), transport: loopback TCP",
        plan,
        plan.size(),
        plan.layers()
    );

    // Telemetry rides along unchanged too; afterwards it shows how many
    // payload bytes actually crossed the sockets.
    let tel = Telemetry::new(m, Clock::Wall);
    let results = TcpCluster::run_with_telemetry(m, &tel, |mut comm| {
        let me = comm.rank() as u64;
        let kylix = Kylix::new(NetworkPlan::new(&[4, 2]));

        // Node i contributes 1.0 at indices {i, i+1, 2i}, asks for the
        // totals at {i, 7} — identical to the quickstart example.
        let out_indices = [me, me + 1, 2 * me];
        let out_values = [1.0f64, 1.0, 1.0];
        let in_indices = [me, 7];

        let (got, _state) = kylix
            .allreduce_combined(
                &mut comm,
                &in_indices,
                &out_indices,
                &out_values,
                SumReducer,
                0,
            )
            .expect("allreduce over TCP");
        (me, got)
    });

    println!("\nper-node results (value at own index, value at index 7):");
    for (me, got) in &results {
        println!("  node {me}: v[{me}] = {:.0}, v[7] = {:.0}", got[0], got[1]);
    }
    assert!(results.iter().all(|(_, g)| g[1] == 2.0));

    let rep = tel.report();
    println!(
        "\ntraffic: {} payload bytes in {} messages (self-addressed \
         traffic loops back in-process; the rest crossed real sockets \
         behind 12-byte frame headers)",
        rep.total(Counter::BytesSent),
        rep.total(Counter::MsgsSent),
    );
    println!("index 7 received contributions from nodes 6 and 7: total 2.0 ✓");
}
