//! Replication and packet racing (§V): run a replicated allreduce on
//! the simulator, kill nodes, and watch the collective finish anyway —
//! then wipe out a whole replica group and watch it fail loudly. The
//! later scenarios exercise the chaos layer: replicas crashing in the
//! *middle* of the protocol, and an unreplicated run over lossy links
//! repaired by the ack/retransmit layer.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use kylix::{Kylix, NetworkPlan, ReplicatedComm};
use kylix_net::{Comm, FaultPlan, LocalCluster, ReliableComm};
use kylix_netsim::{NicModel, SimCluster};
use kylix_sparse::SumReducer;
use std::time::Duration;

/// Run a replicated sum-allreduce with the given dead physical ranks;
/// returns per-physical-node results (None for dead or failed ranks).
fn run_with_failures(dead: &[usize]) -> Vec<Option<f64>> {
    let logical = 8;
    let replication = 2;
    let physical = logical * replication;
    let plan = NetworkPlan::new(&[4, 2]);
    let cluster = SimCluster::new(physical, NicModel::ec2_10g())
        .seed(5)
        .failures(dead);
    cluster
        .run(|comm| {
            let mut rc = ReplicatedComm::new(comm, replication);
            let me = rc.rank() as u64;
            let kylix = Kylix::new(plan.clone());
            // Everyone contributes 1.0 at index (rank mod 4); asks for
            // index 0 (contributed by logical ranks 0 and 4).
            kylix
                .allreduce_combined(&mut rc, &[0u64], &[me % 4], &[1.0f64], SumReducer, 0)
                .ok()
                .map(|(v, _)| v[0])
        })
        .into_iter()
        .map(Option::flatten)
        .collect()
}

fn main() {
    println!("8 logical nodes x 2 replicas = 16 physical nodes, 4x2 butterfly\n");

    println!("no failures:");
    let ok = run_with_failures(&[]);
    println!(
        "  all {} physical ranks completed, v[0] = {:?}",
        ok.iter().flatten().count(),
        ok[0].unwrap()
    );
    assert!(ok.iter().all(|r| *r == Some(2.0)));

    println!("\nkill 3 replicas in distinct groups (physical 8, 9, 10):");
    let survived = run_with_failures(&[8, 9, 10]);
    let alive = survived.iter().flatten().count();
    println!("  {alive}/16 physical ranks completed — every logical node still answered");
    assert_eq!(alive, 13);
    assert!(survived.iter().flatten().all(|&v| v == 2.0));

    println!("\nwipe out BOTH replicas of logical node 3 (physical 3 and 11):");
    // The protocol cannot proceed without any replica of node 3;
    // receives targeting it fail. A short patience surfaces the error
    // quickly instead of after the default 60 s.
    let cluster = SimCluster::new(16, NicModel::ec2_10g())
        .seed(6)
        .failures(&[3, 11]);
    let outcomes = cluster.run(|comm| {
        let patient = kylix_net::PatienceComm::new(comm, Duration::from_millis(200));
        let mut rc = ReplicatedComm::new(patient, 2);
        let me = rc.rank() as u64;
        let kylix = Kylix::new(NetworkPlan::new(&[4, 2]));
        kylix
            .allreduce_combined(&mut rc, &[0u64], &[me % 4], &[1.0f64], SumReducer, 0)
            .map(|(v, _)| v[0])
            .map_err(|e| e.to_string())
    });
    let failures = outcomes.iter().flatten().filter(|r| r.is_err()).count();
    println!("  {failures} surviving ranks reported a communication failure");
    assert!(failures > 0, "a wiped replica group must surface errors");

    println!("\ncrash 2 replicas MID-protocol (virtual-time crash, not dead at start):");
    // Unlike `failures(..)`, a `crash_at` node participates normally
    // until its crash time, then goes dark; survivors race past it.
    let cluster = SimCluster::new(16, NicModel::ec2_10g().with_jitter(0.3))
        .seed(7)
        .crash_at(9, 5e-5)
        .crash_at(10, 8e-5);
    let outcomes = cluster.run(|comm| {
        let mut rc = ReplicatedComm::new(comm, 2);
        let me = rc.rank() as u64;
        let kylix = Kylix::new(NetworkPlan::new(&[4, 2]));
        kylix
            .allreduce_combined(&mut rc, &[0u64], &[me % 4], &[1.0f64], SumReducer, 0)
            .ok()
            .map(|(v, _)| v[0])
    });
    let alive: Vec<f64> = outcomes.iter().flatten().flatten().copied().collect();
    println!(
        "  {}/16 physical ranks completed; survivors all agree: v[0] = {:?}",
        alive.len(),
        alive[0]
    );
    assert!(
        alive.len() >= 14,
        "at most the crashed replicas may drop out"
    );
    assert!(alive.iter().all(|&v| v == 2.0));

    println!("\nlossy links, NO replication — ReliableComm retransmits through 15% loss:");
    let faults = FaultPlan::new(11)
        .drop_rate(0.15)
        .duplicate_rate(0.05)
        .corrupt_rate(0.02);
    let out = LocalCluster::run_with_faults(8, &faults, |chaos| {
        let mut comm = ReliableComm::new(chaos);
        let me = comm.rank() as u64;
        let kylix = Kylix::new(NetworkPlan::new(&[4, 2]));
        let v = kylix
            .allreduce_combined(&mut comm, &[0u64], &[me % 4], &[1.0f64], SumReducer, 0)
            .map(|(v, _)| v[0])
            .expect("reliable delivery must complete despite loss");
        let stats = comm.flush().expect("flush");
        (v, stats.retransmits, stats.duplicates_dropped)
    });
    let rexmit: u64 = out.iter().map(|(_, r, _)| r).sum();
    let dups: u64 = out.iter().map(|(_, _, d)| d).sum();
    println!(
        "  all 8 ranks correct (v[0] = {}), {rexmit} retransmissions, {dups} duplicates dropped",
        out[0].0
    );
    assert!(out.iter().all(|(v, _, _)| *v == 2.0));
}
