//! Quickstart: a sparse sum-allreduce across an in-process cluster.
//!
//! Eight "machines" (threads) each contribute values at a few sparse
//! indices of a large logical vector and ask for a different sparse set
//! back. Run with:
//!
//! ```text
//! cargo run --example quickstart
//! ```

use kylix::{Kylix, NetworkPlan};
use kylix_net::{Comm, LocalCluster};
use kylix_sparse::SumReducer;

fn main() {
    let m = 8;
    // A 4x2 nested butterfly over 8 nodes (the heterogeneous-degree
    // topology is the paper's contribution; [8] would be direct
    // all-to-all and [2,2,2] the binary butterfly).
    let plan = NetworkPlan::new(&[4, 2]);
    println!(
        "topology: {} ({} nodes, {} layers)",
        plan,
        plan.size(),
        plan.layers()
    );

    let results = LocalCluster::run(m, |mut comm| {
        let me = comm.rank() as u64;
        let kylix = Kylix::new(NetworkPlan::new(&[4, 2]));

        // Node i contributes 1.0 at indices {i, i+1, 2i} of a vector
        // indexed by u64, and asks for the totals at {i, 7}.
        let out_indices = [me, me + 1, 2 * me];
        let out_values = [1.0f64, 1.0, 1.0];
        let in_indices = [me, 7];

        let (got, _state) = kylix
            .allreduce_combined(
                &mut comm,
                &in_indices,
                &out_indices,
                &out_values,
                SumReducer,
                0,
            )
            .expect("allreduce");
        (me, got)
    });

    println!("\nper-node results (value at own index, value at index 7):");
    for (me, got) in &results {
        println!("  node {me}: v[{me}] = {:.0}, v[7] = {:.0}", got[0], got[1]);
    }

    // Cross-check one value sequentially: index 7 is contributed by
    // node 6 (me+1), node 7 (me). 2*me=7 impossible. Total 2.0.
    assert!(results.iter().all(|(_, g)| g[1] == 2.0));
    println!("\nindex 7 received contributions from nodes 6 and 7: total 2.0 ✓");
}
