//! A tour of the virtual-time cluster simulator: cost model, tracing,
//! jitter, stragglers — the substrate behind every timing figure.
//!
//! ```text
//! cargo run --release --example simulator_tour
//! ```

use kylix::{Kylix, NetworkPlan};
use kylix_net::Comm;
use kylix_netsim::{NicModel, SimCluster};
use kylix_powerlaw::{DensityModel, PartitionGenerator};
use kylix_sparse::SumReducer;

fn makespan(cluster: &SimCluster, plan: &NetworkPlan, indices: &[Vec<u64>]) -> f64 {
    cluster
        .run_all(|mut comm| {
            let me = comm.rank();
            let kylix = Kylix::new(plan.clone());
            let mut state = kylix
                .configure(&mut comm, &indices[me], &indices[me], 0)
                .unwrap();
            let vals = vec![1.0f64; indices[me].len()];
            state.reduce(&mut comm, &vals, SumReducer).unwrap();
            comm.now()
        })
        .into_iter()
        .fold(0.0, f64::max)
}

fn main() {
    let nic = NicModel::ec2_10g();
    println!(
        "EC2-calibrated NIC: {:.2} ms/message overhead, 10 Gb/s,",
        nic.overhead * 1e3
    );
    println!(
        "minimum efficient packet (80% of peak): {:.1} MB\n",
        nic.min_efficient_packet(0.8) / 1e6
    );

    // A 16-node workload.
    let m = 16;
    let model = DensityModel::new(1 << 16, 1.1);
    let gen = PartitionGenerator::with_density(model, 0.2, 42);
    let indices: Vec<Vec<u64>> = (0..m).map(|i| gen.indices(i)).collect();
    let plan = NetworkPlan::new(&[4, 4]);

    // 1. Deterministic virtual time.
    let t1 = makespan(&SimCluster::new(m, nic).seed(1), &plan, &indices);
    let t2 = makespan(&SimCluster::new(m, nic).seed(1), &plan, &indices);
    println!(
        "1. determinism: two seed-1 runs -> {:.3} ms == {:.3} ms",
        t1 * 1e3,
        t2 * 1e3
    );
    assert_eq!(t1, t2);

    // 2. Jitter moves time (never results).
    let t3 = makespan(&SimCluster::new(m, nic).seed(2), &plan, &indices);
    println!(
        "2. jitter seed 2 -> {:.3} ms (different tail draws)",
        t3 * 1e3
    );

    // 3. Tracing: where did the bytes go?
    let traced = SimCluster::new(m, nic).seed(1).traced();
    makespan(&traced, &plan, &indices);
    let trace = traced.trace().unwrap();
    println!("\n3. trace: {} messages total", trace.len());
    for s in trace.layer_summary() {
        println!(
            "   layer {}: {:4} msgs, {:7.1} KB total, mean packet {:6.1} KB, span {:.3} ms",
            s.layer,
            s.messages,
            s.bytes as f64 / 1e3,
            s.mean_packet() / 1e3,
            s.span() * 1e3
        );
    }

    // 4. A straggler stretches the makespan; the butterfly contains it
    //    better than direct all-to-all.
    println!("\n4. one node runs 4x slow:");
    for (label, p) in [("direct", NetworkPlan::direct(m)), ("4x4", plan.clone())] {
        let base = makespan(&SimCluster::new(m, nic).seed(1), &p, &indices);
        let slow = makespan(
            &SimCluster::new(m, nic).seed(1).stragglers(&[(0, 4.0)]),
            &p,
            &indices,
        );
        println!(
            "   {label:>6}: {:.3} ms -> {:.3} ms ({:.2}x)",
            base * 1e3,
            slow * 1e3,
            slow / base
        );
    }
}
